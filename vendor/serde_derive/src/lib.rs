//! Offline stand-in for `serde_derive`.
//!
//! The container image this repository builds in has no access to crates.io,
//! so the real `serde`/`serde_derive` cannot be fetched. This crate provides
//! `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the vendored
//! `serde` stand-in (see `vendor/serde`), covering exactly the shapes this
//! workspace uses:
//!
//! - structs with named fields,
//! - enums with unit, tuple (incl. newtype) and struct variants,
//! - no generic parameters, no `#[serde(...)]` attributes.
//!
//! The derive is written against raw `proc_macro` token trees (no `syn` /
//! `quote`, which are equally unfetchable). Generated code follows serde's
//! externally-tagged JSON data model so that the output is interchangeable
//! with real serde_json documents for the supported shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: just its name (types are recovered via inference).
type Fields = Vec<String>;

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Fields),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match parsed {
        Input::Struct { name, fields } => gen_struct_serialize(&name, &fields),
        Input::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match parsed {
        Input::Struct { name, fields } => gen_struct_deserialize(&name, &fields),
        Input::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stand-in does not support generics on `{name}`");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for `{name}`, found {other:?}"),
    };
    match kw.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("derive stand-in supports struct/enum only, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            // `pub` / `pub(crate)` visibility.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// variant bodies). Field types are skipped; only names are recorded.
fn parse_named_fields(body: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a top-level comma. Generic argument
        // lists never contain top-level commas because `<...>` groups are
        // not token groups — track angle-bracket depth manually.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Past the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts comma-separated items at angle-depth 0 (tuple variant arity).
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_item_after_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_item_after_comma = false;
            }
            _ => saw_item_after_comma = true,
        }
    }
    if !saw_item_after_comma {
        count -= 1; // trailing comma
    }
    count
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "__obj.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut __obj: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(__obj)\n\
             }}\n\
         }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let mut gets = String::new();
    for f in fields {
        gets.push_str(&format!(
            "{f}: serde::get_field(__fields, \"{f}\", \"{name}\")?,\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                 let __fields = serde::expect_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {gets} }})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(__f0) => serde::variant_value(\"{vn}\", serde::Serialize::to_value(__f0)),\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => serde::variant_value(\"{vn}\", serde::Value::Array(vec![{}])),\n",
                    binds.join(", "),
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => serde::variant_value(\"{vn}\", serde::Value::Object(vec![{}])),\n",
                    entries.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let elems: Vec<String> = (0..*arity)
                    .map(|k| format!("serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __arr = serde::expect_array(__inner, \"{name}::{vn}\")?;\n\
                         if __arr.len() != {arity} {{\n\
                             return ::std::result::Result::Err(serde::Error::custom(\n\
                                 format!(\"{name}::{vn}: expected {arity} elements, found {{}}\", __arr.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }}\n",
                    elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let gets: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: serde::get_field(__vf, \"{f}\", \"{name}::{vn}\")?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __vf = serde::expect_object(__inner, \"{name}::{vn}\")?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                     }}\n",
                    gets.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                 match __v {{\n\
                     serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(serde::Error::custom(\n\
                             format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(serde::Error::custom(\n\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(serde::Error::custom(\n\
                         \"expected string or single-key object for enum {name}\".to_string())),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
