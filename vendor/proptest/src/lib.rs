//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `any::<bool>()`, and the [`proptest!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros. Each property runs a fixed number of random
//! cases (default 64, override with the `PROPTEST_CASES` environment
//! variable) from a seed derived from the test name, so failures are
//! reproducible. There is no shrinking: a failing case reports its values
//! via the assertion message instead.

use rand::rngs::SmallRng;

/// Strategy combinators and range/tuple strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and draws
        /// from the result (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u64, u32, u8);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut SmallRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut SmallRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );

    /// Marker for types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut SmallRng) -> u8 {
            (rng.gen::<u32>() & 0xff) as u8
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Number of random cases per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic RNG seeded from the property name.
    pub fn rng_for(name: &str) -> SmallRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// An optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`
/// sets the per-property case count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                let __cases = ($cfg).cases as usize;
                for __case in 0..__cases {
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("property `{}` failed at case {}/{}: {}",
                               stringify!($name), __case + 1, __cases, __e);
                    }
                }
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("property `{}` failed at case {}/{}: {}",
                               stringify!($name), __case + 1, __cases, __e);
                    }
                }
            }
        )+
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Fails the current property case if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} == {}` ({:?} vs {:?})",
                        stringify!($a), stringify!($b), __a, __b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                        stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)));
        }
    }};
}

/// The conventional glob-import module: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    /// Namespace alias matching `proptest::prop`.
    pub mod prop {
        pub use crate::strategy::*;
    }
}

/// Re-exported so generated code can name the RNG type if needed.
pub type TestRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5, "y was {}", y);
        }

        #[test]
        fn tuples_and_maps((a, b) in (1usize..4, 1usize..4).prop_map(|(a, b)| (a * 2, b * 3))) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_eq!(b % 3, 0);
        }

        #[test]
        fn flat_map_dependent((hi, x) in (2usize..20).prop_flat_map(|hi| (Just(hi), 0usize..hi))) {
            prop_assert!(x < hi);
        }

        #[test]
        fn any_bool_hits_both(_ in 0usize..1) {
            // Smoke: any::<bool>() generates both values over enough draws.
            let mut rng = crate::test_runner::rng_for("any_bool");
            let draws: Vec<bool> = (0..64)
                .map(|_| crate::strategy::Strategy::generate(&any::<bool>(), &mut rng))
                .collect();
            prop_assert!(draws.iter().any(|&b| b));
            prop_assert!(draws.iter().any(|&b| !b));
        }
    }
}
