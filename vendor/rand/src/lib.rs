//! Offline stand-in for `rand`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! implements the small API surface the workspace uses behind the same
//! import paths: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer ranges,
//! half-open float ranges) and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets. Streams
//! are deterministic per seed but not bit-compatible with the real crate;
//! everything in this repository treats seeds as opaque, so only internal
//! reproducibility matters.

use std::ops::{Range, RangeInclusive};

/// Deterministically seedable RNGs.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from a uniform bit stream via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range types samplable via [`Rng::gen_range`], generic over the output
/// type so call-site annotations (`let x: f32 = rng.gen_range(0.0..1.0)`)
/// drive literal inference exactly like the real crate.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing RNG trait (subset of the real `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, exactly like real rand.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors (and used by real rand).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// ---------------------------------------------------------------------------
// Standard-distribution impls
// ---------------------------------------------------------------------------

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Range sampling
// ---------------------------------------------------------------------------

fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    // Modulo with rejection of the biased tail.
    assert!(bound > 0, "gen_range: empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + sample_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u8);

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let frac: f32 = Standard::sample(rng);
        let v = self.start + (self.end - self.start) * frac;
        // Floating-point rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let frac: f32 = Standard::sample(rng);
        lo + (hi - lo) * frac
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let frac: f64 = Standard::sample(rng);
        lo + (hi - lo) * frac
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let frac: f64 = Standard::sample(rng);
        let v = self.start + (self.end - self.start) * frac;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_f32_moments() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| r.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
