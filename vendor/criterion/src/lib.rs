//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`],
//! [`criterion_group!`], [`criterion_main!`] — with a simple wall-clock
//! measurement loop: a warm-up phase sizes the per-sample iteration count,
//! then `sample_size` samples are timed and the median/min/mean are printed.
//! No plotting, no statistics beyond that; results are indicative, which is
//! all the offline environment supports.
//!
//! Supports `cargo bench -- <filter>`: only benchmarks whose name contains
//! the filter substring run.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Warm-up budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(150);

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional CLI argument (ignoring cargo-bench plumbing
        // flags) acts as a name filter, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark measurement state.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are always sized per-iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Measures `f` repeatedly.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: estimate cost, decide iterations per sample.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP_TIME {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters as f64);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        // One timed run per sample; setup excluded.
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<56} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<56} median {:>12}  min {:>12}  mean {:>12}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean)
        );
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmarks (both criterion forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn iter_batched_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 4,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
