//! Offline stand-in for `serde_json`, paired with the vendored `serde`.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` over the vendored
//! [`serde::Value`] tree. Numbers print with Rust's shortest-roundtrip float
//! formatting, so `f32`/`f64` fields survive a round trip bit-for-bit (NaN
//! and infinities render as `null`, like real serde_json).

pub use serde::Error;
use serde::Value;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Currently infallible for supported types; returns `Result` for API
/// compatibility with real serde_json.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a human-readable, indented JSON string.
///
/// # Errors
///
/// Currently infallible for supported types.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_float(out, *x),
        Value::F32(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::custom("invalid codepoint".to_string())
                                })?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number".to_string()))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::I64(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        let x: f32 = from_str(&to_string(&0.1f32).unwrap()).unwrap();
        assert_eq!(x, 0.1f32);
        let y: f64 = from_str(&to_string(&std::f64::consts::PI).unwrap()).unwrap();
        assert_eq!(y, std::f64::consts::PI);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1.5f32, -2.25, 0.0];
        let back: Vec<f32> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<u8> = from_str("null").unwrap();
        assert_eq!(back, None);
        let arr: [usize; 4] = [1, 2, 3, 4];
        let back: [usize; 4] = from_str(&to_string(&arr).unwrap()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"back\\slash\ttab".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn extreme_f32_roundtrip() {
        for x in [f32::MIN_POSITIVE, f32::MAX, -f32::MAX, 1e-40f32, 3.4e38f32] {
            let back: f32 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back, x, "{x}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }
}
