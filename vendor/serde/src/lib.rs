//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no crates.io access, so the
//! real serde cannot be fetched. This crate implements the subset the
//! workspace needs behind the same import paths (`serde::Serialize`,
//! `serde::Deserialize`, `serde::de::DeserializeOwned`,
//! `#[derive(Serialize, Deserialize)]`), using a self-describing [`Value`]
//! tree instead of serde's visitor machinery. `vendor/serde_json` renders and
//! parses that tree as JSON compatible with real serde_json output for the
//! shapes used here (externally tagged enums, `Option` as null/value).
//!
//! Swapping the real serde back in later is a Cargo.toml-only change as long
//! as code sticks to derives and `serde_json::{to_string, from_str}`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// 32-bit float (kept distinct so shortest-roundtrip printing preserves
    /// the value bit-for-bit).
    F32(f32),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list (field order is deterministic:
    /// declaration order).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can deserialize themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: owned deserialization marker.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    /// Blanket-implemented for every [`crate::Deserialize`].
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Helpers used by the derive macro
// ---------------------------------------------------------------------------

/// Wraps a variant payload as `{"Variant": value}` (externally tagged).
pub fn variant_value(variant: &str, inner: Value) -> Value {
    Value::Object(vec![(variant.to_string(), inner)])
}

/// Extracts an object's field list, or errors naming `ty`.
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(Error::custom(format!(
            "{ty}: expected object, found {other:?}"
        ))),
    }
}

/// Extracts an array's elements, or errors naming `ty`.
pub fn expect_array<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(Error::custom(format!(
            "{ty}: expected array, found {other:?}"
        ))),
    }
}

/// Looks up field `name` in an object body and deserializes it.
pub fn get_field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("{ty}: missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    Value::I64(i) => *i,
                    other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F32(x) => Ok(*x),
            Value::F64(x) => Ok(*x as f32),
            Value::U64(u) => Ok(*u as f32),
            Value::I64(i) => Ok(*i as f32),
            Value::Null => Ok(f32::NAN),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::F32(x) => Ok(*x as f64),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        expect_array(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = expect_array(v, "array")?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch".to_string()))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = expect_array(v, "tuple")?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

// `Value` round-trips through itself — lets callers build dynamic JSON
// documents (e.g. trace exports) and serialize them like any other type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
