//! Serde round-trip tests: every configuration/report type a downstream
//! user would persist (experiment configs, specs, plans, cost reports)
//! must survive JSON serialization bit-for-bit.

use epim::core::{ConvShape, Epitome, EpitomeDesigner, EpitomeShape, EpitomeSpec, SamplingPlan};
use epim::models::accuracy::AccuracyModel;
use epim::models::resnet::resnet50;
use epim::pim::{AcceleratorConfig, CostModel, CrossbarConfig, HardwareLut, Precision};
use epim::quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim::search::SearchConfig;
use epim::tensor::{init, rng, Tensor};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn shapes_and_specs_roundtrip() {
    let conv = ConvShape::new(512, 256, 3, 3);
    assert_eq!(roundtrip(&conv), conv);
    let eshape = EpitomeShape::new(256, 256, 2, 2);
    assert_eq!(roundtrip(&eshape), eshape);
    let spec = EpitomeSpec::new(conv, eshape).unwrap();
    let back: EpitomeSpec = roundtrip(&spec);
    assert_eq!(back, spec);
    back.plan().verify().unwrap();
}

#[test]
fn sampling_plan_roundtrip_preserves_patches() {
    let plan = SamplingPlan::build(
        ConvShape::new(96, 48, 3, 3),
        EpitomeShape::new(32, 24, 2, 3),
    )
    .unwrap();
    let back: SamplingPlan = roundtrip(&plan);
    assert_eq!(back, plan);
    assert_eq!(back.patches(), plan.patches());
}

#[test]
fn epitome_with_parameters_roundtrips() {
    let spec = EpitomeDesigner::new(32, 32)
        .design(ConvShape::new(32, 16, 3, 3), 72, 16)
        .unwrap();
    let mut r = rng::seeded(5);
    let epi = Epitome::from_tensor(spec, init::kaiming_normal(&[16, 8, 3, 3], &mut r));
    // Shape from the designer may differ; rebuild against the real dims.
    let epi = match epi {
        Ok(e) => e,
        Err(_) => {
            let spec = EpitomeDesigner::new(32, 32)
                .design(ConvShape::new(32, 16, 3, 3), 72, 16)
                .unwrap();
            let dims = spec.shape().dims();
            let mut r = rng::seeded(5);
            Epitome::from_tensor(spec, init::kaiming_normal(&dims, &mut r)).unwrap()
        }
    };
    let back: Epitome = roundtrip(&epi);
    assert_eq!(back, epi);
    assert_eq!(
        back.reconstruct().unwrap(),
        epi.reconstruct().unwrap(),
        "reconstruction must be identical after a round trip"
    );
}

#[test]
fn tensors_roundtrip() {
    let mut r = rng::seeded(6);
    let t = init::uniform(&[3, 4, 5], -1.0, 1.0, &mut r);
    assert_eq!(roundtrip(&t), t);
    let scalar = Tensor::scalar(1.5);
    assert_eq!(roundtrip(&scalar), scalar);
}

#[test]
fn accelerator_configuration_roundtrips() {
    let cfg = AcceleratorConfig::new(CrossbarConfig::new(256, 64, 4)).with_channel_wrapping(true);
    assert_eq!(roundtrip(&cfg), cfg);
    let lut = HardwareLut::calibrated();
    assert_eq!(roundtrip(&lut), lut);
    let prec = Precision::new(9, 9);
    assert_eq!(roundtrip(&prec), prec);
}

#[test]
fn cost_reports_roundtrip() {
    let model = CostModel::default();
    let costs = model.conv_layer(ConvShape::new(64, 64, 3, 3), 196, Precision::new(9, 9));
    let back = roundtrip(&costs);
    assert_eq!(back, costs);
    assert_eq!(back.edp(), costs.edp());

    let net = epim::models::network::Network::baseline(resnet50());
    let report = net.simulate(&model, Precision::new(9, 9));
    let back = roundtrip(&report);
    assert_eq!(back, report);
    assert_eq!(back.crossbars(), report.crossbars());
}

#[test]
fn quant_report_roundtrips() {
    let spec =
        EpitomeSpec::new(ConvShape::new(16, 8, 3, 3), EpitomeShape::new(8, 4, 2, 2)).unwrap();
    let mut r = rng::seeded(7);
    let epi = Epitome::from_tensor(spec, init::uniform(&[8, 4, 2, 2], -1.0, 1.0, &mut r)).unwrap();
    let (_, report) = quantize_epitome(
        &epi,
        3,
        QuantGranularity::PerCrossbar { rows: 8, cols: 4 },
        &RangeEstimator::overlap_default(),
    )
    .unwrap();
    let back = roundtrip(&report);
    assert_eq!(back, report);
}

#[test]
fn search_config_roundtrips() {
    let cfg = SearchConfig {
        population: 48,
        iterations: 17,
        crossbar_budget: 999,
        seed: 123,
        ..SearchConfig::default()
    };
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn accuracy_model_roundtrips() {
    let m = AccuracyModel::resnet50();
    let back: AccuracyModel = roundtrip(&m);
    assert_eq!(back, m);
    assert_eq!(
        back.epim_accuracy(
            2.8418,
            epim::models::accuracy::WeightScheme::Fixed { bits: 3 },
            epim::models::accuracy::QuantMethod::PerCrossbarOverlap,
        ),
        m.epim_accuracy(
            2.8418,
            epim::models::accuracy::WeightScheme::Fixed { bits: 3 },
            epim::models::accuracy::QuantMethod::PerCrossbarOverlap,
        )
    );
}

#[test]
fn backbone_inventory_roundtrips() {
    let bb = resnet50();
    let back: epim::models::resnet::Backbone = roundtrip(&bb);
    assert_eq!(back, bb);
    assert_eq!(back.params(), bb.params());
}
