//! End-to-end scenario tests: the complete EPIM flow of Figure 2a —
//! design → train (small scale) → quantize → construct data path →
//! deploy-and-measure — run as a user would.

use epim::core::{ConvShape, Epitome, EpitomeDesigner};
use epim::models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim::models::network::Network;
use epim::models::resnet::resnet50;
use epim::models::training::{
    run_small_scale_experiment, EpitomeConv2d, QatMode, SmallScaleConfig,
};
use epim::pim::datapath::DataPath;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::quant::{quantize_epitome, MixedPrecision, QuantGranularity, RangeEstimator};
use epim::tensor::nn::Layer;
use epim::tensor::ops::Conv2dCfg;
use epim::tensor::{init, rng, Tensor};

/// The full Figure 2a pipeline on one layer, asserting each stage's
/// contract.
#[test]
fn figure2a_pipeline_single_layer() {
    // (1) Designer: conv -> epitome.
    let designer = EpitomeDesigner::new(64, 64);
    let conv = ConvShape::new(128, 64, 3, 3);
    let spec = designer.design(conv, 288, 64).unwrap();
    assert!(spec.param_compression() > 1.5);

    // (2) "Training": least-squares init from a pretrained weight.
    let mut r = rng::seeded(11);
    let pretrained = init::kaiming_normal(&conv.dims(), &mut r);
    let epi = Epitome::from_conv_weight(spec.clone(), &pretrained).unwrap();

    // (3) Epitome quantization (per-crossbar + overlap).
    let (qepi, qrep) = quantize_epitome(
        &epi,
        5,
        QuantGranularity::PerCrossbar { rows: 64, cols: 64 },
        &RangeEstimator::overlap_default(),
    )
    .unwrap();
    assert!(qrep.sqnr_db > 10.0, "5-bit SQNR too low: {}", qrep.sqnr_db);

    // (4) Data path construction + channel wrapping.
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let dp = DataPath::new(&qepi, cfg, true).unwrap();
    assert_eq!(dp.ifat().entries.len(), spec.plan().patches().len());

    // (5) Deploy: execute and measure.
    let x = init::uniform(&[1, 64, 10, 10], -1.0, 1.0, &mut r);
    let (y, stats) = dp.execute(&x).unwrap();
    assert_eq!(y.shape(), &[1, 128, 10, 10]);
    assert!(stats.rounds > 0);

    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let costs = model.epitome_layer(&spec, 100, Precision::new(5, 9));
    assert!(costs.latency_ns > 0.0 && costs.energy_pj > 0.0);
}

#[test]
fn small_scale_training_reproduces_paper_ordering() {
    // The qualitative claims the ImageNet experiments make, at small
    // scale with real SGD:
    //  - the epitome model is competitive with the conv model;
    //  - overlap-aware low-bit QAT >= naive low-bit QAT (on average the
    //    paper's Table 2 gap; here we accept ties since the task is easy).
    let cfg = SmallScaleConfig {
        per_class: 40,
        epochs: 12,
        ..SmallScaleConfig::default()
    };
    let res = run_small_scale_experiment(&cfg);
    let chance = 1.0 / cfg.classes as f32;
    assert!(
        res.conv_acc > 2.0 * chance,
        "conv failed to learn: {}",
        res.conv_acc
    );
    assert!(
        res.epitome_acc > 2.0 * chance,
        "epitome failed to learn: {}",
        res.epitome_acc
    );
    // Epitome competitive with conv (within 15 points on this easy task).
    assert!(
        res.epitome_acc >= res.conv_acc - 0.15,
        "epitome {} vs conv {}",
        res.epitome_acc,
        res.conv_acc
    );
    // Quantized variants still learn.
    assert!(res.epitome_overlap_quant_acc > chance);
    // Overlap-aware quantization not worse than naive (small-scale analog
    // of Table 2's ordering; allow a small tolerance for run-to-run
    // variation on the tiny test set).
    assert!(
        res.epitome_overlap_quant_acc >= res.epitome_naive_quant_acc - 0.10,
        "overlap {} vs naive {}",
        res.epitome_overlap_quant_acc,
        res.epitome_naive_quant_acc
    );
}

#[test]
fn epitome_layer_trains_under_qat() {
    // QAT through the epitome layer: loss decreases with a 3-bit
    // fake-quantized forward pass.
    let spec = epim::core::EpitomeSpec::new(
        ConvShape::new(8, 4, 3, 3),
        epim::core::EpitomeShape::new(4, 4, 2, 2),
    )
    .unwrap();
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let mut layer = EpitomeConv2d::new(spec, cfg, 1).with_qat(QatMode::FakeQuant {
        bits: 3,
        granularity: QuantGranularity::PerTensor,
        range: RangeEstimator::MinMax,
    });
    let mut r = rng::seeded(2);
    let x = init::uniform(&[2, 4, 6, 6], -1.0, 1.0, &mut r);
    let target = init::uniform(&[2, 8, 6, 6], -0.3, 0.3, &mut r);
    let mut losses = Vec::new();
    for _ in 0..40 {
        let y = layer.forward(&x).unwrap();
        let diff = y.sub(&target).unwrap();
        losses.push(diff.norm_sq() / diff.len() as f32);
        let dy = diff.scale(2.0 / diff.len() as f32);
        layer.backward(&dy).unwrap();
        layer.apply_grads(0.05);
    }
    let first = losses.first().unwrap();
    let last = losses.last().unwrap();
    assert!(last < first, "QAT training diverged: {first} -> {last}");
}

#[test]
fn table1_full_ladder_is_internally_consistent() {
    // Simulate the whole Table 1 ladder for ResNet-50 and check the
    // paper's monotonic structure: lower weight bits => fewer crossbars,
    // lower energy; accuracy decreases as bits shrink.
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let epim = Network::uniform_epitome(resnet50(), &designer, 1024, 256).unwrap();
    let acc = AccuracyModel::resnet50();
    let cr = epim.param_compression();

    let mut prev_xb = usize::MAX;
    let mut prev_acc = f64::INFINITY;
    for bits in [9u8, 7, 5, 3] {
        let costs = epim.simulate(&model, Precision::new(bits, 9));
        assert!(
            costs.crossbars() <= prev_xb,
            "crossbars not monotone at W{bits}"
        );
        prev_xb = costs.crossbars();
        let top1 = acc.epim_accuracy(
            cr,
            WeightScheme::Fixed { bits },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!(top1 <= prev_acc, "accuracy not monotone at W{bits}");
        prev_acc = top1;
    }

    // Mixed precision (W3mp): between W3 and W5 in both crossbars and
    // accuracy, as in Table 1.
    let mp = MixedPrecision::w3mp();
    let sens: Vec<f64> = epim
        .choices()
        .iter()
        .enumerate()
        .map(|(i, _)| (i % 7) as f64 + 1.0)
        .collect();
    let params: Vec<usize> = epim
        .backbone()
        .layers
        .iter()
        .zip(epim.choices())
        .map(|(l, c)| match c {
            epim::models::network::OperatorChoice::Conv => l.conv.params(),
            epim::models::network::OperatorChoice::Epitome(s) => s.shape().params(),
        })
        .collect();
    let alloc = mp.allocate(&sens, &params).unwrap();
    let precs: Vec<Precision> = alloc.bits.iter().map(|&b| Precision::new(b, 9)).collect();
    let mp_costs = epim.simulate_per_layer(&model, &precs);
    let w3 = epim.simulate(&model, Precision::new(3, 9));
    let w5 = epim.simulate(&model, Precision::new(5, 9));
    assert!(mp_costs.crossbars() >= w3.crossbars());
    assert!(mp_costs.crossbars() <= w5.crossbars());
    let acc_mp = acc.epim_accuracy(
        cr,
        WeightScheme::Mixed {
            avg_bits: alloc.avg_bits,
        },
        QuantMethod::PerCrossbarOverlap,
    );
    let acc_w3 = acc.epim_accuracy(
        cr,
        WeightScheme::Fixed { bits: 3 },
        QuantMethod::PerCrossbarOverlap,
    );
    let acc_w5 = acc.epim_accuracy(
        cr,
        WeightScheme::Fixed { bits: 5 },
        QuantMethod::PerCrossbarOverlap,
    );
    assert!(acc_mp >= acc_w3 && acc_mp <= acc_w5);
}

#[test]
fn bottleneck_block_runs_functionally_on_pim() {
    // A ResNet-style bottleneck (1x1 reduce -> 3x3 epitome -> 1x1 expand,
    // with residual add) executed entirely through PIM data paths, checked
    // against the pure-tensor reference. Every weight layer — including
    // the 1x1 convs — runs as an (identity-shaped or compressed) epitome
    // on the simulated crossbars.
    use epim::core::EpitomeShape;
    use epim::tensor::ops::{conv2d, relu};

    let c_in = 16usize;
    let width = 8usize;
    let mut r = rng::seeded(77);
    let x = init::uniform(&[1, c_in, 6, 6], -1.0, 1.0, &mut r);

    // Layer specs: 1x1s as identity epitomes, the 3x3 compressed 2x.
    let specs = [
        (
            epim::core::EpitomeSpec::new(
                ConvShape::new(width, c_in, 1, 1),
                EpitomeShape::new(width, c_in, 1, 1),
            )
            .unwrap(),
            Conv2dCfg {
                stride: 1,
                padding: 0,
            },
        ),
        (
            epim::core::EpitomeSpec::new(
                ConvShape::new(width, width, 3, 3),
                EpitomeShape::new(width / 2, width, 3, 3),
            )
            .unwrap(),
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
        ),
        (
            epim::core::EpitomeSpec::new(
                ConvShape::new(c_in, width, 1, 1),
                EpitomeShape::new(c_in, width, 1, 1),
            )
            .unwrap(),
            Conv2dCfg {
                stride: 1,
                padding: 0,
            },
        ),
    ];
    let epitomes: Vec<Epitome> = specs
        .iter()
        .enumerate()
        .map(|(i, (spec, _))| {
            let data = init::kaiming_normal(&spec.shape().dims(), &mut r);
            let _ = i;
            Epitome::from_tensor(spec.clone(), data).unwrap()
        })
        .collect();

    // PIM execution: three data paths chained with ReLUs + residual.
    let mut cur_pim = x.clone();
    for (epi, (_, cfg)) in epitomes.iter().zip(&specs) {
        let dp = DataPath::new(epi, *cfg, true).unwrap();
        let (y, stats) = dp.execute(&cur_pim).unwrap();
        assert!(stats.rounds > 0);
        cur_pim = relu(&y);
    }
    let out_pim = cur_pim.add(&x).unwrap(); // residual

    // Reference execution with reconstructed weights.
    let mut cur_ref = x.clone();
    for (epi, (_, cfg)) in epitomes.iter().zip(&specs) {
        let w = epi.reconstruct().unwrap();
        cur_ref = relu(&conv2d(&cur_ref, &w, None, *cfg).unwrap());
    }
    let out_ref = cur_ref.add(&x).unwrap();

    assert!(
        out_pim.allclose(&out_ref, 1e-2).unwrap(),
        "bottleneck on PIM diverged: mse {}",
        out_pim.mse(&out_ref).unwrap()
    );
    // The middle layer actually wrapped (cout 8 from cout_e 4).
    let wrap = epim::core::wrapping_factor(specs[1].0.plan());
    assert_eq!(wrap.factor, 2);
}

#[test]
fn deterministic_end_to_end() {
    // Everything downstream of a seed is bit-reproducible.
    let run = || {
        let designer = EpitomeDesigner::new(64, 64);
        let spec = designer
            .design(ConvShape::new(32, 16, 3, 3), 72, 16)
            .unwrap();
        let dims = spec.shape().dims();
        let mut r = rng::seeded(99);
        let epi = Epitome::from_tensor(spec, init::kaiming_normal(&dims, &mut r)).unwrap();
        let x = Tensor::ones(&[1, 16, 5, 5]);
        let dp = DataPath::new(
            &epi,
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            true,
        )
        .unwrap();
        let (y, _) = dp.execute(&x).unwrap();
        y
    };
    assert_eq!(run(), run());
}
