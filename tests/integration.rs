//! Cross-crate integration tests: epitome design → mapping → data path →
//! quantization → cost model, exercised together through the facade crate.

use epim::core::{wrapping_factor, ConvShape, Epitome, EpitomeDesigner, EpitomeShape, EpitomeSpec};
use epim::models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim::models::network::{Network, OperatorChoice};
use epim::models::resnet::{resnet101, resnet50};
use epim::pim::datapath::DataPath;
use epim::pim::{AcceleratorConfig, CostModel, Precision};
use epim::prune::{element_prune, prune_blocks, BlockPruneConfig};
use epim::quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim::search::{EvoSearch, Objective, SearchConfig, SearchLayer};
use epim::tensor::ops::{conv2d, Conv2dCfg};
use epim::tensor::{init, rng};

#[test]
fn designed_epitome_runs_quantized_on_datapath() {
    // Full pipeline: design -> init -> quantize (overlap-aware, per
    // crossbar) -> run on the PIM data path -> compare against the
    // quantized reconstructed conv.
    let designer = EpitomeDesigner::new(32, 32);
    let conv = ConvShape::new(64, 32, 3, 3);
    let spec = designer.design(conv, 144, 32).unwrap();
    let mut r = rng::seeded(7);
    let epi = Epitome::from_tensor(
        spec.clone(),
        init::kaiming_normal(&spec.shape().dims(), &mut r),
    )
    .unwrap();
    let (qepi, report) = quantize_epitome(
        &epi,
        5,
        QuantGranularity::PerCrossbar { rows: 32, cols: 32 },
        &RangeEstimator::overlap_default(),
    )
    .unwrap();
    assert!(report.mse > 0.0);

    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let x = init::uniform(&[1, 32, 8, 8], -1.0, 1.0, &mut r);
    let dp = DataPath::new(&qepi, cfg, true).unwrap();
    let (y_pim, stats) = dp.execute(&x).unwrap();
    let y_ref = conv2d(&x, &qepi.reconstruct().unwrap(), None, cfg).unwrap();
    assert!(y_pim.allclose(&y_ref, 1e-3).unwrap());
    assert!(stats.rounds > 0);
}

#[test]
fn uniform_epim_resnet50_reproduces_table1_shape() {
    // The headline Table 1 shape at W3A9: crossbar compression in the
    // tens, energy far below the FP32 baseline, accuracy within ~5 points.
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let base = Network::baseline(resnet50());
    let epim = Network::uniform_epitome(resnet50(), &designer, 1024, 256).unwrap();

    let base_fp = base.simulate(&model, Precision::fp32());
    let w3 = epim.simulate(&model, Precision::new(3, 9));
    let cr = base_fp.crossbars() as f64 / w3.crossbars() as f64;
    assert!(cr > 15.0, "W3A9 crossbar CR {cr} (paper: 30.65)");
    let energy_red = base_fp.energy_mj() / w3.energy_mj();
    assert!(
        energy_red > 5.0,
        "energy reduction {energy_red} (paper: 23.01)"
    );

    let acc = AccuracyModel::resnet50();
    let top1 = acc.epim_accuracy(
        epim.param_compression(),
        WeightScheme::Fixed { bits: 3 },
        QuantMethod::PerCrossbarOverlap,
    );
    assert!(
        (acc.baseline() - top1) < 5.5,
        "accuracy drop too large: {top1}"
    );
}

#[test]
fn resnet101_scales_consistently_with_resnet50() {
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let b50 = Network::baseline(resnet50()).simulate(&model, Precision::fp32());
    let b101 = Network::baseline(resnet101()).simulate(&model, Precision::fp32());
    // ResNet-101 is roughly 1.7-2x the size/latency of ResNet-50 (paper:
    // 22912 vs 13120 XBs; 189.7 vs 139.8 ms).
    let xb_ratio = b101.crossbars() as f64 / b50.crossbars() as f64;
    assert!((1.4..2.3).contains(&xb_ratio), "XB ratio {xb_ratio}");
    let lat_ratio = b101.latency_ms() / b50.latency_ms();
    assert!((1.1..2.2).contains(&lat_ratio), "latency ratio {lat_ratio}");

    let e101 = Network::uniform_epitome(resnet101(), &designer, 1024, 256).unwrap();
    let w3 = e101.simulate(&model, Precision::new(3, 9));
    let cr = b101.crossbars() as f64 / w3.crossbars() as f64;
    assert!(cr > 15.0, "ResNet-101 W3A9 XB CR {cr} (paper: 31.22)");
}

#[test]
fn search_improves_on_uniform_design_like_figure4() {
    // Figure 4's claim: layer-wise search + wrapping beats the uniform
    // epitome at similar compression.
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let precision = Precision::new(9, 9);

    let backbone = resnet50();
    let layers: Vec<SearchLayer> = backbone
        .layers
        .iter()
        .filter(|l| l.conv.kh == 3 && l.conv.cin >= 128)
        .map(|l| SearchLayer {
            conv: l.conv,
            out_pixels: l.out_pixels(),
            candidates: designer.candidates(l.conv).unwrap(),
        })
        .collect();
    assert!(layers.len() >= 10);

    let search = EvoSearch::new(
        layers.clone(),
        model,
        precision,
        SearchConfig {
            iterations: 15,
            population: 24,
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // Uniform mid-ladder reference.
    let uniform: Vec<usize> = layers.iter().map(|l| l.candidates.len() / 2).collect();
    let (u_costs, _) = search.evaluate(&uniform);
    let best = search.run();
    assert!(
        best.costs.latency_ns <= u_costs.latency_ns,
        "search {} vs uniform {}",
        best.costs.latency_ns,
        u_costs.latency_ns
    );
}

#[test]
fn epitome_crossbars_beat_pruning_crossbars_at_same_budget() {
    // Table 3's structural point: the epitome converts parameter savings
    // into crossbar savings more effectively than block pruning at the
    // same nominal ratio.
    let mut r = rng::seeded(3);
    let conv = ConvShape::new(256, 128, 3, 3);
    let w = init::kaiming_normal(&conv.dims(), &mut r);
    let matrix = w.reshape(&[conv.matrix_rows(), conv.cout]).unwrap();

    // PIM-Prune at 50% blocks.
    let res = prune_blocks(
        &matrix,
        &BlockPruneConfig {
            block_rows: 128,
            block_cols: 128,
            ratio: 0.5,
        },
    )
    .unwrap();
    assert!(res.report.compression >= 1.9);

    // Element pruning on an epitome (Table 3 "Epitome + Pruning").
    let spec = EpitomeSpec::new(conv, EpitomeShape::new(128, 128, 2, 2)).unwrap();
    let epi = Epitome::from_conv_weight(spec.clone(), &w).unwrap();
    let (_, erep) = element_prune(epi.tensor(), 0.5).unwrap();
    let combined = spec.param_compression() * erep.compression;
    assert!(
        combined > res.report.compression,
        "epitome+pruning {combined} vs prune {}",
        res.report.compression
    );
}

#[test]
fn mixed_network_choices_simulate() {
    // A hand-mixed network: epitomes on big layers only.
    let backbone = resnet50();
    let designer = EpitomeDesigner::new(128, 128);
    let mut choices = Vec::new();
    for layer in &backbone.layers {
        if layer.conv.params() > 1_000_000 {
            let spec = designer
                .design(
                    layer.conv,
                    layer.conv.matrix_rows() / 2,
                    layer.conv.cout / 2,
                )
                .unwrap();
            choices.push(OperatorChoice::Epitome(spec));
        } else {
            choices.push(OperatorChoice::Conv);
        }
    }
    let net = Network::from_choices(backbone, choices).unwrap();
    assert!(net.epitome_layers() > 0);
    let model = CostModel::new(AcceleratorConfig::default());
    let costs = net.simulate(&model, Precision::new(9, 9));
    assert!(costs.crossbars() > 0);
    assert!(net.param_compression() > 1.0);
}

#[test]
fn wrapping_factor_consistent_between_core_and_pim() {
    let spec =
        EpitomeSpec::new(ConvShape::new(24, 6, 3, 3), EpitomeShape::new(8, 6, 3, 3)).unwrap();
    let wrap = wrapping_factor(spec.plan());
    assert_eq!(wrap.factor, 3);
    let off =
        CostModel::new(AcceleratorConfig::default()).epitome_layer(&spec, 49, Precision::new(9, 9));
    let on = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true))
        .epitome_layer(&spec, 49, Precision::new(9, 9));
    assert_eq!(on.rounds_per_pixel * wrap.factor, off.rounds_per_pixel);
}

#[test]
fn objective_choice_changes_search_outcome_metrics() {
    let designer = EpitomeDesigner::new(128, 128);
    let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
    let backbone = resnet50();
    let layers: Vec<SearchLayer> = backbone
        .layers
        .iter()
        .filter(|l| l.conv.kh == 3 && l.conv.cin >= 256)
        .map(|l| SearchLayer {
            conv: l.conv,
            out_pixels: l.out_pixels(),
            candidates: designer.candidates(l.conv).unwrap(),
        })
        .collect();
    let run = |objective| {
        EvoSearch::new(
            layers.clone(),
            model,
            Precision::new(9, 9),
            SearchConfig {
                iterations: 12,
                seed: 2,
                objective,
                ..Default::default()
            },
        )
        .unwrap()
        .run()
    };
    let lat = run(Objective::Latency);
    let en = run(Objective::Energy);
    assert!(lat.costs.latency_ns <= en.costs.latency_ns * 1.05);
    assert!(en.costs.energy_pj <= lat.costs.energy_pj * 1.05);
}
