//! Graph optimization for [`NetworkProgram`]: fused epilogues, identity
//! folds and a liveness-planned activation arena.
//!
//! Lowering (see [`crate::lower`]) emits a deliberately naive program —
//! one stage per backbone op, a separate `Relu` stage after every
//! convolution and residual add. [`NetworkProgram::optimize`] rewrites
//! that program into the one the serving runtime actually executes:
//!
//! 1. **ReLU fusion** — a `Relu` whose producer is a `Conv`, `Epitome`,
//!    `Linear` or `Add` stage that *no other stage reads pre-activation*
//!    is folded into the producer's epilogue (`relu: true` on the
//!    [`StageOp`]). The fused kernels clamp at the final writeback of the
//!    exact same accumulated value, so fusion is **bit-identity-safe by
//!    construction** — not "close enough", bitwise equal.
//! 2. **Idempotent ReLU folds** — `relu(relu(x))` is bitwise `relu(x)`,
//!    so a `Relu` reading an already-rectified value becomes an alias.
//! 3. **Identity folds** — a `MaxPool` with a 1×1 window, stride 1 and no
//!    padding copies its input; a `GlobalAvgPool` over a 1×1 map computes
//!    `s * 1.0` per channel, which is bitwise `s`. Both become aliases.
//!
//! The pass never removes a stage whose *value* someone still needs — an
//! alias just remaps readers — and it never drops `Epitome` stages, so
//! the program's [`DataPathStats`](epim_pim::datapath::DataPathStats)
//! rollups are unchanged. The final stage is special: the program output
//! is the last stage's value, so an alias at the tail is only taken when
//! its target *is* the new tail.
//!
//! [`NetworkProgram::plan_arena`] then computes per-stage liveness over
//! the (optimized) program and packs every activation — plus per-stage
//! scratch such as the im2col buffer — into one static arena with a
//! greedy first-fit assignment. The runtime allocates that arena once per
//! in-flight batch instead of churning a resize-prone buffer pool.

use crate::lower::{NetworkProgram, Stage, StageInput, StageOp};

impl NetworkProgram {
    /// Returns the optimized program: fused ReLU epilogues, idempotent
    /// ReLU folds and identity-pool folds applied.
    ///
    /// The optimized program's [`forward_reference`] output and datapath
    /// stats are bitwise equal to the unoptimized program's — the
    /// serving runtime enforces exactly that invariant in its tests.
    ///
    /// [`forward_reference`]: NetworkProgram::forward_reference
    pub fn optimize(&self) -> NetworkProgram {
        let consumers = self.consumers();
        let n = self.stages.len();
        // remap[old] = index of the new stage producing old stage's value.
        let mut remap: Vec<usize> = Vec::with_capacity(n);
        // origin[new] = the old stage a kept new stage came from.
        let mut origin: Vec<usize> = Vec::new();
        let mut stages: Vec<Stage> = Vec::new();

        for (i, stage) in self.stages.iter().enumerate() {
            let is_last = i == n - 1;
            // An alias (or fusion into the producer) at the tail is only
            // sound when its target ends up as the new tail.
            let alias_ok = |target: usize, stages: &[Stage]| -> bool {
                !is_last || target == stages.len() - 1
            };
            match &stage.op {
                StageOp::Relu => {
                    if let StageInput::Stage(j) = stage.input {
                        let nj = remap[j];
                        // relu(relu(x)) == relu(x) bitwise.
                        if stages[nj].op.fused_relu() || matches!(self.stages[j].op, StageOp::Relu)
                        {
                            if alias_ok(nj, &stages) {
                                remap.push(nj);
                                continue;
                            }
                        } else if consumers[j] == [i] && origin[nj] == j {
                            // Sole reader of the pre-activation value:
                            // fold into the producer's epilogue.
                            if let Some(fused) = stages[nj].op.with_fused_relu() {
                                if alias_ok(nj, &stages) {
                                    stages[nj].op = fused;
                                    stages[nj].name.push_str("+relu");
                                    remap.push(nj);
                                    continue;
                                }
                            }
                        }
                    }
                }
                StageOp::MaxPool(cfg) if cfg.window == 1 && cfg.stride == 1 && cfg.padding == 0 => {
                    if let StageInput::Stage(j) = stage.input {
                        let nj = remap[j];
                        if alias_ok(nj, &stages) {
                            remap.push(nj);
                            continue;
                        }
                    }
                }
                StageOp::GlobalAvgPool => {
                    // GAP over a 1×1 map is `s * (1.0 / 1)` per channel —
                    // bitwise the identity (shape included: lowering emits
                    // `[C, 1, 1]` for both).
                    if let StageInput::Stage(j) = stage.input {
                        if self.stages[j].out_shape == stage.out_shape {
                            let nj = remap[j];
                            if alias_ok(nj, &stages) {
                                remap.push(nj);
                                continue;
                            }
                        }
                    }
                }
                _ => {}
            }
            // Keep the stage, remapping its reads into the new indexing.
            let input = match stage.input {
                StageInput::Source => StageInput::Source,
                StageInput::Stage(j) => StageInput::Stage(remap[j]),
            };
            let mut op = stage.op.clone();
            if let StageOp::Add { with, .. } = &mut op {
                *with = remap[*with];
            }
            stages.push(Stage {
                name: stage.name.clone(),
                input,
                op,
                out_shape: stage.out_shape.clone(),
            });
            origin.push(i);
            remap.push(stages.len() - 1);
        }

        NetworkProgram {
            input_shape: self.input_shape.clone(),
            stages,
        }
    }

    /// Computes the static activation arena for this program.
    ///
    /// `scratch` gives each stage's per-image scratch requirement in f32
    /// units (e.g. the im2col column buffer for dense convolutions; zero
    /// for stages that need none) and must have one entry per stage.
    ///
    /// All slot offsets and lengths are **per image**; an executor
    /// serving `n` images scales every offset and length by `n`, which
    /// preserves disjointness.
    ///
    /// # Panics
    ///
    /// Panics if `scratch.len() != self.stages().len()` or the program is
    /// empty.
    pub fn plan_arena(&self, scratch: &[usize]) -> ArenaPlan {
        let n = self.stages.len();
        assert_eq!(scratch.len(), n, "one scratch size per stage");
        assert!(n > 0, "cannot plan an empty program");

        // Inclusive live intervals over stage indices. A value is born
        // when its stage executes and dies after its last reader; the
        // source is born before stage 0 and dies after its last reader.
        let mut value_death = vec![0usize; n];
        let mut source_death = 0usize;
        for (i, stage) in self.stages.iter().enumerate() {
            value_death[i] = i;
            match stage.input {
                StageInput::Source => source_death = source_death.max(i),
                StageInput::Stage(j) => value_death[j] = value_death[j].max(i),
            }
            if let StageOp::Add { with, .. } = stage.op {
                value_death[with] = value_death[with].max(i);
            }
        }

        let mut placed: Vec<PlacedSlot> = Vec::new();
        let source_len: usize = self.input_shape.iter().product();
        let source = first_fit(&mut placed, source_len, 0, source_death);
        let mut values = Vec::with_capacity(n);
        let mut scratch_slots = Vec::with_capacity(n);
        for (i, stage) in self.stages.iter().enumerate() {
            let len: usize = stage.out_shape.iter().product();
            values.push(first_fit(&mut placed, len, i, value_death[i]));
            // Scratch lives only while its stage executes.
            scratch_slots.push(if scratch[i] > 0 {
                Some(first_fit(&mut placed, scratch[i], i, i))
            } else {
                None
            });
        }
        let total = placed.iter().map(|p| p.slot.offset + p.slot.len).max();
        ArenaPlan {
            total: total.unwrap_or(0),
            source,
            values,
            scratch: scratch_slots,
        }
    }
}

/// One contiguous range of the activation arena, in per-image f32 units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSlot {
    /// Start of the range.
    pub offset: usize,
    /// Length of the range.
    pub len: usize,
}

/// A static arena layout for every activation (and scratch buffer) a
/// program touches, produced by [`NetworkProgram::plan_arena`].
///
/// Offsets and lengths are per image; scale by the batch size to size a
/// concrete allocation. Slots whose lifetimes overlap never share bytes;
/// slots whose lifetimes are disjoint may.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// Arena size in per-image f32 units (the peak live footprint).
    pub total: usize,
    /// Where the program input lives.
    pub source: ArenaSlot,
    /// Where each stage's output lives, indexed by stage.
    pub values: Vec<ArenaSlot>,
    /// Each stage's scratch slot, if it requested one.
    pub scratch: Vec<Option<ArenaSlot>>,
}

struct PlacedSlot {
    slot: ArenaSlot,
    birth: usize,
    death: usize,
}

/// Greedy first-fit: the lowest offset whose range avoids every placed
/// slot with an overlapping (inclusive) lifetime.
fn first_fit(placed: &mut Vec<PlacedSlot>, len: usize, birth: usize, death: usize) -> ArenaSlot {
    let mut live: Vec<(usize, usize)> = placed
        .iter()
        .filter(|p| p.birth <= death && birth <= p.death)
        .map(|p| (p.slot.offset, p.slot.offset + p.slot.len))
        .collect();
    live.sort_unstable();
    let mut offset = 0usize;
    for (start, end) in live {
        if offset + len <= start {
            break;
        }
        offset = offset.max(end);
    }
    let slot = ArenaSlot { offset, len };
    placed.push(PlacedSlot { slot, birth, death });
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::NetworkWeights;
    use crate::network::Network;
    use crate::resnet::{Backbone, LayerInfo};
    use crate::zoo;
    use epim_core::ConvShape;
    use epim_pim::datapath::AnalogModel;
    use epim_tensor::ops::{Conv2dCfg, PoolCfg};
    use epim_tensor::{rng, Tensor};

    fn chain_net() -> Network {
        let layer = |name: &str, conv: ConvShape, res: usize| LayerInfo {
            name: name.to_string(),
            conv,
            out_h: res,
            out_w: res,
        };
        Network::baseline(Backbone {
            name: "chain".to_string(),
            layers: vec![
                layer("l0", ConvShape::new(8, 4, 3, 3), 8),
                layer("l1", ConvShape::new(8, 8, 3, 3), 4),
                layer("head", ConvShape::new(10, 8, 1, 1), 1),
            ],
        })
    }

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut r = rng::seeded(seed);
        let data: Vec<f32> = (0..shape.iter().product::<usize>())
            .map(|_| rng::uniform(&mut r, -1.0, 1.0))
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn chain_relus_fuse_into_convs() {
        let prog = chain_net().lower(8, 8).unwrap();
        let opt = prog.optimize();
        // l0, relu, l1, relu, gap, head -> l0+relu, l1+relu, gap, head.
        assert_eq!(opt.stages().len(), 4);
        assert!(opt.stages()[0].op.fused_relu());
        assert!(opt.stages()[1].op.fused_relu());
        assert_eq!(opt.stages()[0].name, "l0+relu");
        assert!(matches!(opt.stages()[2].op, StageOp::GlobalAvgPool));
        assert!(!opt.stages()[3].op.fused_relu(), "head has no relu");
        assert_eq!(opt.output_shape(), prog.output_shape());
    }

    #[test]
    fn resnet_fuses_stem_block_and_add_relus() {
        let net = Network::baseline(zoo::tiny_resnet_backbone(8, 4, 10));
        let prog = net.lower(16, 16).unwrap();
        let opt = prog.optimize();
        assert!(opt.stages().len() < prog.stages().len());
        assert!(
            opt.stages().iter().all(|s| !matches!(s.op, StageOp::Relu)),
            "every relu fuses in a resnet program"
        );
        // Residual adds carry the post-add relu.
        let adds: Vec<&Stage> = opt
            .stages()
            .iter()
            .filter(|s| matches!(s.op, StageOp::Add { .. }))
            .collect();
        assert_eq!(adds.len(), 2);
        assert!(adds.iter().all(|s| s.op.fused_relu()));
        // conv3 feeds the add pre-activation: it must NOT be fused.
        let conv3 = opt
            .stages()
            .iter()
            .find(|s| s.name == "stage1.block0.conv3")
            .unwrap();
        assert!(!conv3.op.fused_relu());
        // Epitome stages fuse too.
        let (enet, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
        let eopt = enet.lower(16, 16).unwrap().optimize();
        assert!(eopt
            .stages()
            .iter()
            .any(|s| matches!(s.op, StageOp::Epitome { relu: true, .. })));
    }

    #[test]
    fn identity_pools_fold_and_tail_alias_is_guarded() {
        let conv_cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let conv = |name: &str, input: StageInput| Stage {
            name: name.to_string(),
            input,
            op: StageOp::Conv {
                layer: 0,
                cfg: conv_cfg,
                relu: false,
            },
            out_shape: vec![4, 8, 8],
        };
        let identity_pool = |input: StageInput| Stage {
            name: "pool".to_string(),
            input,
            op: StageOp::MaxPool(PoolCfg {
                window: 1,
                stride: 1,
                padding: 0,
            }),
            out_shape: vec![4, 8, 8],
        };
        // Mid-program identity pool folds away entirely.
        let prog = NetworkProgram {
            input_shape: vec![4, 8, 8],
            stages: vec![
                conv("c0", StageInput::Source),
                identity_pool(StageInput::Stage(0)),
                conv("c1", StageInput::Stage(1)),
            ],
        };
        let opt = prog.optimize();
        assert_eq!(opt.stages().len(), 2);
        assert_eq!(opt.stages()[1].input, StageInput::Stage(0));
        // A tail alias whose target is not the new tail must be kept:
        // the program output is the tail stage's value.
        let prog = NetworkProgram {
            input_shape: vec![4, 8, 8],
            stages: vec![
                conv("c0", StageInput::Source),
                conv("c1", StageInput::Stage(0)),
                identity_pool(StageInput::Stage(0)),
            ],
        };
        let opt = prog.optimize();
        assert_eq!(opt.stages().len(), 3, "guarded tail alias stays");
        assert!(matches!(opt.stages()[2].op, StageOp::MaxPool(_)));
    }

    #[test]
    fn optimized_reference_is_bitwise_equal() {
        let analog = AnalogModel {
            adc_bits: Some(8),
            dac_bits: Some(9),
            ..AnalogModel::ideal()
        };
        let cases: Vec<(Network, usize, usize)> = vec![
            (chain_net(), 8, 8),
            (
                Network::baseline(zoo::tiny_resnet_backbone(8, 4, 10)),
                16,
                16,
            ),
            (zoo::tiny_epitome_network(8, 4, 10).unwrap().0, 16, 16),
        ];
        for (net, h, w) in cases {
            let prog = net.lower(h, w).unwrap();
            let opt = prog.optimize();
            let weights = NetworkWeights::random(&net, 11).unwrap();
            let mut shape = vec![2];
            shape.extend_from_slice(prog.input_shape());
            let x = random_input(&shape, 97);
            for wrapping in [false, true] {
                let (y0, s0) = prog
                    .forward_reference(&weights, wrapping, analog, &x)
                    .unwrap();
                let (y1, s1) = opt
                    .forward_reference(&weights, wrapping, analog, &x)
                    .unwrap();
                assert_eq!(y0.data(), y1.data(), "bitwise output identity");
                assert_eq!(s0, s1, "datapath stats identity");
            }
        }
    }

    #[test]
    fn arena_slots_never_overlap_while_live() {
        let net = Network::baseline(zoo::tiny_resnet_backbone(8, 4, 10));
        let opt = net.lower(16, 16).unwrap().optimize();
        let scratch: Vec<usize> = opt
            .stages()
            .iter()
            .enumerate()
            .map(|(i, _)| (i % 3) * 100)
            .collect();
        let plan = opt.plan_arena(&scratch);

        // Rebuild (slot, interval) tuples exactly as planning assigns them.
        let n = opt.stages().len();
        let mut value_death = vec![0usize; n];
        let mut source_death = 0usize;
        for (i, stage) in opt.stages().iter().enumerate() {
            value_death[i] = i;
            match stage.input {
                StageInput::Source => source_death = source_death.max(i),
                StageInput::Stage(j) => value_death[j] = value_death[j].max(i),
            }
            if let StageOp::Add { with, .. } = stage.op {
                value_death[with] = value_death[with].max(i);
            }
        }
        let mut slots: Vec<(ArenaSlot, usize, usize)> = vec![(plan.source, 0, source_death)];
        for (i, &death) in value_death.iter().enumerate() {
            slots.push((plan.values[i], i, death));
            if let Some(s) = plan.scratch[i] {
                slots.push((s, i, i));
            }
        }
        for (a, (sa, ba, da)) in slots.iter().enumerate() {
            assert!(sa.offset + sa.len <= plan.total);
            for (sb, bb, db) in slots.iter().skip(a + 1) {
                let time_overlap = ba <= db && bb <= da;
                let mem_overlap = sa.offset < sb.offset + sb.len && sb.offset < sa.offset + sa.len;
                assert!(
                    !(time_overlap && mem_overlap),
                    "live slots must not share memory"
                );
            }
        }
        // The arena must be strictly smaller than keeping everything live.
        let keep_all: usize = plan.source.len
            + plan.values.iter().map(|s| s.len).sum::<usize>()
            + plan.scratch.iter().flatten().map(|s| s.len).sum::<usize>();
        assert!(plan.total < keep_all);
    }
}
