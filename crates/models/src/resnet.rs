//! ResNet-50 / ResNet-101 layer inventories at 224×224 input.
//!
//! The paper evaluates both backbones (Table 1). The inventory lists every
//! weight layer mapped onto crossbars: the 7×7 stem, every bottleneck
//! convolution, every downsample projection, and the final fully-connected
//! layer (as a 1×1 "convolution" over a 1×1 feature map, which is exactly
//! how it maps to word/bit lines).

use epim_core::ConvShape;
use serde::{Deserialize, Serialize};

/// One weight layer of a backbone: shape plus output resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerInfo {
    /// Unique layer name, e.g. `"stage3.block5.conv2"`.
    pub name: String,
    /// Weight shape.
    pub conv: ConvShape,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
}

impl LayerInfo {
    /// Output pixels per image (`out_h × out_w`).
    pub fn out_pixels(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Multiply–accumulate operations per image.
    pub fn macs(&self) -> u64 {
        self.out_pixels() as u64 * self.conv.params() as u64
    }
}

/// A named sequence of weight layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backbone {
    /// Model name (`"ResNet50"` / `"ResNet101"`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerInfo>,
}

impl Backbone {
    /// Total weight parameters.
    pub fn params(&self) -> usize {
        self.layers.iter().map(|l| l.conv.params()).sum()
    }

    /// Total MACs per image.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(LayerInfo::macs).sum()
    }

    /// Finds a layer by name.
    pub fn layer(&self, name: &str) -> Option<&LayerInfo> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Builds the ResNet-50 inventory: stem + `[3, 4, 6, 3]` bottlenecks +
/// classifier, 53 convolutions + 1 FC = 54 weight layers.
pub fn resnet50() -> Backbone {
    resnet(&[3, 4, 6, 3], "ResNet50")
}

/// Builds the ResNet-101 inventory: stem + `[3, 4, 23, 3]` bottlenecks +
/// classifier, 104 convolutions + 1 FC = 105 weight layers.
pub fn resnet101() -> Backbone {
    resnet(&[3, 4, 23, 3], "ResNet101")
}

fn resnet(blocks: &[usize; 4], name: &str) -> Backbone {
    let mut layers = Vec::new();
    // Stem: 7x7/64, stride 2 -> 112x112; maxpool /2 -> 56x56.
    layers.push(LayerInfo {
        name: "stem.conv1".to_string(),
        conv: ConvShape::new(64, 3, 7, 7),
        out_h: 112,
        out_w: 112,
    });

    let widths = [64usize, 128, 256, 512];
    let mut in_ch = 64usize; // after maxpool
    let mut res = 56usize;
    for (stage, (&n_blocks, &width)) in blocks.iter().zip(&widths).enumerate() {
        let out_ch = width * 4;
        if stage > 0 {
            res /= 2; // stride-2 at stage entry (in conv2 and downsample)
        }
        for block in 0..n_blocks {
            let prefix = format!("stage{}.block{}", stage + 1, block);
            // conv1: 1x1 reduce.
            layers.push(LayerInfo {
                name: format!("{prefix}.conv1"),
                conv: ConvShape::new(width, in_ch, 1, 1),
                out_h: res,
                out_w: res,
            });
            // conv2: 3x3 (stride 2 on first block of stages 2-4, folded
            // into the resolution already).
            layers.push(LayerInfo {
                name: format!("{prefix}.conv2"),
                conv: ConvShape::new(width, width, 3, 3),
                out_h: res,
                out_w: res,
            });
            // conv3: 1x1 expand.
            layers.push(LayerInfo {
                name: format!("{prefix}.conv3"),
                conv: ConvShape::new(out_ch, width, 1, 1),
                out_h: res,
                out_w: res,
            });
            // Downsample projection on the first block of each stage.
            if block == 0 {
                layers.push(LayerInfo {
                    name: format!("{prefix}.downsample"),
                    conv: ConvShape::new(out_ch, in_ch, 1, 1),
                    out_h: res,
                    out_w: res,
                });
            }
            in_ch = out_ch;
        }
    }

    // Classifier as a 1x1 conv over the pooled 1x1 feature map.
    layers.push(LayerInfo {
        name: "fc".to_string(),
        conv: ConvShape::new(1000, 2048, 1, 1),
        out_h: 1,
        out_w: 1,
    });

    Backbone {
        name: name.to_string(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_layer_count() {
        let net = resnet50();
        // 1 stem + 16 blocks * 3 convs + 4 downsamples + 1 fc = 54.
        assert_eq!(net.layers.len(), 54);
    }

    #[test]
    fn resnet101_layer_count() {
        let net = resnet101();
        // 1 + 33*3 + 4 + 1 = 105.
        assert_eq!(net.layers.len(), 105);
    }

    #[test]
    fn resnet50_param_count_close_to_reference() {
        // Torchvision ResNet-50: 25.56M total; conv+fc weights (no BN,
        // no biases) are ~25.50M.
        let p = resnet50().params() as f64 / 1e6;
        assert!((25.0..26.0).contains(&p), "params {p}M");
    }

    #[test]
    fn resnet101_param_count_close_to_reference() {
        // Torchvision ResNet-101: 44.55M.
        let p = resnet101().params() as f64 / 1e6;
        assert!((44.0..45.0).contains(&p), "params {p}M");
    }

    #[test]
    fn resnet50_macs_close_to_reference() {
        // ~4.1 GMACs at 224x224.
        let g = resnet50().macs() as f64 / 1e9;
        assert!((3.8..4.4).contains(&g), "GMACs {g}");
    }

    #[test]
    fn stage_resolutions_halve() {
        let net = resnet50();
        assert_eq!(net.layer("stage1.block0.conv2").unwrap().out_h, 56);
        assert_eq!(net.layer("stage2.block0.conv2").unwrap().out_h, 28);
        assert_eq!(net.layer("stage3.block0.conv2").unwrap().out_h, 14);
        assert_eq!(net.layer("stage4.block0.conv2").unwrap().out_h, 7);
    }

    #[test]
    fn channel_progression() {
        let net = resnet50();
        let l = net.layer("stage4.block2.conv3").unwrap();
        assert_eq!(l.conv.cout, 2048);
        assert_eq!(l.conv.cin, 512);
        let fc = net.layer("fc").unwrap();
        assert_eq!((fc.conv.cout, fc.conv.cin), (1000, 2048));
    }

    #[test]
    fn names_unique() {
        let net = resnet101();
        let mut names: Vec<&str> = net.layers.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), net.layers.len());
    }

    #[test]
    fn paper_figure3_layers_exist() {
        // Figure 3 references "Layer 9, 41, 67" of ResNet-50 (1-indexed
        // weight layers). Our inventory has 54 layers (per-conv indexing
        // in the paper counts differently), but indices 9 and 41 resolve.
        let net = resnet50();
        assert!(net.layers.get(8).is_some());
        assert!(net.layers.get(40).is_some());
    }
}
