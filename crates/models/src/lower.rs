//! Lowering: from a [`Network`] (backbone + per-layer operator choices) to
//! an executable [`NetworkProgram`].
//!
//! Until this module existed, `Network` was only *costable* — the cost
//! model walked its layer inventory, but there was no path from an input
//! image through the layers. [`Network::lower`] closes that gap: it turns
//! the inventory into an ordered op graph whose nodes are either **epitome
//! crossbar ops** (keyed by their [`EpitomeSpec`], executed on the PIM data
//! path) or **dense tensor ops** (`conv2d` / `linear` / pooling /
//! activation from `epim-tensor`), with every inter-stage shape inferred
//! and validated at lowering time.
//!
//! Two backbone conventions are understood:
//!
//! - **ResNet-style** (what [`crate::resnet::resnet50`] produces): a
//!   `stem.conv1` stem (conv → ReLU → 3×3/2 max pool), bottleneck blocks
//!   named `stageS.blockB.{conv1,conv2,conv3,downsample}` lowered with
//!   ReLU after conv1/conv2, a projection or identity shortcut, a residual
//!   add and the post-add ReLU, and a trailing `fc` classifier lowered as
//!   global average pooling plus a linear layer.
//! - **Plain chains** (anything else): layers run in order with ReLU
//!   between them; a final 1×1 layer whose recorded output is 1×1 becomes
//!   a global-average-pool + classifier head.
//!
//! Strides and paddings are not stored in the inventory; they are
//! *inferred* from each layer's recorded input/output resolutions and
//! kernel size, then verified against the convolution arithmetic — an
//! inconsistent inventory fails to lower rather than producing a program
//! that cannot run. The lowering is resolution-exact: the program is built
//! for the backbone's recorded geometry, so the input resolution passed to
//! [`Network::lower`] must reproduce every recorded layer resolution.
//!
//! The program itself is weight-free (that is what makes it shareable and
//! cacheable); [`NetworkWeights`] binds tensors/epitomes to the layers a
//! program references, and [`NetworkProgram::forward_reference`] executes
//! the stages one by one — the ground truth the serving runtime's
//! pipelined executor must match **bit for bit**.

use crate::network::{Network, OperatorChoice};
use crate::resnet::LayerInfo;
use epim_core::{Epitome, EpitomeError, EpitomeSpec};
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_pim::PimError;
use epim_tensor::ops::{
    conv2d, conv2d_out_dims, global_avg_pool, linear, max_pool2d, relu, Conv2dCfg, PoolCfg,
};
use epim_tensor::{init, rng, Tensor};

/// Where a stage reads its (primary) input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageInput {
    /// The program's input tensor.
    Source,
    /// The output of an earlier stage.
    Stage(usize),
}

/// One node of a lowered program.
///
/// The size difference between variants is intentional: `Epitome` carries
/// its full spec inline (the same trade-off `OperatorChoice` makes).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StageOp {
    /// A dense convolution executed by `epim_tensor::ops::conv2d`; the
    /// weight (and optional bias) is bound from the referenced backbone
    /// layer at execution time.
    Conv {
        /// Backbone layer index supplying the weight.
        layer: usize,
        /// Inferred stride/padding.
        cfg: Conv2dCfg,
        /// Fused ReLU epilogue (set by [`NetworkProgram::optimize`];
        /// lowering always emits `false`).
        relu: bool,
    },
    /// An epitome crossbar op executed on the PIM data path; the plan is
    /// keyed by `spec`, which is what lets a serving runtime share one
    /// compiled plan across every stage (and network) using it.
    Epitome {
        /// Backbone layer index supplying the epitome weights.
        layer: usize,
        /// The epitome spec (also the plan-cache key).
        spec: EpitomeSpec,
        /// Inferred stride/padding.
        cfg: Conv2dCfg,
        /// Fused ReLU epilogue (set by [`NetworkProgram::optimize`]).
        relu: bool,
    },
    /// Elementwise ReLU.
    Relu,
    /// Max pooling (the ResNet stem pool).
    MaxPool(
        /// Window/stride/padding.
        PoolCfg,
    ),
    /// Global average pooling to a `(N, C, 1, 1)` map.
    GlobalAvgPool,
    /// A fully-connected classifier head (flattens its `(N, C, 1, 1)`
    /// input); the weight is the referenced layer's 1×1 convolution.
    Linear {
        /// Backbone layer index supplying the weight.
        layer: usize,
        /// Fused ReLU epilogue (set by [`NetworkProgram::optimize`]).
        relu: bool,
    },
    /// Residual addition: this stage's primary input plus the output of
    /// stage `with`.
    Add {
        /// The other summand's stage index.
        with: usize,
        /// Fused ReLU epilogue (set by [`NetworkProgram::optimize`]).
        relu: bool,
    },
}

impl StageOp {
    /// The backbone layer this op binds weights from, if any.
    pub fn layer(&self) -> Option<usize> {
        match self {
            StageOp::Conv { layer, .. }
            | StageOp::Epitome { layer, .. }
            | StageOp::Linear { layer, .. } => Some(*layer),
            _ => None,
        }
    }

    /// Whether this op carries a fused ReLU epilogue.
    pub fn fused_relu(&self) -> bool {
        match self {
            StageOp::Conv { relu, .. }
            | StageOp::Epitome { relu, .. }
            | StageOp::Linear { relu, .. }
            | StageOp::Add { relu, .. } => *relu,
            _ => false,
        }
    }

    /// Returns a copy of this op with the fused-ReLU flag set, if the op
    /// supports an epilogue.
    pub(crate) fn with_fused_relu(&self) -> Option<StageOp> {
        let mut op = self.clone();
        match &mut op {
            StageOp::Conv { relu, .. }
            | StageOp::Epitome { relu, .. }
            | StageOp::Linear { relu, .. }
            | StageOp::Add { relu, .. } => {
                *relu = true;
                Some(op)
            }
            _ => None,
        }
    }
}

/// One stage of a [`NetworkProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable name (layer name or op kind).
    pub name: String,
    /// Where the stage reads its primary input.
    pub input: StageInput,
    /// What the stage computes.
    pub op: StageOp,
    /// Per-image output shape: `[C, H, W]` for feature maps, `[F]` for the
    /// classifier head.
    pub out_shape: Vec<usize>,
}

/// An executable, weight-free op graph lowered from a [`Network`].
///
/// Stages are stored in execution order; every stage's input is either the
/// program source or an *earlier* stage, so a single forward walk executes
/// the program. The final stage's output is the program output.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProgram {
    pub(crate) input_shape: Vec<usize>,
    pub(crate) stages: Vec<Stage>,
}

impl NetworkProgram {
    /// Per-image input shape `[C, H, W]`.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-image output shape of the final stage.
    pub fn output_shape(&self) -> &[usize] {
        &self
            .stages
            .last()
            .expect("programs have at least one stage")
            .out_shape
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The distinct epitome specs the program executes (deduplicated) —
    /// the set of compiled plans a serving runtime needs.
    pub fn epitome_specs(&self) -> Vec<&EpitomeSpec> {
        let mut specs: Vec<&EpitomeSpec> = Vec::new();
        for stage in &self.stages {
            if let StageOp::Epitome { spec, .. } = &stage.op {
                if !specs.contains(&spec) {
                    specs.push(spec);
                }
            }
        }
        specs
    }

    /// For each stage, the indices of stages (plus the source) that read
    /// its output — used by executors to free activations at their last
    /// use. Index `i` lists the stages consuming stage `i`'s output.
    pub fn consumers(&self) -> Vec<Vec<usize>> {
        let mut readers = vec![Vec::new(); self.stages.len()];
        for (i, stage) in self.stages.iter().enumerate() {
            if let StageInput::Stage(j) = stage.input {
                readers[j].push(i);
            }
            if let StageOp::Add { with, .. } = stage.op {
                readers[with].push(i);
            }
        }
        readers
    }

    /// Executes the program one stage at a time on `input`
    /// (`(N, C, H, W)`), binding weights per stage — the sequential ground
    /// truth for the pipelined serving executor, which must reproduce both
    /// the output and the [`DataPathStats`] rollup bit for bit.
    ///
    /// Epitome stages build a fresh [`DataPath`] per call; this is a
    /// reference, not a serving path.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] on weight/shape mismatches or execution
    /// failures.
    pub fn forward_reference(
        &self,
        weights: &NetworkWeights,
        wrapping_enabled: bool,
        analog: AnalogModel,
        input: &Tensor,
    ) -> Result<(Tensor, DataPathStats), PimError> {
        if input.rank() != 4 || input.shape()[1..] != self.input_shape[..] {
            return Err(PimError::geometry(format!(
                "program input must be (N, {}, {}, {}), got {:?}",
                self.input_shape[0],
                self.input_shape[1],
                self.input_shape[2],
                input.shape()
            )));
        }
        let mut stats = DataPathStats::default();
        let mut outputs: Vec<Option<Tensor>> = vec![None; self.stages.len()];
        for (i, stage) in self.stages.iter().enumerate() {
            let x = match stage.input {
                StageInput::Source => input,
                StageInput::Stage(j) => outputs[j].as_ref().expect("stages execute in order"),
            };
            let y = match &stage.op {
                StageOp::Conv { layer, cfg, .. } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    conv2d(x, w, b, *cfg)?
                }
                StageOp::Epitome {
                    layer, spec, cfg, ..
                } => {
                    let epi = weights.epitome(*layer, spec, &stage.name)?;
                    let dp = DataPath::with_analog(epi, *cfg, wrapping_enabled, analog)?;
                    let (y, s) = dp.execute(x)?;
                    stats.accumulate(&s);
                    y
                }
                StageOp::Relu => relu(x),
                StageOp::MaxPool(cfg) => max_pool2d(x, *cfg)?,
                StageOp::GlobalAvgPool => {
                    let n = x.shape()[0];
                    let c = x.shape()[1];
                    global_avg_pool(x)?.reshape(&[n, c, 1, 1])?
                }
                StageOp::Linear { layer, .. } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    let n = x.shape()[0];
                    let feats = x.len() / n;
                    let flat = x.reshape(&[n, feats])?;
                    let wmat = w.reshape(&[w.shape()[0], feats])?;
                    linear(&flat, &wmat, b)?
                }
                StageOp::Add { with, .. } => {
                    let other = outputs[*with].as_ref().expect("stages execute in order");
                    x.add(other)?
                }
            };
            // The reference executes fused epilogues as a separate pass; the
            // fused kernels are bit-identical to this by construction.
            let y = if stage.op.fused_relu() { relu(&y) } else { y };
            outputs[i] = Some(y);
        }
        let out = outputs.pop().flatten().expect("last stage executed");
        Ok((out, stats))
    }
}

/// The weights a program binds: one entry per backbone layer the program
/// references.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LayerWeights {
    /// Dense weights for [`StageOp::Conv`] / [`StageOp::Linear`] stages:
    /// the `(C_out, C_in, KH, KW)` kernel and an optional `(C_out)` bias.
    Dense {
        /// Convolution kernel.
        weight: Tensor,
        /// Optional per-channel bias.
        bias: Option<Tensor>,
    },
    /// Epitome weights for [`StageOp::Epitome`] stages.
    Epitome(Epitome),
}

/// Per-layer weights for a lowered network, indexed by backbone layer.
#[derive(Debug, Clone, Default)]
pub struct NetworkWeights {
    layers: Vec<Option<LayerWeights>>,
}

impl NetworkWeights {
    /// Randomly initialized weights matching `network`'s choices: Kaiming
    /// kernels for dense layers and epitome tensors, uniform biases.
    /// Deterministic per seed.
    ///
    /// # Errors
    ///
    /// Propagates epitome construction errors.
    pub fn random(network: &Network, seed: u64) -> Result<Self, EpitomeError> {
        let mut r = rng::seeded(seed);
        let mut layers = Vec::with_capacity(network.choices().len());
        for (layer, choice) in network.backbone().layers.iter().zip(network.choices()) {
            let lw = match choice {
                OperatorChoice::Conv => {
                    let conv = layer.conv;
                    LayerWeights::Dense {
                        weight: init::kaiming_normal(&conv.dims(), &mut r),
                        bias: Some(init::uniform(&[conv.cout], -0.1, 0.1, &mut r)),
                    }
                }
                OperatorChoice::Epitome(spec) => LayerWeights::Epitome(Epitome::from_tensor(
                    spec.clone(),
                    init::kaiming_normal(&spec.shape().dims(), &mut r),
                )?),
            };
            layers.push(Some(lw));
        }
        Ok(NetworkWeights { layers })
    }

    /// Sets layer `i`'s weights (growing the table as needed).
    pub fn set(&mut self, i: usize, weights: LayerWeights) {
        if self.layers.len() <= i {
            self.layers.resize_with(i + 1, || None);
        }
        self.layers[i] = Some(weights);
    }

    /// Layer `i`'s weights, if bound.
    pub fn layer(&self, i: usize) -> Option<&LayerWeights> {
        self.layers.get(i).and_then(Option::as_ref)
    }

    /// The dense weight/bias pair of layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the layer is unbound or bound to an epitome.
    pub fn dense(&self, i: usize, name: &str) -> Result<(&Tensor, Option<&Tensor>), PimError> {
        match self.layer(i) {
            Some(LayerWeights::Dense { weight, bias }) => Ok((weight, bias.as_ref())),
            Some(LayerWeights::Epitome(_)) => Err(PimError::config(format!(
                "stage {name}: layer {i} is bound to an epitome, expected dense weights"
            ))),
            None => Err(PimError::config(format!(
                "stage {name}: layer {i} has no weights bound"
            ))),
        }
    }

    /// The epitome of layer `i`, verified against `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError`] if the layer is unbound, dense, or bound to an
    /// epitome of a different spec.
    pub fn epitome(&self, i: usize, spec: &EpitomeSpec, name: &str) -> Result<&Epitome, PimError> {
        match self.layer(i) {
            Some(LayerWeights::Epitome(epi)) if epi.spec() == spec => Ok(epi),
            Some(LayerWeights::Epitome(_)) => Err(PimError::config(format!(
                "stage {name}: layer {i}'s epitome does not match the program's spec"
            ))),
            Some(LayerWeights::Dense { .. }) => Err(PimError::config(format!(
                "stage {name}: layer {i} is bound to dense weights, expected an epitome"
            ))),
            None => Err(PimError::config(format!(
                "stage {name}: layer {i} has no weights bound"
            ))),
        }
    }
}

/// Infers the stride/padding a layer must use to map an `h × w` input to
/// its recorded output resolution, verifying the result.
fn infer_conv_cfg(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    layer: &LayerInfo,
) -> Result<Conv2dCfg, EpitomeError> {
    if layer.out_h == 0 || layer.out_w == 0 {
        return Err(EpitomeError::plan(format!(
            "layer {} records a zero output",
            layer.name
        )));
    }
    let stride = ((h as f64 / layer.out_h as f64).round() as usize).max(1);
    let padding = ((layer.out_h - 1) * stride + kh)
        .saturating_sub(h)
        .div_ceil(2);
    let cfg = Conv2dCfg { stride, padding };
    match conv2d_out_dims(h, w, kh, kw, cfg) {
        Ok((oh, ow)) if oh == layer.out_h && ow == layer.out_w => Ok(cfg),
        _ => Err(EpitomeError::plan(format!(
            "cannot infer stride/padding for layer {}: {h}x{w} input, {kh}x{kw} kernel, \
             recorded output {}x{}",
            layer.name, layer.out_h, layer.out_w
        ))),
    }
}

/// Incremental program builder: tracks the cursor (current producer and
/// per-image shape) while stages are appended.
struct Lowerer<'a> {
    net: &'a Network,
    stages: Vec<Stage>,
    cur: StageInput,
    c: usize,
    h: usize,
    w: usize,
}

impl<'a> Lowerer<'a> {
    fn new(net: &'a Network, c: usize, h: usize, w: usize) -> Self {
        Lowerer {
            net,
            stages: Vec::new(),
            cur: StageInput::Source,
            c,
            h,
            w,
        }
    }

    /// Appends a stage reading from the cursor and advances it.
    fn push(&mut self, name: impl Into<String>, op: StageOp, out_shape: Vec<usize>) -> usize {
        self.push_from(self.cur, name, op, out_shape)
    }

    /// Appends a stage reading from an explicit producer and moves the
    /// cursor to it.
    fn push_from(
        &mut self,
        input: StageInput,
        name: impl Into<String>,
        op: StageOp,
        out_shape: Vec<usize>,
    ) -> usize {
        if let [c, h, w] = out_shape[..] {
            (self.c, self.h, self.w) = (c, h, w);
        }
        self.stages.push(Stage {
            name: name.into(),
            input,
            op,
            out_shape,
        });
        let idx = self.stages.len() - 1;
        self.cur = StageInput::Stage(idx);
        idx
    }

    /// Lowers backbone layer `idx` as a convolution-like stage (dense conv
    /// or epitome per the network's choice) reading from `input` with the
    /// per-image shape `(c, h, w)`.
    fn push_conv_like(
        &mut self,
        idx: usize,
        input: StageInput,
        (c, h, w): (usize, usize, usize),
    ) -> Result<usize, EpitomeError> {
        let layer = &self.net.backbone().layers[idx];
        if layer.conv.cin != c {
            return Err(EpitomeError::plan(format!(
                "layer {} expects {} input channels but its input has {c}",
                layer.name, layer.conv.cin
            )));
        }
        let cfg = infer_conv_cfg(h, w, layer.conv.kh, layer.conv.kw, layer)?;
        let op = match &self.net.choices()[idx] {
            OperatorChoice::Conv => StageOp::Conv {
                layer: idx,
                cfg,
                relu: false,
            },
            OperatorChoice::Epitome(spec) => StageOp::Epitome {
                layer: idx,
                spec: spec.clone(),
                cfg,
                relu: false,
            },
        };
        let out_shape = vec![layer.conv.cout, layer.out_h, layer.out_w];
        Ok(self.push_from(input, layer.name.clone(), op, out_shape))
    }

    /// Appends a classifier head (global average pool + linear or 1×1
    /// epitome) for backbone layer `idx`.
    fn push_head(&mut self, idx: usize) -> Result<(), EpitomeError> {
        let layer = &self.net.backbone().layers[idx];
        if layer.conv.kh != 1 || layer.conv.kw != 1 || layer.out_h != 1 || layer.out_w != 1 {
            return Err(EpitomeError::plan(format!(
                "classifier layer {} must be a 1x1 conv with 1x1 output",
                layer.name
            )));
        }
        if layer.conv.cin != self.c {
            return Err(EpitomeError::plan(format!(
                "classifier {} expects {} features, got {}",
                layer.name, layer.conv.cin, self.c
            )));
        }
        if self.h != 1 || self.w != 1 {
            let c = self.c;
            self.push("global_avg_pool", StageOp::GlobalAvgPool, vec![c, 1, 1]);
        }
        match &self.net.choices()[idx] {
            OperatorChoice::Conv => {
                let out = vec![layer.conv.cout];
                self.push(
                    layer.name.clone(),
                    StageOp::Linear {
                        layer: idx,
                        relu: false,
                    },
                    out,
                );
            }
            OperatorChoice::Epitome(spec) => {
                let cfg = Conv2dCfg {
                    stride: 1,
                    padding: 0,
                };
                let op = StageOp::Epitome {
                    layer: idx,
                    spec: spec.clone(),
                    cfg,
                    relu: false,
                };
                let out = vec![layer.conv.cout, 1, 1];
                self.push(layer.name.clone(), op, out);
            }
        }
        Ok(())
    }

    fn cursor(&self) -> (StageInput, (usize, usize, usize)) {
        (self.cur, (self.c, self.h, self.w))
    }

    fn finish(self, input_shape: Vec<usize>) -> NetworkProgram {
        NetworkProgram {
            input_shape,
            stages: self.stages,
        }
    }
}

/// Splits `stageS.blockB.kind` into `(prefix, kind)`.
fn block_parts(name: &str) -> Option<(&str, &str)> {
    name.rsplit_once('.')
}

impl Network {
    /// Lowers this network into an executable [`NetworkProgram`] for
    /// `input_h × input_w` inputs (which must reproduce the backbone's
    /// recorded layer resolutions — for the built-in ResNets that is
    /// 224×224).
    ///
    /// See the [`crate::lower`] module docs for the recognized backbone
    /// conventions.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if the inventory cannot be
    /// lowered: channel mismatches between consecutive layers, resolutions
    /// inconsistent with any stride/padding, or an unrecognized
    /// ResNet-style layer sequence.
    pub fn lower(&self, input_h: usize, input_w: usize) -> Result<NetworkProgram, EpitomeError> {
        let layers = &self.backbone().layers;
        let Some(first) = layers.first() else {
            return Err(EpitomeError::plan("cannot lower an empty backbone"));
        };
        let input_shape = vec![first.conv.cin, input_h, input_w];
        let mut lw = Lowerer::new(self, first.conv.cin, input_h, input_w);
        if first.name == "stem.conv1" {
            lower_resnet(&mut lw, input_h, input_w)?;
        } else {
            lower_chain(&mut lw, input_h, input_w)?;
        }
        Ok(lw.finish(input_shape))
    }
}

/// Lowers a plain chain: layers in order with ReLU between them; a 1×1
/// layer with recorded 1×1 output becomes the classifier head.
fn lower_chain(lw: &mut Lowerer, input_h: usize, input_w: usize) -> Result<(), EpitomeError> {
    let n_layers = lw.net.backbone().layers.len();
    let (mut input, mut shape) = (StageInput::Source, (lw.c, input_h, input_w));
    for idx in 0..n_layers {
        let layer = &lw.net.backbone().layers[idx];
        let is_head = layer.conv.kh == 1
            && layer.conv.kw == 1
            && layer.out_h == 1
            && layer.out_w == 1
            && (shape.1 > 1 || shape.2 > 1);
        if is_head {
            lw.push_head(idx)?;
        } else {
            lw.push_conv_like(idx, input, shape)?;
        }
        if idx + 1 < n_layers {
            let out = lw
                .stages
                .last()
                .expect("stage just pushed")
                .out_shape
                .clone();
            lw.push(format!("{}.relu", layer.name), StageOp::Relu, out);
        }
        (input, shape) = lw.cursor();
    }
    Ok(())
}

/// Lowers a ResNet-style backbone: stem + pooled entry, bottleneck blocks
/// with projection/identity shortcuts, GAP + linear classifier.
fn lower_resnet(lw: &mut Lowerer, input_h: usize, input_w: usize) -> Result<(), EpitomeError> {
    let n_layers = lw.net.backbone().layers.len();
    // Stem: conv -> ReLU -> 3x3/2 max pool (padding 1).
    lw.push_conv_like(0, StageInput::Source, (lw.c, input_h, input_w))?;
    let stem_shape = (lw.c, lw.h, lw.w);
    lw.push(
        "stem.relu",
        StageOp::Relu,
        vec![stem_shape.0, stem_shape.1, stem_shape.2],
    );
    let pool = PoolCfg {
        window: 3,
        stride: 2,
        padding: 1,
    };
    let (ph, pw) = conv2d_out_dims(
        lw.h,
        lw.w,
        3,
        3,
        Conv2dCfg {
            stride: 2,
            padding: 1,
        },
    )
    .map_err(|e| EpitomeError::plan(format!("stem pool does not fit: {e}")))?;
    let c = lw.c;
    lw.push("stem.maxpool", StageOp::MaxPool(pool), vec![c, ph, pw]);

    let mut idx = 1;
    while idx < n_layers {
        let name = lw.net.backbone().layers[idx].name.clone();
        if name == "fc" {
            if idx + 1 != n_layers {
                return Err(EpitomeError::plan("fc must be the final layer"));
            }
            lw.push_head(idx)?;
            idx += 1;
            continue;
        }
        let Some((prefix, "conv1")) = block_parts(&name) else {
            return Err(EpitomeError::plan(format!(
                "unrecognized ResNet layer sequence at {name} (expected *.conv1 or fc)"
            )));
        };
        // One bottleneck block: conv1 -> ReLU -> conv2 -> ReLU -> conv3,
        // plus a projection shortcut if a downsample layer follows.
        let (entry, entry_shape) = lw.cursor();
        let expect = |i: usize, kind: &str| -> Result<usize, EpitomeError> {
            let layers = &lw.net.backbone().layers;
            match layers.get(i).and_then(|l| block_parts(&l.name)) {
                Some((p, k)) if p == prefix && k == kind => Ok(i),
                _ => Err(EpitomeError::plan(format!(
                    "block {prefix} is missing its {kind} layer at position {i}"
                ))),
            }
        };
        let i_conv2 = expect(idx + 1, "conv2")?;
        let i_conv3 = expect(idx + 2, "conv3")?;
        lw.push_conv_like(idx, entry, entry_shape)?;
        let s = lw.stages.last().expect("stage").out_shape.clone();
        lw.push(format!("{prefix}.relu1"), StageOp::Relu, s);
        let (cur, shape) = lw.cursor();
        lw.push_conv_like(i_conv2, cur, shape)?;
        let s = lw.stages.last().expect("stage").out_shape.clone();
        lw.push(format!("{prefix}.relu2"), StageOp::Relu, s);
        let (cur, shape) = lw.cursor();
        let main = lw.push_conv_like(i_conv3, cur, shape)?;
        let main_shape = lw.stages[main].out_shape.clone();

        let has_downsample = lw
            .net
            .backbone()
            .layers
            .get(i_conv3 + 1)
            .and_then(|l| block_parts(&l.name))
            .is_some_and(|(p, k)| p == prefix && k == "downsample");
        let shortcut = if has_downsample {
            StageInput::Stage(lw.push_conv_like(i_conv3 + 1, entry, entry_shape)?)
        } else {
            entry
        };
        let StageInput::Stage(shortcut_idx) = shortcut else {
            return Err(EpitomeError::plan(format!(
                "block {prefix} has an identity shortcut from the program source"
            )));
        };
        if lw.stages[shortcut_idx].out_shape != main_shape {
            return Err(EpitomeError::plan(format!(
                "block {prefix}: shortcut shape {:?} does not match main path {:?}",
                lw.stages[shortcut_idx].out_shape, main_shape
            )));
        }
        lw.push_from(
            StageInput::Stage(main),
            format!("{prefix}.add"),
            StageOp::Add {
                with: shortcut_idx,
                relu: false,
            },
            main_shape.clone(),
        );
        lw.push(format!("{prefix}.relu3"), StageOp::Relu, main_shape);
        idx = i_conv3 + 1 + usize::from(has_downsample);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{resnet50, Backbone};
    use epim_core::{ConvShape, EpitomeDesigner, EpitomeShape};

    /// A small chain backbone: 8x8 input, two 3x3 convs, classifier.
    fn chain_backbone() -> Backbone {
        let layer = |name: &str, conv: ConvShape, res: usize| LayerInfo {
            name: name.to_string(),
            conv,
            out_h: res,
            out_w: res,
        };
        Backbone {
            name: "tiny-chain".to_string(),
            layers: vec![
                layer("l0", ConvShape::new(8, 4, 3, 3), 8),
                layer("l1", ConvShape::new(8, 8, 3, 3), 4),
                layer("head", ConvShape::new(10, 8, 1, 1), 1),
            ],
        }
    }

    /// A tiny ResNet-style backbone at 16x16 input: stem (16->8), pool
    /// (8->4), one bottleneck block with downsample, one identity block,
    /// classifier.
    fn tiny_resnet_backbone() -> Backbone {
        let layer = |name: &str, conv: ConvShape, res: usize| LayerInfo {
            name: name.to_string(),
            conv,
            out_h: res,
            out_w: res,
        };
        Backbone {
            name: "tiny-resnet".to_string(),
            layers: vec![
                layer("stem.conv1", ConvShape::new(8, 3, 3, 3), 8),
                layer("stage1.block0.conv1", ConvShape::new(4, 8, 1, 1), 4),
                layer("stage1.block0.conv2", ConvShape::new(4, 4, 3, 3), 4),
                layer("stage1.block0.conv3", ConvShape::new(16, 4, 1, 1), 4),
                layer("stage1.block0.downsample", ConvShape::new(16, 8, 1, 1), 4),
                layer("stage1.block1.conv1", ConvShape::new(4, 16, 1, 1), 4),
                layer("stage1.block1.conv2", ConvShape::new(4, 4, 3, 3), 4),
                layer("stage1.block1.conv3", ConvShape::new(16, 4, 1, 1), 4),
                layer("fc", ConvShape::new(10, 16, 1, 1), 1),
            ],
        }
    }

    #[test]
    fn chain_lowering_structure() {
        let net = Network::baseline(chain_backbone());
        let prog = net.lower(8, 8).unwrap();
        assert_eq!(prog.input_shape(), &[4, 8, 8]);
        assert_eq!(prog.output_shape(), &[10]);
        // l0, relu, l1, relu, gap, head.
        assert_eq!(prog.stages().len(), 6);
        assert!(matches!(
            prog.stages()[0].op,
            StageOp::Conv { layer: 0, .. }
        ));
        assert!(matches!(prog.stages()[4].op, StageOp::GlobalAvgPool));
        assert!(matches!(
            prog.stages()[5].op,
            StageOp::Linear { layer: 2, .. }
        ));
        // l1 maps 8x8 -> 4x4: stride 2, padding 1 inferred.
        let StageOp::Conv { cfg, .. } = prog.stages()[2].op else {
            panic!("conv")
        };
        assert_eq!(
            cfg,
            Conv2dCfg {
                stride: 2,
                padding: 1
            }
        );
    }

    #[test]
    fn tiny_resnet_lowering_structure() {
        let net = Network::baseline(tiny_resnet_backbone());
        let prog = net.lower(16, 16).unwrap();
        assert_eq!(prog.input_shape(), &[3, 16, 16]);
        assert_eq!(prog.output_shape(), &[10]);
        let adds: Vec<&Stage> = prog
            .stages()
            .iter()
            .filter(|s| matches!(s.op, StageOp::Add { .. }))
            .collect();
        assert_eq!(adds.len(), 2, "one residual add per block");
        assert!(prog
            .stages()
            .iter()
            .any(|s| matches!(s.op, StageOp::MaxPool(_))));
        // The identity block's add reads the previous block's post-ReLU
        // output; the projection block's add reads the downsample stage.
        let StageOp::Add { with, .. } = adds[0].op else {
            unreachable!()
        };
        assert_eq!(prog.stages()[with].name, "stage1.block0.downsample");
        let StageOp::Add { with, .. } = adds[1].op else {
            unreachable!()
        };
        assert_eq!(prog.stages()[with].name, "stage1.block0.relu3");
    }

    #[test]
    fn resnet50_lowers_end_to_end() {
        let net = Network::baseline(resnet50());
        let prog = net.lower(224, 224).unwrap();
        assert_eq!(prog.input_shape(), &[3, 224, 224]);
        assert_eq!(prog.output_shape(), &[1000]);
        // 16 blocks -> 16 residual adds; every conv layer appears once.
        let adds = prog
            .stages()
            .iter()
            .filter(|s| matches!(s.op, StageOp::Add { .. }))
            .count();
        assert_eq!(adds, 16);
        let convs = prog
            .stages()
            .iter()
            .filter(|s| matches!(s.op, StageOp::Conv { .. } | StageOp::Linear { .. }))
            .count();
        assert_eq!(convs, 54);
        // The stem lowers to stride 2, padding 3 (the canonical 7x7 stem).
        let StageOp::Conv { cfg, .. } = prog.stages()[0].op else {
            panic!("stem conv")
        };
        assert_eq!(
            cfg,
            Conv2dCfg {
                stride: 2,
                padding: 3
            }
        );
    }

    #[test]
    fn lowering_with_epitome_choices_keys_specs() {
        let bb = tiny_resnet_backbone();
        let designer = EpitomeDesigner::new(16, 16);
        let mut net = Network::baseline(bb.clone());
        // Replace both 3x3 convs (layers 2 and 6, same shape) with the
        // same epitome spec: the program should report one distinct spec.
        let spec = designer.design(bb.layers[2].conv, 18, 2).unwrap();
        net.set_choice(2, OperatorChoice::Epitome(spec.clone()))
            .unwrap();
        net.set_choice(6, OperatorChoice::Epitome(spec.clone()))
            .unwrap();
        let prog = net.lower(16, 16).unwrap();
        let epis = prog
            .stages()
            .iter()
            .filter(|s| matches!(s.op, StageOp::Epitome { .. }))
            .count();
        assert_eq!(epis, 2);
        assert_eq!(prog.epitome_specs(), vec![&spec]);
    }

    #[test]
    fn lowering_rejects_inconsistent_geometry() {
        // Channel mismatch between consecutive chain layers.
        let mut bb = chain_backbone();
        bb.layers[1].conv = ConvShape::new(8, 5, 3, 3);
        assert!(Network::baseline(bb).lower(8, 8).is_err());

        // Resolution that no symmetric stride/padding can produce
        // (8 -> 7 with a 3x3 kernel needs asymmetric padding).
        let mut bb = chain_backbone();
        bb.layers[1].out_h = 7;
        bb.layers[1].out_w = 7;
        assert!(Network::baseline(bb).lower(8, 8).is_err());

        // Wrong input resolution for the recorded geometry.
        assert!(Network::baseline(chain_backbone()).lower(9, 9).is_err());

        // Empty backbone.
        let empty = Backbone {
            name: "empty".to_string(),
            layers: Vec::new(),
        };
        assert!(Network::baseline(empty).lower(8, 8).is_err());
    }

    #[test]
    fn forward_reference_runs_and_shapes_match() {
        let net = Network::baseline(tiny_resnet_backbone());
        let prog = net.lower(16, 16).unwrap();
        let weights = NetworkWeights::random(&net, 7).unwrap();
        let mut r = rng::seeded(8);
        let x = init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut r);
        let (y, stats) = prog
            .forward_reference(&weights, true, AnalogModel::ideal(), &x)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // All-conv network: no crossbar rounds.
        assert_eq!(stats.rounds, 0);

        // With an epitome choice the data path runs and counts rounds.
        let bb = tiny_resnet_backbone();
        let mut net = Network::baseline(bb.clone());
        let spec = EpitomeSpec::new(bb.layers[2].conv, EpitomeShape::new(2, 4, 3, 3)).unwrap();
        net.set_choice(2, OperatorChoice::Epitome(spec)).unwrap();
        let prog = net.lower(16, 16).unwrap();
        let weights = NetworkWeights::random(&net, 9).unwrap();
        let (y, stats) = prog
            .forward_reference(&weights, true, AnalogModel::ideal(), &x)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        assert!(stats.rounds > 0);

        // Wrong input shape is rejected.
        assert!(prog
            .forward_reference(
                &weights,
                true,
                AnalogModel::ideal(),
                &Tensor::zeros(&[1, 3, 8, 8])
            )
            .is_err());
    }

    #[test]
    fn consumers_track_residual_reads() {
        let net = Network::baseline(tiny_resnet_backbone());
        let prog = net.lower(16, 16).unwrap();
        let consumers = prog.consumers();
        // Every stage except the last is consumed at least once.
        for (i, readers) in consumers.iter().enumerate().take(prog.stages().len() - 1) {
            assert!(
                !readers.is_empty(),
                "stage {i} ({}) unused",
                prog.stages()[i].name
            );
        }
        // A shortcut producer is consumed twice (next stage + the add).
        let pool_idx = prog
            .stages()
            .iter()
            .position(|s| matches!(s.op, StageOp::MaxPool(_)))
            .unwrap();
        assert_eq!(consumers[pool_idx].len(), 2);
    }
}
