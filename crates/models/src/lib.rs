//! # epim-models
//!
//! Model-level machinery for the EPIM reproduction:
//!
//! - [`resnet`]: exact layer inventories (every convolution's shape and
//!   output resolution) for ResNet-50 and ResNet-101 at 224×224 input —
//!   the two backbones evaluated in the paper's Table 1.
//! - [`network`]: the [`network::Network`] /
//!   [`network::OperatorChoice`] abstraction tying layer inventories to
//!   per-layer operators (convolution or epitome) and driving the
//!   `epim-pim` cost model over whole networks.
//! - [`accuracy`]: the **calibrated accuracy surrogate** standing in for
//!   ImageNet training (see DESIGN.md §2) — an analytic model of top-1
//!   accuracy as a function of epitome compression, quantization bit
//!   width/method and pruning ratio, with all constants calibrated
//!   against the paper's published tables and documented inline.
//! - [`training`]: the genuine small-scale substitute: a trainable
//!   epitome convolution layer ([`training::EpitomeConv2d`]) and an
//!   experiment harness that trains conv vs. epitome vs. quantized
//!   epitome CNNs on synthetic data with real gradient descent.
//! - [`zoo`]: ready-made small backbones/networks (16×16-input tiny
//!   ResNets with shareable epitome specs) for tests, examples, benches
//!   and multi-tenant fleets.
//! - [`lower`]: lowering from a [`network::Network`] to an executable
//!   [`lower::NetworkProgram`] — an ordered op graph of epitome crossbar
//!   ops and dense tensor ops with inferred inter-stage shapes, plus
//!   weight binding ([`lower::NetworkWeights`]) and the sequential
//!   reference executor the serving runtime is verified against.
//! - [`optimize`]: the graph-fusion pass over lowered programs — fused
//!   ReLU epilogues, identity folds (all bit-identity-safe by
//!   construction) — plus the liveness-planned activation arena
//!   ([`optimize::ArenaPlan`]) the serving runtime executes into.

#![deny(missing_docs)]

pub mod accuracy;
pub mod lower;
pub mod network;
pub mod optimize;
pub mod resnet;
pub mod training;
pub mod zoo;
