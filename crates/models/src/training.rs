//! Small-scale training: the genuine, gradient-descent substitute for the
//! paper's ImageNet experiments.
//!
//! [`EpitomeConv2d`] is a drop-in replacement for a convolution layer that
//! *trains the epitome parameters directly*: the forward pass reconstructs
//! the convolution weight from the epitome (paper Eq. 1) and convolves; the
//! backward pass routes the weight gradient through the sampling plan's
//! adjoint back onto the compact epitome tensor. Optionally the forward
//! pass fake-quantizes the reconstructed weight, giving quantization-aware
//! training with any of the §4.2 range schemes.
//!
//! [`run_small_scale_experiment`] trains three variants of the same CNN on
//! a synthetic dataset — plain conv, epitome, quantized epitome — and
//! reports test accuracies, demonstrating the paper's qualitative claim
//! (epitome ≈ conv; overlap-aware low-bit quantization recovers most of
//! the naive-quantization loss) with real training rather than the
//! surrogate of [`crate::accuracy`].

use epim_core::{ConvShape, Epitome, EpitomeError, EpitomeShape, EpitomeSpec};
use epim_quant::{quantize_epitome, QuantGranularity, RangeEstimator};
use epim_tensor::nn::{evaluate, AvgPool, Flatten, Layer, Linear, Param, Relu, Sequential, Sgd};
use epim_tensor::ops::{conv2d, conv2d_backward, Conv2dCfg};
use epim_tensor::{data, init, rng, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Quantization-aware-training mode for [`EpitomeConv2d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QatMode {
    /// Train in full precision.
    Off,
    /// Fake-quantize the epitome each forward pass.
    FakeQuant {
        /// Weight bits.
        bits: u8,
        /// Scaling-factor granularity.
        granularity: QuantGranularity,
        /// Range estimator (min/max or overlap-weighted).
        range: RangeEstimator,
    },
}

/// A trainable epitome convolution layer.
pub struct EpitomeConv2d {
    epitome: Epitome,
    grad: Tensor,
    bias: Param,
    cfg: Conv2dCfg,
    qat: QatMode,
    cached_input: Option<Tensor>,
    cached_weight: Option<Tensor>,
}

impl std::fmt::Debug for EpitomeConv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EpitomeConv2d({})", self.epitome.spec().shape())
    }
}

impl EpitomeConv2d {
    /// Creates a layer with a Kaiming-initialized epitome.
    pub fn new(spec: EpitomeSpec, cfg: Conv2dCfg, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let dims = spec.shape().dims();
        let cout = spec.conv().cout;
        let data = init::kaiming_normal(&dims, &mut r);
        let epitome = Epitome::from_tensor(spec, data).expect("shape matches spec");
        EpitomeConv2d {
            grad: Tensor::zeros(&dims),
            epitome,
            bias: Param::new(Tensor::zeros(&[cout])),
            cfg,
            qat: QatMode::Off,
            cached_input: None,
            cached_weight: None,
        }
    }

    /// Enables quantization-aware training (builder style).
    pub fn with_qat(mut self, qat: QatMode) -> Self {
        self.qat = qat;
        self
    }

    /// The current epitome.
    pub fn epitome(&self) -> &Epitome {
        &self.epitome
    }

    /// The (possibly fake-quantized) weight used in the forward pass.
    fn effective_weight(&self) -> Result<Tensor, EpitomeError> {
        match self.qat {
            QatMode::Off => self.epitome.reconstruct(),
            QatMode::FakeQuant {
                bits,
                granularity,
                range,
            } => {
                let (q, _) = quantize_epitome(&self.epitome, bits, granularity, &range)
                    .map_err(|e| EpitomeError::plan(format!("qat failed: {e}")))?;
                q.reconstruct()
            }
        }
    }
}

impl Layer for EpitomeConv2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        let w = self
            .effective_weight()
            .map_err(|e| TensorError::invalid(e.to_string()))?;
        self.cached_input = Some(x.clone());
        let y = conv2d(x, &w, Some(&self.bias.value), self.cfg)?;
        self.cached_weight = Some(w);
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, TensorError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        let w = self
            .cached_weight
            .as_ref()
            .ok_or_else(|| TensorError::invalid("backward before forward"))?;
        let g = conv2d_backward(x, w, dy, self.cfg)?;
        // Straight-through estimator across fake-quant: route dW through
        // the sampling plan's adjoint onto the epitome parameters.
        let epi_grad = self
            .epitome
            .backprop_weight_grad(&g.dw)
            .map_err(|e| TensorError::invalid(e.to_string()))?;
        self.grad.axpy(1.0, &epi_grad)?;
        self.bias.grad.axpy(1.0, &g.db)?;
        Ok(g.dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // Only the bias flows through the generic Param/Sgd machinery; the
        // epitome tensor keeps its own gradient buffer and is stepped via
        // `apply_grads` (reached through the `as_any_mut` downcast hook).
        vec![&mut self.bias]
    }

    fn describe(&self) -> String {
        format!(
            "EpitomeConv2d({} -> conv {})",
            self.epitome.spec().shape(),
            self.epitome.spec().conv()
        )
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl EpitomeConv2d {
    /// Applies one SGD step to the epitome parameters and clears the
    /// gradient. Call after each `backward`.
    pub fn apply_grads(&mut self, lr: f32) {
        let g = self.grad.clone();
        self.epitome
            .tensor_mut()
            .axpy(-lr, &g)
            .expect("gradient shape matches epitome");
        self.grad.map_inplace(|_| 0.0);
    }
}

/// Which synthetic dataset the experiment trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyntheticDataset {
    /// Class-conditional Gaussian blobs (easy; positional features).
    Blobs,
    /// Striped textures with class-specific spatial frequencies (harder;
    /// requires genuinely convolutional features, so compression and
    /// quantization effects show).
    Stripes,
}

/// Configuration of the small-scale experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmallScaleConfig {
    /// Number of classes in the synthetic dataset.
    pub classes: usize,
    /// Image side length.
    pub image_size: usize,
    /// Training examples per class.
    pub per_class: u32,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Quantization bits for the quantized variants.
    pub quant_bits: u8,
    /// RNG seed controlling data, init and shuffling.
    pub seed: u64,
    /// Which synthetic dataset to train on.
    pub dataset: SyntheticDataset,
    /// Epitome shape for the compressed middle layer, as
    /// `(c_out_e, c_in_e, h, w)` replacing the 16x8x3x3 convolution.
    pub epitome_shape: (usize, usize, usize, usize),
}

impl Default for SmallScaleConfig {
    fn default() -> Self {
        SmallScaleConfig {
            classes: 4,
            image_size: 8,
            per_class: 50,
            epochs: 12,
            lr: 0.05,
            quant_bits: 3,
            seed: 42,
            dataset: SyntheticDataset::Blobs,
            epitome_shape: (8, 4, 2, 2),
        }
    }
}

/// Test accuracies of the experiment's variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmallScaleResults {
    /// Plain convolutional CNN.
    pub conv_acc: f32,
    /// Epitome CNN (compressed, full precision).
    pub epitome_acc: f32,
    /// Epitome CNN with naive low-bit fake quantization.
    pub epitome_naive_quant_acc: f32,
    /// Epitome CNN with per-crossbar + overlap-weighted fake quantization.
    pub epitome_overlap_quant_acc: f32,
    /// Parameter compression of the epitome variant's conv layers.
    pub param_compression: f64,
}

/// The CNN used by all variants: conv(8)-relu-pool-conv(16)-relu-pool-fc.
/// `epitome` selects the middle layer's operator; `qat` its quantization.
fn build_net(cfg: &SmallScaleConfig, epitome: bool, qat: QatMode) -> (Sequential, Option<f64>) {
    let mut r = rng::seeded(cfg.seed);
    let conv_cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let mut net = Sequential::new();
    net.push(epim_tensor::nn::Conv2d::new(1, 8, 3, conv_cfg, &mut r));
    net.push(Relu::new());
    net.push(AvgPool::new(2, 2));
    let mut compression = None;
    if epitome {
        // Second conv 16x8x3x3 replaced by the configured epitome shape
        // (default 8x4x2x2, ~9x fewer params).
        let conv = ConvShape::new(16, 8, 3, 3);
        let (co, ci, h, w) = cfg.epitome_shape;
        let spec = EpitomeSpec::new(conv, EpitomeShape::new(co, ci, h, w)).expect("legal spec");
        compression = Some(spec.param_compression());
        net.push(EpitomeConv2d::new(spec, conv_cfg, cfg.seed ^ 1).with_qat(qat));
    } else {
        net.push(epim_tensor::nn::Conv2d::new(8, 16, 3, conv_cfg, &mut r));
    }
    net.push(Relu::new());
    net.push(AvgPool::new(2, 2));
    net.push(Flatten::new());
    let side = cfg.image_size / 4;
    net.push(Linear::new(16 * side * side, cfg.classes, &mut r));
    (net, compression)
}

fn train_variant(cfg: &SmallScaleConfig, epitome: bool, qat: QatMode) -> (f32, Option<f64>) {
    let ds = match cfg.dataset {
        SyntheticDataset::Blobs => {
            data::blobs(cfg.classes, 1, cfg.image_size, cfg.per_class, cfg.seed)
        }
        SyntheticDataset::Stripes => {
            data::stripes(cfg.classes, cfg.image_size, cfg.per_class, cfg.seed)
        }
    };
    let (train, test) = ds.split(0.25);
    let (mut net, compression) = build_net(cfg, epitome, qat);
    let mut opt = Sgd::new(cfg.lr, 0.9);
    let batch = 16usize;
    let n = train.labels.len();
    let per = train.images.len() / n.max(1);
    for _ in 0..cfg.epochs {
        let mut start = 0usize;
        while start < n {
            let end = (start + batch).min(n);
            let bsz = end - start;
            let mut shape = train.images.shape().to_vec();
            shape[0] = bsz;
            let images =
                Tensor::from_vec(train.images.data()[start * per..end * per].to_vec(), &shape)
                    .expect("batch slice matches shape");
            net.zero_grad();
            let logits = net.forward(&images).expect("forward pass");
            let out =
                epim_tensor::ops::cross_entropy(&logits, &train.labels[start..end]).expect("loss");
            net.backward(&out.dlogits).expect("backward pass");
            opt.step(&mut net.params_mut()).expect("optimizer step");
            // Epitome layers keep their own gradient buffer; step it with
            // the rest of the parameters, every batch.
            for i in 0..net.len() {
                if let Some(layer) = net.layer_mut(i) {
                    if let Some(epi) = layer_as_epitome(layer) {
                        epi.apply_grads(cfg.lr);
                    }
                }
            }
            start = end;
        }
    }
    let stats = evaluate(&mut net, &test.images, &test.labels).expect("evaluation");
    (stats.accuracy, compression)
}

/// Downcast helper: `Sequential` stores `Box<dyn Layer>`, and the epitome
/// layer needs its extra `apply_grads` entry point after each step.
fn layer_as_epitome(layer: &mut Box<dyn Layer>) -> Option<&mut EpitomeConv2d> {
    layer.as_any_mut()?.downcast_mut::<EpitomeConv2d>()
}

/// Runs the experiment over `n_seeds` consecutive seeds and averages the
/// accuracies — the small-scale runs are individually noisy (tiny test
/// sets), so orderings should be read from the average.
pub fn run_small_scale_experiment_avg(cfg: &SmallScaleConfig, n_seeds: u64) -> SmallScaleResults {
    let n = n_seeds.max(1);
    let mut acc = SmallScaleResults {
        conv_acc: 0.0,
        epitome_acc: 0.0,
        epitome_naive_quant_acc: 0.0,
        epitome_overlap_quant_acc: 0.0,
        param_compression: 0.0,
    };
    for s in 0..n {
        let run = run_small_scale_experiment(&SmallScaleConfig {
            seed: cfg.seed.wrapping_add(s),
            ..*cfg
        });
        acc.conv_acc += run.conv_acc / n as f32;
        acc.epitome_acc += run.epitome_acc / n as f32;
        acc.epitome_naive_quant_acc += run.epitome_naive_quant_acc / n as f32;
        acc.epitome_overlap_quant_acc += run.epitome_overlap_quant_acc / n as f32;
        acc.param_compression = run.param_compression;
    }
    acc
}

/// Runs the full experiment: trains all four variants and reports test
/// accuracies.
///
/// Deterministic given `cfg.seed`.
pub fn run_small_scale_experiment(cfg: &SmallScaleConfig) -> SmallScaleResults {
    let (conv_acc, _) = train_variant(cfg, false, QatMode::Off);
    let (epitome_acc, compression) = train_variant(cfg, true, QatMode::Off);
    let naive = QatMode::FakeQuant {
        bits: cfg.quant_bits,
        granularity: QuantGranularity::PerTensor,
        range: RangeEstimator::MinMax,
    };
    let (epitome_naive_quant_acc, _) = train_variant(cfg, true, naive);
    let overlap = QatMode::FakeQuant {
        bits: cfg.quant_bits,
        granularity: QuantGranularity::PerCrossbar { rows: 8, cols: 4 },
        range: RangeEstimator::overlap_default(),
    };
    let (epitome_overlap_quant_acc, _) = train_variant(cfg, true, overlap);
    SmallScaleResults {
        conv_acc,
        epitome_acc,
        epitome_naive_quant_acc,
        epitome_overlap_quant_acc,
        param_compression: compression.unwrap_or(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epitome_layer_forward_shapes() {
        let spec =
            EpitomeSpec::new(ConvShape::new(16, 8, 3, 3), EpitomeShape::new(8, 4, 2, 2)).unwrap();
        let mut layer = EpitomeConv2d::new(
            spec,
            Conv2dCfg {
                stride: 1,
                padding: 1,
            },
            0,
        );
        let x = Tensor::zeros(&[2, 8, 6, 6]);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 16, 6, 6]);
    }

    #[test]
    fn epitome_layer_learns() {
        // Gradient descent through the reconstruction adjoint must reduce
        // a simple regression loss.
        let spec =
            EpitomeSpec::new(ConvShape::new(4, 2, 3, 3), EpitomeShape::new(2, 2, 2, 2)).unwrap();
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 1,
        };
        let mut layer = EpitomeConv2d::new(spec, cfg, 3);
        let mut r = rng::seeded(9);
        let x = init::uniform(&[4, 2, 5, 5], -1.0, 1.0, &mut r);
        let target = init::uniform(&[4, 4, 5, 5], -0.5, 0.5, &mut r);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            let y = layer.forward(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            last_loss = diff.norm_sq() / diff.len() as f32;
            first_loss.get_or_insert(last_loss);
            // dLoss/dy for loss = mean squared error.
            let dy = diff.scale(2.0 / diff.len() as f32);
            layer.backward(&dy).unwrap();
            layer.apply_grads(0.02);
            for p in layer.params_mut() {
                let g = p.grad.clone();
                p.value.axpy(-0.02, &g).unwrap();
                p.zero_grad();
            }
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss {} -> {last_loss}",
            first_loss.unwrap()
        );
    }

    #[test]
    fn qat_forward_uses_quantized_weight() {
        let spec =
            EpitomeSpec::new(ConvShape::new(4, 2, 3, 3), EpitomeShape::new(2, 2, 2, 2)).unwrap();
        let cfg = Conv2dCfg {
            stride: 1,
            padding: 0,
        };
        let layer_fp = EpitomeConv2d::new(spec.clone(), cfg, 5);
        let layer_q = EpitomeConv2d::new(spec, cfg, 5).with_qat(QatMode::FakeQuant {
            bits: 2,
            granularity: QuantGranularity::PerTensor,
            range: RangeEstimator::MinMax,
        });
        let w_fp = layer_fp.effective_weight().unwrap();
        let w_q = layer_q.effective_weight().unwrap();
        assert_ne!(w_fp, w_q, "2-bit fake quant must change the weight");
    }

    #[test]
    fn small_scale_experiment_shape_of_results() {
        // A quick run (few epochs) to validate the harness end-to-end;
        // the full-strength run lives in the bench binary.
        let cfg = SmallScaleConfig {
            per_class: 16,
            epochs: 6,
            ..SmallScaleConfig::default()
        };
        let res = run_small_scale_experiment(&cfg);
        assert!(res.param_compression > 2.0);
        let chance = 1.0 / cfg.classes as f32;
        assert!(res.conv_acc > chance, "conv {}", res.conv_acc);
        assert!(res.epitome_acc > chance, "epitome {}", res.epitome_acc);
        for a in [
            res.conv_acc,
            res.epitome_acc,
            res.epitome_naive_quant_acc,
            res.epitome_overlap_quant_acc,
        ] {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn experiment_deterministic() {
        let cfg = SmallScaleConfig {
            per_class: 8,
            epochs: 2,
            ..SmallScaleConfig::default()
        };
        let a = run_small_scale_experiment(&cfg);
        let b = run_small_scale_experiment(&cfg);
        assert_eq!(a, b);
    }
}
