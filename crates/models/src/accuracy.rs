//! The calibrated ImageNet-accuracy surrogate.
//!
//! **This module does not train anything.** The paper's accuracy column
//! comes from multi-GPU ImageNet training runs that cannot be reproduced
//! offline (see DESIGN.md §2). What *can* be reproduced is the functional
//! chain — epitome reconstruction, fake-quantized training, overlap-aware
//! ranges — which [`crate::training`] exercises at small scale with real
//! gradient descent. For rendering the paper's tables, this module supplies
//! an analytic surrogate:
//!
//! ```text
//! acc = base
//!     − k_comp · ln(param_compression)                   (epitome cost)
//!     − k_quant · 2^−(bits_eff − 3) · mp_bonus           (quantization)
//!     − method_penalty(bits, method)                     (Table 2 ablation)
//!     − prune_penalty(ratio)                             (Table 3)
//! ```
//!
//! Every constant below is calibrated against a specific published number
//! and documented with its provenance. The surrogate is exact at the
//! calibration anchors by construction and smooth in between; treat its
//! outputs as "the paper's numbers, interpolated", not as measurements.

use serde::{Deserialize, Serialize};

/// How ultra-low-bit weights were quantized (the Table 2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantMethod {
    /// One min/max scaling factor per tensor ("Naïve Quant").
    Naive,
    /// Per-crossbar scaling factors ("+ Adjust with Crossbars").
    PerCrossbar,
    /// Per-crossbar + overlap-weighted ranges ("+ Adjusted with Overlap",
    /// the full EPIM method).
    PerCrossbarOverlap,
}

/// Weight-precision scheme for the surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightScheme {
    /// Full precision.
    Fp32,
    /// Uniform fixed-point weights at `bits`.
    Fixed {
        /// Weight bit width.
        bits: u8,
    },
    /// HAWQ-style mixed precision with the given parameter-weighted
    /// average bits (paper `W3mp`: average 3.5 with a 3/5 mix).
    Mixed {
        /// Average bits across layers, parameter-weighted.
        avg_bits: f64,
    },
}

/// Per-model calibration constants. Fields cite the anchor they were
/// fitted to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// FP32 baseline top-1 (Table 1: 76.37 / 78.77).
    pub base_top1: f64,
    /// Epitome compression cost coefficient: fits the FP32 epitome row
    /// (Table 1: 74.00 / 76.56) at the parameter compression *this
    /// repository's* uniform 1024×256 design achieves (2.8418× for
    /// ResNet-50, 2.3389× for ResNet-101 — slightly higher than the
    /// paper's 2.25×/2.08× because the designer legalizes shapes to full
    /// crossbar multiples): 2.37/ln(2.8418) → 2.2692 and
    /// 2.21/ln(2.3389) → 2.6010.
    pub k_comp: f64,
    /// Quantization cost at 3 bits with the full method (Table 1 W3A9 row
    /// minus the FP32 epitome row: 2.41 for R50, 1.58 for R101).
    pub k_quant: f64,
    /// Mixed-precision efficiency: ratio of the measured `W3mp` drop to
    /// the fixed-point drop predicted at the same average bits
    /// (Table 1 W3mpA9 rows: 0.60 for R50, 0.67 for R101).
    pub mp_bonus: f64,
    /// Extra drop of naïve quantization at 3 bits (Table 2: 71.59−69.95 =
    /// 1.64 for R50; 74.98−73.98 = 1.00 for R101).
    pub naive_penalty_3bit: f64,
    /// Extra drop of per-crossbar-only (no overlap weighting) at 3 bits
    /// (Table 2: 71.59−71.35 = 0.24 for R50; 74.98−74.96 = 0.02 for
    /// R101).
    pub xbar_only_penalty_3bit: f64,
    /// PIM-Prune accuracy drop at 50% pruning (Table 3: 76.37−72.77 =
    /// 3.60 for R50; 78.77−75.82 = 2.95 for R101).
    pub prune_drop_50: f64,
    /// PIM-Prune accuracy drop at 75% pruning (Table 3: 76.37−72.19 =
    /// 4.18 for R50; 78.77−74.80 = 3.97 for R101).
    pub prune_drop_75: f64,
    /// Extra drop from 50% element pruning on top of the epitome
    /// (Table 3: 74.00−73.18 = 0.82 for R50; 76.56−75.76 = 0.80 for
    /// R101).
    pub epitome_prune_drop_50: f64,
}

/// The accuracy surrogate for one backbone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    calib: Calibration,
}

impl AccuracyModel {
    /// Surrogate calibrated for ResNet-50 (anchors from Tables 1–3).
    pub fn resnet50() -> Self {
        AccuracyModel {
            calib: Calibration {
                base_top1: 76.37,
                k_comp: 2.2692,
                k_quant: 2.41,
                mp_bonus: 0.60,
                naive_penalty_3bit: 1.64,
                xbar_only_penalty_3bit: 0.24,
                prune_drop_50: 3.60,
                prune_drop_75: 4.18,
                epitome_prune_drop_50: 0.82,
            },
        }
    }

    /// Surrogate calibrated for ResNet-101 (anchors from Tables 1–3).
    pub fn resnet101() -> Self {
        AccuracyModel {
            calib: Calibration {
                base_top1: 78.77,
                k_comp: 2.6010,
                k_quant: 1.58,
                mp_bonus: 0.67,
                naive_penalty_3bit: 1.00,
                xbar_only_penalty_3bit: 0.02,
                prune_drop_50: 2.95,
                prune_drop_75: 3.97,
                epitome_prune_drop_50: 0.82,
            },
        }
    }

    /// A surrogate from explicit calibration constants.
    pub fn from_calibration(calib: Calibration) -> Self {
        AccuracyModel { calib }
    }

    /// The calibration constants.
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// FP32 baseline top-1 accuracy.
    pub fn baseline(&self) -> f64 {
        self.calib.base_top1
    }

    /// Accuracy of an epitome network at `param_compression` (≥ 1) under
    /// the given weight scheme and quantization method.
    pub fn epim_accuracy(
        &self,
        param_compression: f64,
        scheme: WeightScheme,
        method: QuantMethod,
    ) -> f64 {
        let cr = param_compression.max(1.0);
        let comp_drop = self.calib.k_comp * cr.ln();
        let quant_drop = match scheme {
            WeightScheme::Fp32 => 0.0,
            WeightScheme::Fixed { bits } => self.quant_drop(bits as f64, 1.0, method),
            WeightScheme::Mixed { avg_bits } => {
                self.quant_drop(avg_bits, self.calib.mp_bonus, method)
            }
        };
        self.calib.base_top1 - comp_drop - quant_drop
    }

    /// Quantization drop at `bits_eff` effective bits scaled by a
    /// mixed-precision efficiency factor, plus the method ablation
    /// penalty.
    fn quant_drop(&self, bits_eff: f64, mp_factor: f64, method: QuantMethod) -> f64 {
        // Exponential decay anchored at 3 bits with the full method.
        let base = self.calib.k_quant * (2.0f64).powf(-(bits_eff - 3.0)) * mp_factor;
        // Method penalties decay at the same rate away from 3 bits: at
        // high precision all methods coincide (Table 2 motivates the
        // ablation only for ultra-low bits).
        let decay = (2.0f64).powf(-(bits_eff - 3.0));
        let method_penalty = match method {
            QuantMethod::PerCrossbarOverlap => 0.0,
            QuantMethod::PerCrossbar => self.calib.xbar_only_penalty_3bit * decay,
            QuantMethod::Naive => self.calib.naive_penalty_3bit * decay,
        };
        base + method_penalty
    }

    /// Accuracy of PIM-Prune at `ratio` pruning (linear interpolation /
    /// extrapolation through the 50% and 75% anchors).
    pub fn pim_prune_accuracy(&self, ratio: f64) -> f64 {
        let slope = (self.calib.prune_drop_75 - self.calib.prune_drop_50) / 0.25;
        let drop = self.calib.prune_drop_50 + slope * (ratio - 0.50);
        self.calib.base_top1 - drop.max(0.0)
    }

    /// Accuracy of the epitome combined with 50%-ratio element pruning
    /// (the Table 3 "Epitome + Pruning" row), scaled linearly in ratio.
    pub fn epitome_plus_pruning_accuracy(&self, param_compression: f64, ratio: f64) -> f64 {
        let epi = self.epim_accuracy(
            param_compression,
            WeightScheme::Fp32,
            QuantMethod::PerCrossbarOverlap,
        );
        epi - self.calib.epitome_prune_drop_50 * (ratio / 0.50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 0.25; // surrogate must hit published anchors closely

    #[test]
    fn resnet50_table1_anchors() {
        let m = AccuracyModel::resnet50();
        assert_eq!(m.baseline(), 76.37);
        // FP32 epitome at the repo's uniform CR (2.8418x) -> 74.00.
        let fp = m.epim_accuracy(2.8418, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert!((fp - 74.00).abs() < TOL, "{fp}");
        // W3 full method -> 71.59.
        let w3 = m.epim_accuracy(
            2.8418,
            WeightScheme::Fixed { bits: 3 },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!((w3 - 71.59).abs() < TOL, "{w3}");
        // W3mp -> 72.98.
        let mp = m.epim_accuracy(
            2.8418,
            WeightScheme::Mixed { avg_bits: 3.5 },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!((mp - 72.98).abs() < 0.4, "{mp}");
        // W9 nearly free.
        let w9 = m.epim_accuracy(
            2.8418,
            WeightScheme::Fixed { bits: 9 },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!((w9 - 74.00).abs() < 0.1, "{w9}");
    }

    #[test]
    fn resnet50_table2_anchors() {
        let m = AccuracyModel::resnet50();
        let naive = m.epim_accuracy(2.8418, WeightScheme::Fixed { bits: 3 }, QuantMethod::Naive);
        let xbar = m.epim_accuracy(
            2.8418,
            WeightScheme::Fixed { bits: 3 },
            QuantMethod::PerCrossbar,
        );
        let full = m.epim_accuracy(
            2.8418,
            WeightScheme::Fixed { bits: 3 },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!((naive - 69.95).abs() < TOL, "{naive}");
        assert!((xbar - 71.35).abs() < TOL, "{xbar}");
        assert!((full - 71.59).abs() < TOL, "{full}");
        assert!(naive < xbar && xbar < full, "Table 2 ordering");
    }

    #[test]
    fn resnet101_anchors() {
        let m = AccuracyModel::resnet101();
        let fp = m.epim_accuracy(2.3389, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert!((fp - 76.56).abs() < TOL, "{fp}");
        let w3 = m.epim_accuracy(
            2.3389,
            WeightScheme::Fixed { bits: 3 },
            QuantMethod::PerCrossbarOverlap,
        );
        assert!((w3 - 74.98).abs() < TOL, "{w3}");
        let naive = m.epim_accuracy(2.3389, WeightScheme::Fixed { bits: 3 }, QuantMethod::Naive);
        assert!((naive - 73.98).abs() < TOL, "{naive}");
    }

    #[test]
    fn prune_anchors() {
        let m50 = AccuracyModel::resnet50();
        assert!((m50.pim_prune_accuracy(0.50) - 72.77).abs() < 0.01);
        assert!((m50.pim_prune_accuracy(0.75) - 72.19).abs() < 0.01);
        let m101 = AccuracyModel::resnet101();
        assert!((m101.pim_prune_accuracy(0.50) - 75.82).abs() < 0.01);
        assert!((m101.pim_prune_accuracy(0.75) - 74.80).abs() < 0.01);
    }

    #[test]
    fn epitome_plus_pruning_anchor() {
        let m = AccuracyModel::resnet50();
        let a = m.epitome_plus_pruning_accuracy(2.8418, 0.50);
        assert!((a - 73.18).abs() < TOL, "{a}");
    }

    #[test]
    fn epitome_beats_pruning_at_similar_compression() {
        // The paper's headline comparison (Table 3): the epitome beats
        // PIM-Prune 50% despite higher compression.
        let m = AccuracyModel::resnet50();
        let epi = m.epim_accuracy(2.8418, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert!(epi > m.pim_prune_accuracy(0.50));
    }

    #[test]
    fn monotonicity_properties() {
        let m = AccuracyModel::resnet50();
        // More compression, less accuracy.
        let a1 = m.epim_accuracy(2.0, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        let a2 = m.epim_accuracy(4.0, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert!(a2 < a1);
        // More bits, more accuracy.
        let mut prev = 0.0;
        for bits in [3u8, 5, 7, 9] {
            let a = m.epim_accuracy(
                2.8418,
                WeightScheme::Fixed { bits },
                QuantMethod::PerCrossbarOverlap,
            );
            assert!(a > prev, "bits {bits}");
            prev = a;
        }
        // Method ordering holds at every low bit width.
        for bits in [3u8, 4, 5] {
            let n = m.epim_accuracy(2.8418, WeightScheme::Fixed { bits }, QuantMethod::Naive);
            let x = m.epim_accuracy(
                2.8418,
                WeightScheme::Fixed { bits },
                QuantMethod::PerCrossbar,
            );
            let f = m.epim_accuracy(
                2.8418,
                WeightScheme::Fixed { bits },
                QuantMethod::PerCrossbarOverlap,
            );
            assert!(n < x && x < f);
        }
    }

    #[test]
    fn compression_one_is_free() {
        let m = AccuracyModel::resnet50();
        let a = m.epim_accuracy(1.0, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert_eq!(a, m.baseline());
        // Sub-1 compression is clamped.
        let b = m.epim_accuracy(0.5, WeightScheme::Fp32, QuantMethod::PerCrossbarOverlap);
        assert_eq!(b, m.baseline());
    }
}
