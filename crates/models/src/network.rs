//! Networks with per-layer operator choices (convolution or epitome), and
//! whole-network cost simulation.

use crate::resnet::Backbone;
use epim_core::{EpitomeDesigner, EpitomeError, EpitomeSpec};
use epim_pim::{CostModel, NetworkCosts, Precision};
use serde::{Deserialize, Serialize};

/// The operator implementing one weight layer.
///
/// The size difference between variants is intentional: `Epitome` carries
/// the full spec (boxing it would push an allocation into every layer-table
/// clone on the search hot path).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperatorChoice {
    /// Keep the original convolution.
    Conv,
    /// Replace with an epitome.
    Epitome(EpitomeSpec),
}

impl OperatorChoice {
    /// Whether the layer uses an epitome.
    pub fn is_epitome(&self) -> bool {
        matches!(self, OperatorChoice::Epitome(_))
    }
}

/// A backbone plus per-layer operator choices — the unit the evolutionary
/// search optimizes and the cost model simulates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    backbone: Backbone,
    choices: Vec<OperatorChoice>,
}

impl Network {
    /// A network keeping every layer as a convolution (the baseline rows
    /// of Table 1).
    pub fn baseline(backbone: Backbone) -> Self {
        let choices = vec![OperatorChoice::Conv; backbone.layers.len()];
        Network { backbone, choices }
    }

    /// Replaces every convolution with a uniform epitome of (at most)
    /// `rows × cout` matrix shape — the paper's "1024 × 256" uniform
    /// setting. Layers already smaller than the target are capped by the
    /// designer; the FC classifier is kept as-is (the paper compresses
    /// convolutions).
    ///
    /// # Errors
    ///
    /// Propagates designer errors.
    pub fn uniform_epitome(
        backbone: Backbone,
        designer: &EpitomeDesigner,
        rows: usize,
        cout: usize,
    ) -> Result<Self, EpitomeError> {
        let mut choices = Vec::with_capacity(backbone.layers.len());
        for layer in &backbone.layers {
            if layer.name == "fc" {
                choices.push(OperatorChoice::Conv);
                continue;
            }
            let spec = designer.design(layer.conv, rows, cout)?;
            // If the design cannot shrink the layer, keep the conv: an
            // epitome with compression 1 only adds activation rounds.
            if spec.param_compression() > 1.001 {
                choices.push(OperatorChoice::Epitome(spec));
            } else {
                choices.push(OperatorChoice::Conv);
            }
        }
        Ok(Network { backbone, choices })
    }

    /// Builds a network from explicit per-layer choices.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if the choice count differs
    /// from the layer count or a spec targets the wrong conv shape.
    pub fn from_choices(
        backbone: Backbone,
        choices: Vec<OperatorChoice>,
    ) -> Result<Self, EpitomeError> {
        if choices.len() != backbone.layers.len() {
            return Err(epim_core::EpitomeError::plan(format!(
                "{} choices for {} layers",
                choices.len(),
                backbone.layers.len()
            )));
        }
        for (layer, choice) in backbone.layers.iter().zip(&choices) {
            if let OperatorChoice::Epitome(spec) = choice {
                if spec.conv() != layer.conv {
                    return Err(epim_core::EpitomeError::plan(format!(
                        "epitome for layer {} targets conv {} but layer is {}",
                        layer.name,
                        spec.conv(),
                        layer.conv
                    )));
                }
            }
        }
        Ok(Network { backbone, choices })
    }

    /// The underlying backbone.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// Per-layer operator choices.
    pub fn choices(&self) -> &[OperatorChoice] {
        &self.choices
    }

    /// The epitome specs among this network's choices, with their layer
    /// indices — the set of data-path plans a serving runtime must compile
    /// (identical layers repeat their spec, which is what makes the
    /// runtime's plan cache pay off).
    pub fn epitome_specs(&self) -> impl Iterator<Item = (usize, &EpitomeSpec)> {
        self.choices
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                OperatorChoice::Epitome(spec) => Some((i, spec)),
                OperatorChoice::Conv => None,
            })
    }

    /// Replaces the choice for layer `i` (used by the evolutionary
    /// search's mutation operator).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if `i` is out of range or
    /// the spec targets the wrong conv.
    pub fn set_choice(&mut self, i: usize, choice: OperatorChoice) -> Result<(), EpitomeError> {
        let layer = self.backbone.layers.get(i).ok_or_else(|| {
            epim_core::EpitomeError::plan(format!("layer index {i} out of range"))
        })?;
        if let OperatorChoice::Epitome(spec) = &choice {
            if spec.conv() != layer.conv {
                return Err(epim_core::EpitomeError::plan("spec/layer conv mismatch"));
            }
        }
        self.choices[i] = choice;
        Ok(())
    }

    /// Stored weight parameters under the current choices.
    pub fn params(&self) -> usize {
        self.backbone
            .layers
            .iter()
            .zip(&self.choices)
            .map(|(l, c)| match c {
                OperatorChoice::Conv => l.conv.params(),
                OperatorChoice::Epitome(s) => s.shape().params(),
            })
            .sum()
    }

    /// Parameter compression rate versus the all-conv baseline.
    pub fn param_compression(&self) -> f64 {
        self.backbone.params() as f64 / self.params() as f64
    }

    /// Number of layers using epitomes.
    pub fn epitome_layers(&self) -> usize {
        self.choices.iter().filter(|c| c.is_epitome()).count()
    }

    /// Simulates the whole network with one precision everywhere.
    pub fn simulate(&self, model: &CostModel, precision: Precision) -> NetworkCosts {
        self.simulate_per_layer(model, &vec![precision; self.choices.len()])
    }

    /// Simulates with per-layer precisions (mixed precision rows).
    ///
    /// # Panics
    ///
    /// Panics if `precisions.len()` differs from the layer count.
    pub fn simulate_per_layer(&self, model: &CostModel, precisions: &[Precision]) -> NetworkCosts {
        assert_eq!(
            precisions.len(),
            self.choices.len(),
            "one precision per layer required"
        );
        let mut costs = NetworkCosts::new(self.backbone.name.clone());
        for ((layer, choice), &prec) in self
            .backbone
            .layers
            .iter()
            .zip(&self.choices)
            .zip(precisions)
        {
            let lc = match choice {
                OperatorChoice::Conv => model.conv_layer(layer.conv, layer.out_pixels(), prec),
                OperatorChoice::Epitome(spec) => {
                    model.epitome_layer(spec, layer.out_pixels(), prec)
                }
            };
            costs.push(layer.name.clone(), lc);
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{resnet101, resnet50};
    use epim_pim::AcceleratorConfig;

    fn designer() -> EpitomeDesigner {
        EpitomeDesigner::new(128, 128)
    }

    #[test]
    fn baseline_keeps_all_convs() {
        let net = Network::baseline(resnet50());
        assert_eq!(net.epitome_layers(), 0);
        assert!((net.param_compression() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_epitome_compresses_meaningfully() {
        let net = Network::uniform_epitome(resnet50(), &designer(), 1024, 256).unwrap();
        assert!(net.epitome_layers() > 20);
        let cr = net.param_compression();
        // The paper's Table 3 reports 2.25x parameter compression for the
        // uniform 1024x256 ResNet-50 epitome; ours must land in the same
        // regime.
        assert!((1.8..3.2).contains(&cr), "param CR {cr}");
    }

    #[test]
    fn uniform_epitome_resnet101_compresses() {
        let net = Network::uniform_epitome(resnet101(), &designer(), 1024, 256).unwrap();
        let cr = net.param_compression();
        assert!((1.7..3.2).contains(&cr), "param CR {cr}");
    }

    #[test]
    fn crossbar_compression_matches_paper_regime() {
        // Table 1: FP32 epitome cuts crossbars ~2.3x; with W9A9 ~9.2x vs
        // the FP32 conv baseline.
        let model = CostModel::new(AcceleratorConfig::default());
        let base = Network::baseline(resnet50());
        let epim = Network::uniform_epitome(resnet50(), &designer(), 1024, 256).unwrap();
        let xb_base = base.simulate(&model, Precision::fp32()).crossbars();
        let xb_epim_fp = epim.simulate(&model, Precision::fp32()).crossbars();
        let xb_epim_w9 = epim.simulate(&model, Precision::new(9, 9)).crossbars();
        let cr_fp = xb_base as f64 / xb_epim_fp as f64;
        let cr_w9 = xb_base as f64 / xb_epim_w9 as f64;
        assert!((1.8..3.2).contains(&cr_fp), "FP32 XB CR {cr_fp}");
        assert!((6.0..13.0).contains(&cr_w9), "W9 XB CR {cr_w9}");
        assert!(cr_w9 > cr_fp * 2.5);
    }

    #[test]
    fn epitome_increases_latency_baseline_comparison() {
        // §5.1: uniform epitomes raise latency/energy versus baseline at
        // equal precision.
        let model = CostModel::new(AcceleratorConfig::default());
        let p = Precision::fp32();
        let base = Network::baseline(resnet50()).simulate(&model, p);
        let epim = Network::uniform_epitome(resnet50(), &designer(), 1024, 256)
            .unwrap()
            .simulate(&model, p);
        assert!(epim.latency_ms() > base.latency_ms());
        assert!(epim.crossbars() < base.crossbars());
    }

    #[test]
    fn from_choices_validates() {
        let bb = resnet50();
        let too_few = vec![OperatorChoice::Conv; 3];
        assert!(Network::from_choices(bb.clone(), too_few).is_err());

        // Spec for the wrong conv.
        let wrong_spec = designer()
            .design(epim_core::ConvShape::new(2, 2, 1, 1), 2, 2)
            .unwrap();
        let mut choices = vec![OperatorChoice::Conv; bb.layers.len()];
        choices[5] = OperatorChoice::Epitome(wrong_spec);
        assert!(Network::from_choices(bb, choices).is_err());
    }

    #[test]
    fn set_choice_mutates() {
        let bb = resnet50();
        let mut net = Network::baseline(bb.clone());
        let layer = &bb.layers[10];
        let spec = designer()
            .design(
                layer.conv,
                layer.conv.matrix_rows() / 2,
                layer.conv.cout / 2,
            )
            .unwrap();
        net.set_choice(10, OperatorChoice::Epitome(spec)).unwrap();
        assert_eq!(net.epitome_layers(), 1);
        assert!(net.set_choice(999, OperatorChoice::Conv).is_err());
    }

    #[test]
    fn per_layer_precisions_accepted() {
        let model = CostModel::new(AcceleratorConfig::default());
        let net = Network::baseline(resnet50());
        let mut precs = vec![Precision::new(3, 9); net.choices().len()];
        precs[0] = Precision::new(5, 9);
        let costs = net.simulate_per_layer(&model, &precs);
        assert_eq!(costs.layers().len(), net.choices().len());
    }

    #[test]
    fn memristor_utilization_high_for_aligned_epitomes() {
        // §4.1: aligned epitome shapes should utilize crossbars well;
        // Table 1 reports 93-98% for EPIM rows.
        let model = CostModel::new(AcceleratorConfig::default());
        let epim = Network::uniform_epitome(resnet50(), &designer(), 1024, 256).unwrap();
        let util = epim
            .simulate(&model, Precision::new(9, 9))
            .utilization_pct();
        assert!(util > 85.0, "utilization {util}%");
    }
}
