//! A zoo of ready-made small networks for tests, examples and benches.
//!
//! Every integration test, serving example and bench used to hand-roll
//! its own "tiny ResNet" layer inventory; multi-tenant serving needs
//! *several distinct* small networks, so the construction lives here
//! once. All zoo backbones run at **16×16 input** (stem stride 2 to 8×8,
//! pooled entry to 4×4) and follow the ResNet naming convention
//! [`crate::lower`] recognizes, so they lower, cost and serve exactly
//! like the full-size inventories.

use crate::network::{Network, OperatorChoice};
use crate::resnet::{Backbone, LayerInfo};
use epim_core::{EpitomeDesigner, EpitomeError, EpitomeSpec};

fn layer(name: &str, conv: epim_core::ConvShape, res: usize) -> LayerInfo {
    LayerInfo {
        name: name.to_string(),
        conv,
        out_h: res,
        out_w: res,
    }
}

/// A tiny ResNet-style backbone at 16×16 input: a `stem` -channel stem
/// (16×16 → 8×8), the 3×3/2 entry pool (8×8 → 4×4), one
/// projection-shortcut bottleneck block and one identity block of inner
/// width `mid` (output channels `4 * mid`), and a `classes`-way
/// classifier.
///
/// Distinct `(stem, mid, classes)` triples give structurally distinct
/// networks — the building block for multi-tenant fleets. `(8, 4, 10)`
/// reproduces the runtime test backbone, `(8, 8, 10)` the serving
/// example/bench backbone.
pub fn tiny_resnet_backbone(stem: usize, mid: usize, classes: usize) -> Backbone {
    use epim_core::ConvShape;
    let out = 4 * mid;
    Backbone {
        name: format!("tiny-resnet-s{stem}m{mid}c{classes}"),
        layers: vec![
            layer("stem.conv1", ConvShape::new(stem, 3, 3, 3), 8),
            layer("stage1.block0.conv1", ConvShape::new(mid, stem, 1, 1), 4),
            layer("stage1.block0.conv2", ConvShape::new(mid, mid, 3, 3), 4),
            layer("stage1.block0.conv3", ConvShape::new(out, mid, 1, 1), 4),
            layer(
                "stage1.block0.downsample",
                ConvShape::new(out, stem, 1, 1),
                4,
            ),
            layer("stage1.block1.conv1", ConvShape::new(mid, out, 1, 1), 4),
            layer("stage1.block1.conv2", ConvShape::new(mid, mid, 3, 3), 4),
            layer("stage1.block1.conv3", ConvShape::new(out, mid, 1, 1), 4),
            layer("fc", ConvShape::new(classes, out, 1, 1), 1),
        ],
    }
}

/// The [`tiny_resnet_backbone`] with both 3×3 convolutions replaced by
/// **one shared epitome spec** (halved matrix rows, `mid / 2` output
/// channels in the epitome) — the repeat is what makes a plan cache pay
/// off across layers, and two networks of equal `mid` share the *same*
/// spec, which is what lets multi-tenant serving share one compiled plan
/// across tenants.
///
/// # Errors
///
/// Propagates epitome design errors (an inner width too small to
/// compress).
pub fn tiny_epitome_network(
    stem: usize,
    mid: usize,
    classes: usize,
) -> Result<(Network, EpitomeSpec), EpitomeError> {
    let bb = tiny_resnet_backbone(stem, mid, classes);
    let conv = bb.layers[2].conv;
    let spec = EpitomeDesigner::new(16, 16).design(
        conv,
        conv.matrix_rows() / 2,
        (conv.cout / 2).max(1),
    )?;
    let mut net = Network::baseline(bb);
    net.set_choice(2, OperatorChoice::Epitome(spec.clone()))?;
    net.set_choice(6, OperatorChoice::Epitome(spec.clone()))?;
    Ok((net, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_backbones_lower_and_are_distinct() {
        let a = tiny_resnet_backbone(8, 4, 10);
        let b = tiny_resnet_backbone(8, 8, 12);
        assert_ne!(a, b);
        let prog = Network::baseline(a).lower(16, 16).unwrap();
        assert_eq!(prog.input_shape(), &[3, 16, 16]);
        assert_eq!(prog.output_shape(), &[10]);
        let prog = Network::baseline(b).lower(16, 16).unwrap();
        assert_eq!(prog.output_shape(), &[12]);
    }

    #[test]
    fn equal_mid_networks_share_a_spec_distinct_mids_do_not() {
        let (net_a, spec_a) = tiny_epitome_network(8, 4, 10).unwrap();
        let (net_b, spec_b) = tiny_epitome_network(8, 4, 16).unwrap();
        let (_, spec_c) = tiny_epitome_network(8, 8, 10).unwrap();
        assert_eq!(spec_a, spec_b, "equal inner widths must share the spec");
        assert_ne!(spec_a, spec_c);
        assert_ne!(net_a, net_b, "different class counts are distinct networks");
        // Both epitome layers of one network share the one spec.
        let prog = net_a.lower(16, 16).unwrap();
        assert_eq!(prog.epitome_specs(), vec![&spec_a]);
    }
}
