//! Property tests for the graph-fusion pass: `NetworkProgram::optimize`
//! must be **bitwise invisible** — outputs and `DataPathStats` rollups of
//! the optimized program equal the unoptimized program exactly — across
//! odd input resolutions, inferred strides/paddings, plain chains and
//! ResNet topologies (projection + identity shortcuts), and
//! noisy/quantized analog data paths.

use epim_core::{ConvShape, EpitomeDesigner};
use epim_models::lower::NetworkWeights;
use epim_models::network::{Network, OperatorChoice};
use epim_models::resnet::{Backbone, LayerInfo};
use epim_pim::datapath::AnalogModel;
use epim_tensor::{init, rng};
use proptest::prelude::*;

fn layer(name: &str, conv: ConvShape, res: usize) -> LayerInfo {
    LayerInfo {
        name: name.to_string(),
        conv,
        out_h: res,
        out_w: res,
    }
}

/// Lowers `net`, optimizes it, and checks the fused program reproduces
/// the unfused reference bit for bit (outputs and stats) on a random
/// batch, while folding at least `min_folded` stages away.
fn assert_fusion_invisible(
    net: &Network,
    input_hw: (usize, usize),
    seed: u64,
    quantized: bool,
    n: usize,
    min_folded: usize,
) {
    let prog = net.lower(input_hw.0, input_hw.1).unwrap();
    let fused = prog.optimize();
    assert!(
        prog.stages().len() - fused.stages().len() >= min_folded,
        "expected >= {min_folded} stages folded, got {} -> {}",
        prog.stages().len(),
        fused.stages().len()
    );
    let weights = NetworkWeights::random(net, seed).unwrap();
    let analog = if quantized {
        AnalogModel {
            weight_noise_std: 0.02,
            adc_bits: Some(8),
            dac_bits: Some(9),
            noise_seed: seed,
            ..AnalogModel::ideal()
        }
    } else {
        AnalogModel::ideal()
    };
    let c_in = prog.input_shape()[0];
    let mut r = rng::seeded(seed ^ 0x5bd1);
    let x = init::uniform(&[n, c_in, input_hw.0, input_hw.1], -1.0, 1.0, &mut r);
    let (y0, s0) = prog.forward_reference(&weights, true, analog, &x).unwrap();
    let (y1, s1) = fused.forward_reference(&weights, true, analog, &x).unwrap();
    assert_eq!(y0, y1, "fused program diverged from unfused reference");
    assert_eq!(s0, s1, "fused stats rollup diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plain chains at odd resolutions: a stride-1/pad-1 layer, a
    /// stride-2 downsampling layer (both with inferred geometry), and a
    /// pooled classifier head. Both convolutions may independently be
    /// epitome stages.
    #[test]
    fn chain_fusion_is_bitwise_invisible(
        ri in 0usize..4,
        c0 in 2usize..=6,
        c1 in 2usize..=6,
        classes in 2usize..=8,
        epi0 in any::<bool>(),
        epi1 in any::<bool>(),
        quantized in any::<bool>(),
        n in 1usize..=2,
        seed in 0u64..10_000,
    ) {
        let r = [5usize, 7, 9, 11][ri];
        let half = r.div_ceil(2);
        let bb = Backbone {
            name: "odd-chain".to_string(),
            layers: vec![
                layer("l0", ConvShape::new(c0, 3, 3, 3), r),
                layer("l1", ConvShape::new(c1, c0, 3, 3), half),
                layer("head", ConvShape::new(classes, c1, 1, 1), 1),
            ],
        };
        let designer = EpitomeDesigner::new(16, 16);
        let mut net = Network::baseline(bb.clone());
        if epi0 {
            let conv = bb.layers[0].conv;
            let spec = designer.design(conv, conv.matrix_rows() / 2, c0).unwrap();
            net.set_choice(0, OperatorChoice::Epitome(spec)).unwrap();
        }
        if epi1 {
            let conv = bb.layers[1].conv;
            let spec =
                designer.design(conv, conv.matrix_rows() / 2, (c1 / 2).max(1)).unwrap();
            net.set_choice(1, OperatorChoice::Epitome(spec)).unwrap();
        }
        // Two inter-layer ReLUs fuse into their producing convolutions.
        assert_fusion_invisible(&net, (r, r), seed, quantized, n, 2);
    }

    /// ResNet topologies at even and odd resolutions: stem + pooled
    /// entry, one projection-shortcut block, one identity-shortcut
    /// block, GAP + classifier. All strides/paddings are inferred from
    /// the recorded resolutions.
    #[test]
    fn resnet_fusion_is_bitwise_invisible(
        ri in 0usize..3,
        stem in 4usize..=8,
        mid in 2usize..=4,
        classes in 2usize..=8,
        epitomes in any::<bool>(),
        quantized in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let r = [16usize, 17, 19][ri];
        let rs = r.div_ceil(2); // stem output (3x3, stride 2)
        let p = (rs - 1) / 2 + 1; // after the 3x3/2 pad-1 entry pool
        let out = 4 * mid;
        let bb = Backbone {
            name: "odd-resnet".to_string(),
            layers: vec![
                layer("stem.conv1", ConvShape::new(stem, 3, 3, 3), rs),
                layer("stage1.block0.conv1", ConvShape::new(mid, stem, 1, 1), p),
                layer("stage1.block0.conv2", ConvShape::new(mid, mid, 3, 3), p),
                layer("stage1.block0.conv3", ConvShape::new(out, mid, 1, 1), p),
                layer(
                    "stage1.block0.downsample",
                    ConvShape::new(out, stem, 1, 1),
                    p,
                ),
                layer("stage1.block1.conv1", ConvShape::new(mid, out, 1, 1), p),
                layer("stage1.block1.conv2", ConvShape::new(mid, mid, 3, 3), p),
                layer("stage1.block1.conv3", ConvShape::new(out, mid, 1, 1), p),
                layer("fc", ConvShape::new(classes, out, 1, 1), 1),
            ],
        };
        let mut net = Network::baseline(bb.clone());
        if epitomes {
            // Both 3x3 block convolutions share one epitome spec, like
            // the zoo networks.
            let conv = bb.layers[2].conv;
            let spec = EpitomeDesigner::new(16, 16)
                .design(conv, conv.matrix_rows() / 2, (conv.cout / 2).max(1))
                .unwrap();
            net.set_choice(2, OperatorChoice::Epitome(spec.clone())).unwrap();
            net.set_choice(6, OperatorChoice::Epitome(spec)).unwrap();
        }
        // The stem ReLU, four in-block ReLUs and two post-add ReLUs all
        // fuse (seven stages fold away).
        assert_fusion_invisible(&net, (r, r), seed, quantized, 1, 7);
    }
}
