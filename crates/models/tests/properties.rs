//! Property-based tests for the model-level invariants.

use epim_core::EpitomeDesigner;
use epim_models::accuracy::{AccuracyModel, QuantMethod, WeightScheme};
use epim_models::network::Network;
use epim_models::resnet::{resnet101, resnet50};
use epim_pim::{AcceleratorConfig, CostModel, Precision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The surrogate is monotone: more compression or fewer bits never
    /// increases predicted accuracy; the method ordering of Table 2 holds
    /// at every operating point.
    #[test]
    fn surrogate_monotonicity(cr1 in 1.0f64..8.0, dcr in 0.1f64..4.0, bits in 3u8..=10) {
        for model in [AccuracyModel::resnet50(), AccuracyModel::resnet101()] {
            let full = QuantMethod::PerCrossbarOverlap;
            let a1 = model.epim_accuracy(cr1, WeightScheme::Fixed { bits }, full);
            let a2 = model.epim_accuracy(cr1 + dcr, WeightScheme::Fixed { bits }, full);
            prop_assert!(a2 <= a1 + 1e-12, "compression must not raise accuracy");
            if bits < 10 {
                let lo = model.epim_accuracy(cr1, WeightScheme::Fixed { bits }, full);
                let hi = model.epim_accuracy(cr1, WeightScheme::Fixed { bits: bits + 1 }, full);
                prop_assert!(hi >= lo - 1e-12, "more bits must not cost accuracy");
            }
            let naive = model.epim_accuracy(cr1, WeightScheme::Fixed { bits }, QuantMethod::Naive);
            let xbar = model.epim_accuracy(cr1, WeightScheme::Fixed { bits }, QuantMethod::PerCrossbar);
            let fullv = model.epim_accuracy(cr1, WeightScheme::Fixed { bits }, full);
            prop_assert!(naive <= xbar && xbar <= fullv);
            // Everything stays below the FP32 baseline.
            prop_assert!(fullv <= model.baseline() + 1e-12);
        }
    }

    /// Mixed precision never loses to fixed-point at its low end (the
    /// HAWQ bonus only helps) and never exceeds the unquantized epitome.
    #[test]
    fn surrogate_mixed_precision_bounds(cr in 1.0f64..6.0, avg in 3.0f64..5.0) {
        let m = AccuracyModel::resnet50();
        let full = QuantMethod::PerCrossbarOverlap;
        let mixed = m.epim_accuracy(cr, WeightScheme::Mixed { avg_bits: avg }, full);
        let w3 = m.epim_accuracy(cr, WeightScheme::Fixed { bits: 3 }, full);
        let fp = m.epim_accuracy(cr, WeightScheme::Fp32, full);
        prop_assert!(mixed >= w3 - 1e-12, "mixed {} vs w3 {}", mixed, w3);
        prop_assert!(mixed <= fp + 1e-12, "mixed {} vs fp {}", mixed, fp);
        // More average bits never hurts.
        let mixed_hi = m.epim_accuracy(cr, WeightScheme::Mixed { avg_bits: avg + 0.25 }, full);
        prop_assert!(mixed_hi >= mixed - 1e-12);
    }

    /// Uniform EPIM networks are legal and compress for any target in the
    /// sensible range, on both backbones.
    #[test]
    fn uniform_network_legal(rows_pow in 8u32..=12, cout_pow in 6u32..=9) {
        let designer = EpitomeDesigner::new(128, 128);
        let rows = 1usize << rows_pow;   // 256 .. 4096
        let cout = 1usize << cout_pow;   // 64 .. 512
        for backbone in [resnet50(), resnet101()] {
            let net = Network::uniform_epitome(backbone, &designer, rows, cout).unwrap();
            prop_assert!(net.param_compression() >= 1.0);
            for choice in net.choices() {
                if let epim_models::network::OperatorChoice::Epitome(spec) = choice {
                    spec.plan().verify().unwrap();
                    prop_assert!(spec.param_compression() > 1.0);
                }
            }
        }
    }

    /// Whole-network simulation is internally consistent: totals equal
    /// the sum of layers, and every quantity is finite and positive.
    #[test]
    fn network_simulation_consistent(wb in 2u8..=16, wrapping in any::<bool>()) {
        let model = CostModel::new(
            AcceleratorConfig::default().with_channel_wrapping(wrapping));
        let designer = EpitomeDesigner::new(128, 128);
        let net = Network::uniform_epitome(resnet50(), &designer, 1024, 256).unwrap();
        let costs = net.simulate(&model, Precision::new(wb, 9));
        let total = costs.total();
        let sum_lat: f64 = costs.layers().iter().map(|(_, c)| c.latency_ns).sum();
        let sum_xbs: usize = costs.layers().iter().map(|(_, c)| c.crossbars).sum();
        prop_assert!((total.latency_ns - sum_lat).abs() < 1e-6 * sum_lat);
        prop_assert_eq!(total.crossbars, sum_xbs);
        prop_assert!(total.latency_ns.is_finite() && total.latency_ns > 0.0);
        prop_assert!(total.energy_pj.is_finite() && total.energy_pj > 0.0);
        prop_assert!(total.utilization > 0.0 && total.utilization <= 1.0);
    }
}
