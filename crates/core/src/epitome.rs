//! The [`Epitome`] parameter tensor and its reconstruction machinery.

use crate::{ConvShape, EpitomeError, EpitomeShape, SamplingPlan};
use epim_simd::{dispatch, slice, Simd, SimdOp};
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fully specified epitome: its shape, the convolution it stands in for,
/// and the sampling plan connecting the two.
///
/// Construct via [`crate::EpitomeDesigner::design`] (which legalizes the
/// shape to crossbar multiples) or [`EpitomeSpec::with_plan`] for explicit
/// control.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpitomeSpec {
    conv: ConvShape,
    shape: EpitomeShape,
    plan: SamplingPlan,
}

impl EpitomeSpec {
    /// Creates a spec with the canonical sampling plan.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] for zero extents.
    pub fn new(conv: ConvShape, shape: EpitomeShape) -> Result<Self, EpitomeError> {
        let plan = SamplingPlan::build(conv, shape)?;
        Ok(EpitomeSpec { conv, shape, plan })
    }

    /// Creates a spec from an explicit plan.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if the plan's shapes disagree
    /// with `conv`/`shape`, or if the plan fails verification.
    pub fn with_plan(
        conv: ConvShape,
        shape: EpitomeShape,
        plan: SamplingPlan,
    ) -> Result<Self, EpitomeError> {
        if plan.conv() != conv || plan.epitome() != shape {
            return Err(EpitomeError::plan(
                "plan shapes disagree with the provided conv/epitome shapes",
            ));
        }
        plan.verify()?;
        Ok(EpitomeSpec { conv, shape, plan })
    }

    /// The convolution this epitome reconstructs.
    pub fn conv(&self) -> ConvShape {
        self.conv
    }

    /// The epitome tensor shape.
    pub fn shape(&self) -> EpitomeShape {
        self.shape
    }

    /// The sampling plan.
    pub fn plan(&self) -> &SamplingPlan {
        &self.plan
    }

    /// Parameter compression rate: conv params / epitome params.
    pub fn param_compression(&self) -> f64 {
        self.conv.params() as f64 / self.shape.params() as f64
    }
}

/// The epitome operator: a compact learnable tensor plus its spec.
///
/// Layout matches convolution weights: `(C_out_e, C_in_e, H_e, W_e)`.
///
/// # Example
///
/// ```
/// use epim_core::{ConvShape, EpitomeShape, Epitome, EpitomeSpec};
///
/// # fn main() -> Result<(), epim_core::EpitomeError> {
/// let spec = EpitomeSpec::new(
///     ConvShape::new(8, 4, 3, 3),
///     EpitomeShape::new(4, 4, 3, 3),
/// )?;
/// let epi = Epitome::zeros(spec);
/// assert_eq!(epi.reconstruct()?.shape(), &[8, 4, 3, 3]);
/// // Every conv element traces back to some epitome element, so the
/// // repetition counts sum to the conv volume.
/// let reps = epi.repetition_map();
/// assert_eq!(reps.sum() as usize, 8 * 4 * 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epitome {
    spec: EpitomeSpec,
    data: Tensor,
}

impl Epitome {
    /// An all-zeros epitome.
    pub fn zeros(spec: EpitomeSpec) -> Self {
        let data = Tensor::zeros(&spec.shape().dims());
        Epitome { spec, data }
    }

    /// Wraps an existing parameter tensor.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if `data`'s shape differs
    /// from the spec's epitome shape.
    pub fn from_tensor(spec: EpitomeSpec, data: Tensor) -> Result<Self, EpitomeError> {
        if data.shape() != spec.shape().dims() {
            return Err(EpitomeError::plan(format!(
                "tensor shape {:?} does not match epitome shape {:?}",
                data.shape(),
                spec.shape().dims()
            )));
        }
        Ok(Epitome { spec, data })
    }

    /// Initializes the epitome from an existing convolution weight by
    /// **averaging**: each epitome element becomes the mean of all conv
    /// weight elements it reconstructs. This is the least-squares optimal
    /// epitome for the fixed plan and a strong starting point for
    /// fine-tuning (the offline counterpart of the paper's epitome
    /// training).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if `weight`'s shape differs
    /// from the spec's conv shape.
    pub fn from_conv_weight(spec: EpitomeSpec, weight: &Tensor) -> Result<Self, EpitomeError> {
        if weight.shape() != spec.conv().dims() {
            return Err(EpitomeError::plan(format!(
                "weight shape {:?} does not match conv shape {:?}",
                weight.shape(),
                spec.conv().dims()
            )));
        }
        let dims = spec.shape().dims();
        let mut sums = Tensor::zeros(&dims);
        let mut counts = Tensor::zeros(&dims);
        dispatch(AverageInitOp {
            spec: &spec,
            sums: sums.data_mut(),
            counts: counts.data_mut(),
            weight: weight.data(),
        });
        let data = sums
            .zip(&counts, |s, c| if c > 0.0 { s / c } else { 0.0 })
            .expect("same shape by construction");
        Ok(Epitome { spec, data })
    }

    /// The spec (shapes + plan).
    pub fn spec(&self) -> &EpitomeSpec {
        &self.spec
    }

    /// The parameter tensor, `(C_out_e, C_in_e, H_e, W_e)`.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Mutable access to the parameter tensor (for training/quantization).
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        &mut self.data
    }

    /// Replaces the parameter tensor (e.g. with a quantized copy).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if the shape changes.
    pub fn set_tensor(&mut self, data: Tensor) -> Result<(), EpitomeError> {
        if data.shape() != self.spec.shape().dims() {
            return Err(EpitomeError::plan(
                "replacement tensor has a different shape",
            ));
        }
        self.data = data;
        Ok(())
    }

    /// Reconstructs the full convolution weight `(C_out, C_in, KH, KW)` by
    /// executing the sampling plan (paper Eq. 1 / Figure 1).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::Tensor`] only on internal shape corruption.
    pub fn reconstruct(&self) -> Result<Tensor, EpitomeError> {
        let conv = self.spec.conv();
        let mut out = Tensor::zeros(&conv.dims());
        let ed = self.data.data();
        let conv_row = conv.cin * conv.kh * conv.kw; // one output channel

        // For large epitomes, partition the work by output channel: each
        // worker owns a disjoint band of `out`, and replays the patch list
        // restricted to its band (preserving patch order, so overlapping
        // tail windows resolve identically to the serial loop).
        let threads = epim_parallel::num_threads();
        let od = out.data_mut();
        if threads > 1 && od.len() >= 1 << 16 {
            let co_chunk = conv.cout.div_ceil(4 * threads).max(1);
            epim_parallel::for_each_chunk_mut(od, co_chunk * conv_row, |chunk_idx, band| {
                let lo = chunk_idx * co_chunk;
                let hi = (lo + co_chunk).min(conv.cout);
                self.replay_patches_into(band, lo, hi, ed);
            });
        } else {
            self.replay_patches_into(od, 0, conv.cout, ed);
        }
        Ok(out)
    }

    /// Copies every patch element whose destination channel lies in
    /// `[co_lo, co_hi)` into `band` (the corresponding slice of the output
    /// weight), one contiguous kx run at a time. The run copies are
    /// monomorphized per ISA by the `epim-simd` dispatcher; copies are
    /// value-preserving, so every arm is trivially bitwise identical.
    fn replay_patches_into(&self, band: &mut [f32], co_lo: usize, co_hi: usize, ed: &[f32]) {
        dispatch(ReplayOp {
            spec: &self.spec,
            band,
            co_lo,
            co_hi,
            ed,
        });
    }

    /// How many times each epitome element appears in the reconstructed
    /// convolution. Elements in overlap regions have higher counts; the
    /// paper's epitome-aware quantization weighs them more (Fig. 2c).
    pub fn repetition_map(&self) -> Tensor {
        let dims = self.spec.shape().dims();
        let len: usize = dims.iter().product();
        let patches = self.spec.plan().patches();
        // Patches may overlap in the epitome (accumulation), so parallelize
        // with per-worker accumulators reduced at the end; integer counts
        // make the float reduction order-insensitive.
        let counts = epim_parallel::fold_reduce(
            patches.len(),
            || vec![0.0f32; len],
            |acc, p| {
                for_each_patch_run_of(&self.spec, &patches[p], |src_flat, _dst_flat, run| {
                    for c in &mut acc[src_flat..src_flat + run] {
                        *c += 1.0;
                    }
                });
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
        Tensor::from_vec(counts, &dims).expect("length matches dims by construction")
    }

    /// Backpropagates a gradient on the reconstructed weight to the
    /// epitome parameters: the adjoint of [`Epitome::reconstruct`], i.e.
    /// each epitome element accumulates the gradients of every conv element
    /// it produced.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] if `dweight` has the wrong
    /// shape.
    pub fn backprop_weight_grad(&self, dweight: &Tensor) -> Result<Tensor, EpitomeError> {
        if dweight.shape() != self.spec.conv().dims() {
            return Err(EpitomeError::plan(
                "gradient shape does not match conv shape",
            ));
        }
        let mut grad = Tensor::zeros(&self.spec.shape().dims());
        dispatch(AccumulateGradOp {
            spec: &self.spec,
            grad: grad.data_mut(),
            dweight: dweight.data(),
        });
        Ok(grad)
    }
}

/// [`Epitome::replay_patches_into`] as a dispatched op: the kx-run copies
/// monomorphize per ISA through [`slice::copy`].
struct ReplayOp<'a> {
    spec: &'a EpitomeSpec,
    band: &'a mut [f32],
    co_lo: usize,
    co_hi: usize,
    ed: &'a [f32],
}

impl SimdOp for ReplayOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let conv = self.spec.conv();
        let eshape = self.spec.shape();
        let (e1, e2, e3) = (
            eshape.cin * eshape.h * eshape.w,
            eshape.h * eshape.w,
            eshape.w,
        );
        let (c1, c2, c3) = (conv.cin * conv.kh * conv.kw, conv.kh * conv.kw, conv.kw);
        let sp = self.ed.as_ptr();
        let dp = self.band.as_mut_ptr();
        for patch in self.spec.plan().patches() {
            let a_lo = self.co_lo.max(patch.dst[0]).saturating_sub(patch.dst[0]);
            let a_hi = self
                .co_hi
                .min(patch.dst[0] + patch.size[0])
                .saturating_sub(patch.dst[0]);
            if a_lo >= a_hi {
                continue;
            }
            let run = patch.size[3];
            // Bounds are proven once per patch, against the patch's last
            // (largest-offset) run on each side; every stride is positive,
            // so all inner offsets are dominated by these. The inner loops
            // then replay ~hundreds of thousands of tiny runs with no
            // per-run bounds checks.
            let src_end = (patch.src[0] + a_hi - 1) * e1
                + (patch.src[1] + patch.size[1] - 1) * e2
                + (patch.src[2] + patch.size[2] - 1) * e3
                + patch.src[3]
                + run;
            let dst_end = (patch.dst[0] + a_hi - 1 - self.co_lo) * c1
                + (patch.dst[1] + patch.size[1] - 1) * c2
                + (patch.dst[2] + patch.size[2] - 1) * c3
                + patch.dst[3]
                + run;
            assert!(
                src_end <= self.ed.len() && dst_end <= self.band.len(),
                "patch exceeds epitome/band extents"
            );
            for a in a_lo..a_hi {
                let src_a = (patch.src[0] + a) * e1;
                let dst_a = (patch.dst[0] + a - self.co_lo) * c1;
                for b in 0..patch.size[1] {
                    let src_b = src_a + (patch.src[1] + b) * e2;
                    let dst_b = dst_a + (patch.dst[1] + b) * c2;
                    for c in 0..patch.size[2] {
                        let src_flat = src_b + (patch.src[2] + c) * e3 + patch.src[3];
                        let dst_flat = dst_b + (patch.dst[2] + c) * c3 + patch.dst[3];
                        // SAFETY: within the per-patch bounds proven above;
                        // src (epitome) and dst (conv band) are distinct
                        // allocations.
                        unsafe {
                            slice::copy_raw(s, sp.add(src_flat), dp.add(dst_flat), run);
                        }
                    }
                }
            }
        }
    }
}

/// [`Epitome::backprop_weight_grad`]'s accumulation as a dispatched op.
/// Each epitome element's additions happen in the same patch order in every
/// arm (lanes cover independent elements), so all arms are bitwise equal.
struct AccumulateGradOp<'a> {
    spec: &'a EpitomeSpec,
    grad: &'a mut [f32],
    dweight: &'a [f32],
}

impl SimdOp for AccumulateGradOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let grad = self.grad;
        let dweight = self.dweight;
        for_each_patch_run(self.spec, |src_flat, dst_flat, run| {
            slice::add_assign(
                s,
                &mut grad[src_flat..src_flat + run],
                &dweight[dst_flat..dst_flat + run],
            );
        });
    }
}

/// [`Epitome::from_conv_weight`]'s sum/count sweep as a dispatched op.
struct AverageInitOp<'a> {
    spec: &'a EpitomeSpec,
    sums: &'a mut [f32],
    counts: &'a mut [f32],
    weight: &'a [f32],
}

impl SimdOp for AverageInitOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let sums = self.sums;
        let counts = self.counts;
        let weight = self.weight;
        for_each_patch_run(self.spec, |src_flat, dst_flat, run| {
            slice::add_assign(
                s,
                &mut sums[src_flat..src_flat + run],
                &weight[dst_flat..dst_flat + run],
            );
            slice::add_splat(s, &mut counts[src_flat..src_flat + run], 1.0);
        });
    }
}

/// Calls `f(src_flat, dst_flat, run)` for every contiguous kx run of every
/// patch of `spec`, in patch order. `src_flat` indexes the epitome tensor,
/// `dst_flat` the conv weight; both runs are `run` elements long.
fn for_each_patch_run(spec: &EpitomeSpec, mut f: impl FnMut(usize, usize, usize)) {
    for patch in spec.plan().patches() {
        for_each_patch_run_of(spec, patch, &mut f);
    }
}

/// [`for_each_patch_run`] restricted to one patch.
fn for_each_patch_run_of(
    spec: &EpitomeSpec,
    patch: &crate::Patch,
    mut f: impl FnMut(usize, usize, usize),
) {
    let conv = spec.conv();
    let eshape = spec.shape();
    let (e1, e2, e3) = (
        eshape.cin * eshape.h * eshape.w,
        eshape.h * eshape.w,
        eshape.w,
    );
    let (c1, c2, c3) = (conv.cin * conv.kh * conv.kw, conv.kh * conv.kw, conv.kw);
    let run = patch.size[3];
    for a in 0..patch.size[0] {
        let src_a = (patch.src[0] + a) * e1;
        let dst_a = (patch.dst[0] + a) * c1;
        for b in 0..patch.size[1] {
            let src_b = src_a + (patch.src[1] + b) * e2;
            let dst_b = dst_a + (patch.dst[1] + b) * c2;
            for c in 0..patch.size[2] {
                let src_flat = src_b + (patch.src[2] + c) * e3 + patch.src[3];
                let dst_flat = dst_b + (patch.dst[2] + c) * c3 + patch.dst[3];
                f(src_flat, dst_flat, run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_tensor::{init, rng};

    fn spec(conv: ConvShape, epi: EpitomeShape) -> EpitomeSpec {
        EpitomeSpec::new(conv, epi).unwrap()
    }

    #[test]
    fn identity_epitome_reconstructs_itself() {
        let conv = ConvShape::new(4, 3, 3, 3);
        let s = spec(conv, EpitomeShape::new(4, 3, 3, 3));
        let mut r = rng::seeded(1);
        let data = init::uniform(&s.shape().dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(s, data.clone()).unwrap();
        assert_eq!(epi.reconstruct().unwrap(), data);
    }

    #[test]
    fn replication_along_cout() {
        // cout 8 from cout_e 4: two identical channel blocks.
        let s = spec(ConvShape::new(8, 2, 3, 3), EpitomeShape::new(4, 2, 3, 3));
        let mut r = rng::seeded(2);
        let data = init::uniform(&s.shape().dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(s, data).unwrap();
        let w = epi.reconstruct().unwrap();
        for co in 0..4 {
            for ci in 0..2 {
                for y in 0..3 {
                    for x in 0..3 {
                        assert_eq!(
                            w.at(&[co, ci, y, x]),
                            w.at(&[co + 4, ci, y, x]),
                            "translation invariance (paper Eq. 8)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repetition_counts_sum_to_conv_volume() {
        let conv = ConvShape::new(16, 8, 3, 3);
        let s = spec(conv, EpitomeShape::new(8, 4, 2, 2));
        let epi = Epitome::zeros(s);
        let reps = epi.repetition_map();
        assert_eq!(reps.sum() as usize, conv.params());
        // Compression implies some element repeats.
        assert!(reps.max() >= 2.0);
    }

    #[test]
    fn repetition_nonuniform_under_overlap() {
        // Tail windows overlap earlier full windows, so counts differ.
        let s = spec(ConvShape::new(4, 9, 1, 1), EpitomeShape::new(4, 5, 1, 1));
        let epi = Epitome::zeros(s);
        let reps = epi.repetition_map();
        assert!(
            reps.max() > reps.min(),
            "overlap must create nonuniform repetition"
        );
    }

    #[test]
    fn from_conv_weight_is_exact_when_lossless() {
        // Epitome with the same shape as the conv loses nothing.
        let conv = ConvShape::new(6, 5, 3, 3);
        let s = spec(conv, EpitomeShape::new(6, 5, 3, 3));
        let mut r = rng::seeded(3);
        let w = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_conv_weight(s, &w).unwrap();
        let back = epi.reconstruct().unwrap();
        assert!(back.allclose(&w, 1e-6).unwrap());
    }

    #[test]
    fn from_conv_weight_minimizes_reconstruction_error() {
        // Averaging init must beat a random epitome in MSE.
        let conv = ConvShape::new(8, 8, 3, 3);
        let s = spec(conv, EpitomeShape::new(4, 8, 2, 2));
        let mut r = rng::seeded(4);
        let w = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let avg = Epitome::from_conv_weight(s.clone(), &w).unwrap();
        let rnd = Epitome::from_tensor(
            s,
            init::uniform(&avg.spec().shape().dims(), -1.0, 1.0, &mut r),
        )
        .unwrap();
        let mse_avg = avg.reconstruct().unwrap().mse(&w).unwrap();
        let mse_rnd = rnd.reconstruct().unwrap().mse(&w).unwrap();
        assert!(mse_avg < mse_rnd, "avg {mse_avg} rnd {mse_rnd}");
    }

    #[test]
    fn averaging_is_least_squares_stationary() {
        // Perturbing any single epitome coordinate away from the average
        // must not reduce reconstruction MSE.
        let conv = ConvShape::new(4, 6, 3, 3);
        let s = spec(conv, EpitomeShape::new(2, 4, 2, 2));
        let mut r = rng::seeded(5);
        let w = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_conv_weight(s, &w).unwrap();
        let base = epi.reconstruct().unwrap().mse(&w).unwrap();
        for &flat in &[0usize, 3, 17, 31] {
            for delta in [0.05f32, -0.05] {
                let mut e2 = epi.clone();
                e2.tensor_mut().data_mut()[flat] += delta;
                let m = e2.reconstruct().unwrap().mse(&w).unwrap();
                assert!(m >= base - 1e-7, "perturbation improved MSE: {m} < {base}");
            }
        }
    }

    #[test]
    fn backprop_matches_repetition_for_unit_grad() {
        // With dW = 1 everywhere, the epitome grad equals the repetition
        // count of each element.
        let s = spec(ConvShape::new(8, 6, 3, 3), EpitomeShape::new(4, 3, 2, 2));
        let epi = Epitome::zeros(s.clone());
        let dw = Tensor::ones(&s.conv().dims());
        let g = epi.backprop_weight_grad(&dw).unwrap();
        assert_eq!(g, epi.repetition_map());
    }

    #[test]
    fn shape_validation_errors() {
        let s = spec(ConvShape::new(4, 3, 3, 3), EpitomeShape::new(2, 3, 3, 3));
        assert!(Epitome::from_tensor(s.clone(), Tensor::zeros(&[1, 1, 1, 1])).is_err());
        assert!(Epitome::from_conv_weight(s.clone(), &Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut epi = Epitome::zeros(s);
        assert!(epi.set_tensor(Tensor::zeros(&[9])).is_err());
        assert!(epi.backprop_weight_grad(&Tensor::zeros(&[2, 2])).is_err());
    }

    /// Every ISA arm of the replay/accumulate ops must reproduce the
    /// scalar arm bit-for-bit (exercised via the dispatcher's force hook,
    /// independent of which arm the host picks by default).
    #[test]
    fn epitome_ops_arms_match_scalar_bitwise() {
        use epim_simd::{dispatch_on, CpuFeatures, Isa};
        // Odd, non-lane-multiple kx runs and overlapping tail windows.
        let conv = ConvShape::new(24, 13, 3, 3);
        let s = spec(conv, EpitomeShape::new(16, 8, 2, 2));
        let mut r = rng::seeded(7);
        let data = init::uniform(&s.shape().dims(), -1.0, 1.0, &mut r);
        let dw = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(s.clone(), data).unwrap();

        let run_replay = |isa: Isa| {
            let mut band = vec![0.0f32; conv.params()];
            dispatch_on(
                isa,
                ReplayOp {
                    spec: &s,
                    band: &mut band,
                    co_lo: 0,
                    co_hi: conv.cout,
                    ed: epi.tensor().data(),
                },
            );
            band
        };
        let run_grad = |isa: Isa| {
            let mut grad = vec![0.0f32; s.shape().params()];
            dispatch_on(
                isa,
                AccumulateGradOp {
                    spec: &s,
                    grad: &mut grad,
                    dweight: dw.data(),
                },
            );
            grad
        };
        let run_avg = |isa: Isa| {
            let n = s.shape().params();
            let (mut sums, mut counts) = (vec![0.0f32; n], vec![0.0f32; n]);
            dispatch_on(
                isa,
                AverageInitOp {
                    spec: &s,
                    sums: &mut sums,
                    counts: &mut counts,
                    weight: dw.data(),
                },
            );
            (sums, counts)
        };

        let (want_w, want_g, want_sc) = (
            run_replay(Isa::Scalar),
            run_grad(Isa::Scalar),
            run_avg(Isa::Scalar),
        );
        for isa in CpuFeatures::get().available() {
            let (got_w, got_g, got_sc) = (run_replay(isa), run_grad(isa), run_avg(isa));
            for (i, (a, b)) in got_w.iter().zip(&want_w).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{isa:?} replay elem {i}");
            }
            for (i, (a, b)) in got_g.iter().zip(&want_g).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{isa:?} grad elem {i}");
            }
            for (i, (a, b)) in got_sc.0.iter().zip(&want_sc.0).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{isa:?} sums elem {i}");
            }
            for (i, (a, b)) in got_sc.1.iter().zip(&want_sc.1).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{isa:?} counts elem {i}");
            }
        }
        // The public entry points agree with the scalar reference too.
        let w = epi.reconstruct().unwrap();
        for (i, (a, b)) in w.data().iter().zip(&want_w).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "reconstruct elem {i}");
        }
        let g = epi.backprop_weight_grad(&dw).unwrap();
        for (i, (a, b)) in g.data().iter().zip(&want_g).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "backprop elem {i}");
        }
    }

    #[test]
    fn param_compression_rate() {
        let s = spec(
            ConvShape::new(512, 256, 3, 3),
            EpitomeShape::new(256, 256, 2, 2),
        );
        // conv params = 512*256*9; epitome = 256*256*4.
        let expected = (512.0 * 256.0 * 9.0) / (256.0 * 256.0 * 4.0);
        assert!((s.param_compression() - expected).abs() < 1e-9);
    }
}
