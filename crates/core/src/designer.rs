//! PIM-aware epitome shape design (paper §4.1).
//!
//! "Motivated by the size flexibility of the epitomes, we can adjust their
//! shapes to better utilize memristors. Specifically, we aim for `c_out`
//! and `c_in × p × q` to align as integral multiples of the crossbar
//! size." — the [`EpitomeDesigner`] implements exactly that legalization,
//! plus candidate-ladder generation for the evolutionary search of §5.2.

use crate::{ConvShape, EpitomeError, EpitomeShape, EpitomeSpec};
use serde::{Deserialize, Serialize};

/// Designs epitome shapes aligned to a crossbar geometry.
///
/// # Example
///
/// ```
/// use epim_core::{ConvShape, EpitomeDesigner};
///
/// # fn main() -> Result<(), epim_core::EpitomeError> {
/// let designer = EpitomeDesigner::new(128, 128);
/// let spec = designer.design(ConvShape::new(512, 256, 3, 3), 1024, 256)?;
/// assert_eq!(spec.shape().matrix_rows(), 1024); // 8 x 128 word lines
/// assert_eq!(spec.shape().cout, 256);           // 2 x 128 bit lines
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpitomeDesigner {
    xbar_rows: usize,
    xbar_cols: usize,
}

impl EpitomeDesigner {
    /// Creates a designer for `xbar_rows x xbar_cols` crossbars.
    pub fn new(xbar_rows: usize, xbar_cols: usize) -> Self {
        EpitomeDesigner {
            xbar_rows: xbar_rows.max(1),
            xbar_cols: xbar_cols.max(1),
        }
    }

    /// The crossbar word-line count this designer aligns rows to.
    pub fn xbar_rows(&self) -> usize {
        self.xbar_rows
    }

    /// The crossbar bit-line count this designer aligns columns to.
    pub fn xbar_cols(&self) -> usize {
        self.xbar_cols
    }

    /// Designs an epitome for `conv` with roughly `target_rows` word lines
    /// (`c_in_e × p × q`) and `target_cout` output channels.
    ///
    /// The result is legalized:
    /// - rows and cout are capped at the convolution's own matrix size
    ///   (an epitome larger than its conv is never useful);
    /// - rows ≥ one crossbar are rounded **down** to a multiple of the
    ///   crossbar row count, and likewise for cout — full crossbar
    ///   utilization per §4.1;
    /// - spatial extents `(p, q)` are chosen as the largest window not
    ///   exceeding the kernel such that the row budget factors exactly.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] if `conv` has a zero
    /// extent or the targets are zero.
    pub fn design(
        &self,
        conv: ConvShape,
        target_rows: usize,
        target_cout: usize,
    ) -> Result<EpitomeSpec, EpitomeError> {
        conv.validate()?;
        if target_rows == 0 || target_cout == 0 {
            return Err(EpitomeError::geometry("design targets must be nonzero"));
        }
        let rows = self.align(target_rows.min(conv.matrix_rows()), self.xbar_rows);
        let cout = self.align(target_cout.min(conv.cout), self.xbar_cols);
        let (cin_e, h, w) = factor_rows(rows, conv);
        let shape = EpitomeShape::new(cout, cin_e, h, w);
        EpitomeSpec::new(conv, shape)
    }

    /// Rounds `value` down to a multiple of `unit` when it is at least one
    /// unit; smaller values are kept (a sub-crossbar epitome is legal, it
    /// just underutilizes one crossbar).
    fn align(&self, value: usize, unit: usize) -> usize {
        if value >= unit {
            (value / unit) * unit
        } else {
            value.max(1)
        }
    }

    /// The identity candidate: an epitome with exactly the convolution's
    /// shape. One activation round, compression 1 — the "keep this layer
    /// big" option the layer-wise search needs for sensitive layers
    /// (paper §5.2: "larger epitomes for those more sensitive").
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] if `conv` has a zero
    /// extent.
    pub fn identity(&self, conv: ConvShape) -> Result<EpitomeSpec, EpitomeError> {
        EpitomeSpec::new(
            conv,
            EpitomeShape::new(conv.cout, conv.cin, conv.kh, conv.kw),
        )
    }

    /// Generates the candidate ladder for one layer: the identity (no
    /// compression) plus every combination of row fractions
    /// `{1, 1/2, 1/4, 1/8}` and cout fractions `{1, 1/2, 1/4}`,
    /// legalized and deduplicated. This is the per-layer choice set `C`
    /// the evolutionary search explores (paper §5.2). Candidate 0 is
    /// always the identity.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] if `conv` has a zero
    /// extent.
    pub fn candidates(&self, conv: ConvShape) -> Result<Vec<EpitomeSpec>, EpitomeError> {
        conv.validate()?;
        let mut specs: Vec<EpitomeSpec> = vec![self.identity(conv)?];
        let full_rows = conv.matrix_rows();
        let full_cout = conv.cout;
        for row_div in [1usize, 2, 4, 8] {
            for cout_div in [1usize, 2, 4] {
                let rows = (full_rows / row_div).max(1);
                let cout = (full_cout / cout_div).max(1);
                let spec = self.design(conv, rows, cout)?;
                if !specs.iter().any(|s| s.shape() == spec.shape()) {
                    specs.push(spec);
                }
            }
        }
        Ok(specs)
    }
}

impl Default for EpitomeDesigner {
    fn default() -> Self {
        // 128x128 crossbars: the geometry used throughout the paper's
        // evaluation (inherited from MNSIM).
        EpitomeDesigner::new(128, 128)
    }
}

/// Factors a row budget into `(c_in_e, p, q)` with `c_in_e * p * q == rows`
/// (or as close as divisibility allows), preferring spatial windows close
/// to the kernel and `c_in_e ≤ c_in`.
fn factor_rows(rows: usize, conv: ConvShape) -> (usize, usize, usize) {
    // Candidate spatial windows, largest first, bounded by the kernel.
    let mut windows: Vec<(usize, usize)> = Vec::new();
    for h in (1..=conv.kh).rev() {
        for w in (1..=conv.kw).rev() {
            windows.push((h, w));
        }
    }
    windows.sort_by_key(|&(h, w)| std::cmp::Reverse(h * w));
    // First pass: exact factorization with c_in_e <= c_in.
    for &(h, w) in &windows {
        if rows.is_multiple_of(h * w) && rows / (h * w) <= conv.cin {
            return (rows / (h * w), h, w);
        }
    }
    // Second pass: exact factorization, any c_in_e.
    for &(h, w) in &windows {
        if rows.is_multiple_of(h * w) {
            return (rows / (h * w), h, w);
        }
    }
    // Fallback: a 1x1 spatial window always factors.
    (rows, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_uniform_design() {
        // 1024x256 for a 512x256x3x3 conv must produce 256x2x2 channels.
        let d = EpitomeDesigner::new(128, 128);
        let spec = d.design(ConvShape::new(512, 256, 3, 3), 1024, 256).unwrap();
        let s = spec.shape();
        assert_eq!(s.matrix_rows(), 1024);
        assert_eq!(s.cout, 256);
        assert_eq!((s.cin, s.h, s.w), (256, 2, 2));
    }

    #[test]
    fn rows_aligned_to_crossbar() {
        let d = EpitomeDesigner::new(128, 128);
        // 1000 rounds down to 896 = 7*128.
        let spec = d.design(ConvShape::new(512, 256, 3, 3), 1000, 300).unwrap();
        assert_eq!(spec.shape().matrix_rows() % 128, 0);
        assert_eq!(spec.shape().cout % 128, 0);
    }

    #[test]
    fn capped_at_conv_size() {
        let d = EpitomeDesigner::new(128, 128);
        let conv = ConvShape::new(64, 64, 3, 3); // rows 576, cout 64
        let spec = d.design(conv, 100_000, 100_000).unwrap();
        assert!(spec.shape().matrix_rows() <= conv.matrix_rows());
        assert!(spec.shape().cout <= conv.cout);
    }

    #[test]
    fn sub_crossbar_epitome_allowed() {
        let d = EpitomeDesigner::new(128, 128);
        let conv = ConvShape::new(16, 16, 3, 3);
        let spec = d.design(conv, 64, 8).unwrap();
        assert!(spec.shape().matrix_rows() >= 1);
        assert!(spec.shape().cout >= 1);
    }

    #[test]
    fn zero_targets_rejected() {
        let d = EpitomeDesigner::default();
        assert!(d.design(ConvShape::new(8, 8, 3, 3), 0, 4).is_err());
        assert!(d.design(ConvShape::new(8, 8, 3, 3), 4, 0).is_err());
    }

    #[test]
    fn candidates_are_unique_and_include_identity_scale() {
        let d = EpitomeDesigner::new(128, 128);
        let conv = ConvShape::new(512, 256, 3, 3);
        let cands = d.candidates(conv).unwrap();
        assert!(cands.len() >= 4, "got {}", cands.len());
        // All shapes distinct.
        for i in 0..cands.len() {
            for j in (i + 1)..cands.len() {
                assert_ne!(cands[i].shape(), cands[j].shape());
            }
        }
        // The least-compressed candidate has (aligned) full size.
        let max_rows = cands.iter().map(|c| c.shape().matrix_rows()).max().unwrap();
        assert!(max_rows >= (conv.matrix_rows() / 128) * 128);
    }

    #[test]
    fn candidates_for_tiny_layer() {
        let d = EpitomeDesigner::new(128, 128);
        let cands = d.candidates(ConvShape::new(8, 3, 3, 3)).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            c.plan().verify().unwrap();
        }
    }

    #[test]
    fn factor_prefers_spatial_window() {
        // 1024 rows for a 3x3 kernel with cin 256 -> (256, 2, 2), not
        // (1024, 1, 1).
        let (cin_e, h, w) = factor_rows(1024, ConvShape::new(512, 256, 3, 3));
        assert_eq!((cin_e, h, w), (256, 2, 2));
        // 576 = 64*9 factors with the full kernel window.
        let (cin_e, h, w) = factor_rows(576, ConvShape::new(64, 64, 3, 3));
        assert_eq!((cin_e, h, w), (64, 3, 3));
    }

    #[test]
    fn designed_plans_verify() {
        let d = EpitomeDesigner::new(64, 64);
        for conv in [
            ConvShape::new(512, 256, 3, 3),
            ConvShape::new(64, 3, 7, 7),
            ConvShape::new(256, 64, 1, 1),
            ConvShape::new(2048, 512, 1, 1),
        ] {
            let spec = d
                .design(conv, conv.matrix_rows() / 2, conv.cout / 2)
                .unwrap();
            spec.plan().verify().unwrap();
        }
    }
}
