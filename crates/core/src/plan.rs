//! Sampling plans: the deterministic schedule of patches the sampler `τ`
//! extracts from an epitome to tile a convolution weight (paper Eq. 1 and
//! Figure 1).
//!
//! A plan is the cartesian product of four per-dimension plans (one per
//! weight axis). Along each axis the *destination* (convolution weight) is
//! covered by consecutive, non-overlapping segments, while the *source*
//! windows inside the epitome may overlap — overlap is what makes the
//! epitome compact.

use crate::{ConvShape, EpitomeError, EpitomeShape};
use serde::{Deserialize, Serialize};

/// One segment of a per-dimension plan: `len` consecutive indices starting
/// at `dst_start` in the convolution weight are copied from `len`
/// consecutive indices starting at `src_start` in the epitome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimSegment {
    /// Start index in the destination (conv weight) axis.
    pub dst_start: usize,
    /// Start index in the source (epitome) axis.
    pub src_start: usize,
    /// Segment length.
    pub len: usize,
}

/// The per-dimension schedule: a list of segments whose destinations
/// exactly partition `0..dst_extent`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimPlan {
    /// Destination extent (the conv weight axis length).
    pub dst_extent: usize,
    /// Source extent (the epitome axis length).
    pub src_extent: usize,
    /// The segments, in destination order.
    pub segments: Vec<DimSegment>,
}

impl DimPlan {
    /// Builds the canonical plan covering a destination axis of length
    /// `dst` from a source axis of length `src`.
    ///
    /// Strategy (matching the paper's overlapping-patch sampler):
    /// the window length is `L = min(src, dst)`; the destination is tiled
    /// in chunks of `L`; each segment's source offset is spread evenly over
    /// that segment's admissible positions `src - len + 1`, so shorter tail
    /// windows land at nonzero offsets and **overlap** the earlier full
    /// windows. Overlap makes some epitome elements repeat more often than
    /// others in the reconstruction — the structure the paper's
    /// overlap-weighted quantization exploits (Fig. 2c).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] when either extent is 0.
    pub fn build(dst: usize, src: usize) -> Result<Self, EpitomeError> {
        if dst == 0 || src == 0 {
            return Err(EpitomeError::geometry(format!(
                "dimension extents must be nonzero (dst {dst}, src {src})"
            )));
        }
        let window = src.min(dst);
        let tiles = dst.div_ceil(window);
        let mut segments = Vec::with_capacity(tiles);
        for i in 0..tiles {
            let dst_start = i * window;
            let len = window.min(dst - dst_start);
            // Spread source offsets evenly over this segment's admissible
            // positions so the whole epitome is exercised and windows
            // overlap.
            let positions = src - len + 1;
            let src_start = if tiles <= 1 || positions <= 1 {
                0
            } else {
                (i * (positions - 1)) / (tiles - 1)
            };
            debug_assert!(src_start + len <= src);
            segments.push(DimSegment {
                dst_start,
                src_start,
                len,
            });
        }
        Ok(DimPlan {
            dst_extent: dst,
            src_extent: src,
            segments,
        })
    }

    /// Builds a plan where every tile reads the *same* source window
    /// starting at 0 (pure replication). This is the schedule that enables
    /// output channel wrapping (paper §5.3): identical source windows on
    /// the output-channel axis make the reconstructed weight translation
    /// invariant across channel blocks.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] when either extent is 0.
    pub fn build_replicated(dst: usize, src: usize) -> Result<Self, EpitomeError> {
        if dst == 0 || src == 0 {
            return Err(EpitomeError::geometry(format!(
                "dimension extents must be nonzero (dst {dst}, src {src})"
            )));
        }
        let window = src.min(dst);
        let tiles = dst.div_ceil(window);
        let segments = (0..tiles)
            .map(|i| {
                let dst_start = i * window;
                DimSegment {
                    dst_start,
                    src_start: 0,
                    len: window.min(dst - dst_start),
                }
            })
            .collect();
        Ok(DimPlan {
            dst_extent: dst,
            src_extent: src,
            segments,
        })
    }

    /// Number of segments (tiles) along this axis.
    pub fn tiles(&self) -> usize {
        self.segments.len()
    }

    /// Whether every segment reads the identical full-window source
    /// (precondition for channel wrapping on this axis).
    pub fn is_replicated(&self) -> bool {
        let window = self.src_extent.min(self.dst_extent);
        self.segments.iter().all(|s| {
            s.src_start == 0 && (s.len == window || s.dst_start + s.len == self.dst_extent)
        }) && self
            .segments
            .first()
            .map(|s| s.len == window)
            .unwrap_or(true)
    }

    /// Verifies the partition invariant: destination segments are
    /// consecutive, non-overlapping and cover `0..dst_extent`; source
    /// windows stay in bounds.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] on any violation.
    pub fn verify(&self) -> Result<(), EpitomeError> {
        let mut cursor = 0usize;
        for (i, s) in self.segments.iter().enumerate() {
            if s.dst_start != cursor {
                return Err(EpitomeError::plan(format!(
                    "segment {i} starts at {} but cursor is {cursor}",
                    s.dst_start
                )));
            }
            if s.len == 0 {
                return Err(EpitomeError::plan(format!("segment {i} has zero length")));
            }
            if s.src_start + s.len > self.src_extent {
                return Err(EpitomeError::plan(format!(
                    "segment {i} source window [{}, {}) exceeds extent {}",
                    s.src_start,
                    s.src_start + s.len,
                    self.src_extent
                )));
            }
            cursor += s.len;
        }
        if cursor != self.dst_extent {
            return Err(EpitomeError::plan(format!(
                "segments cover {cursor} of {} destination indices",
                self.dst_extent
            )));
        }
        Ok(())
    }
}

/// One 4-D patch: the cartesian product of one segment per axis.
///
/// Axis order matches tensor layout: `[cout, cin, h, w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Patch {
    /// Per-axis destination start `[cout, cin, kh, kw]`.
    pub dst: [usize; 4],
    /// Per-axis source start in the epitome `[cout_e, cin_e, h, w]`.
    pub src: [usize; 4],
    /// Per-axis lengths.
    pub size: [usize; 4],
}

impl Patch {
    /// Number of weight elements this patch covers.
    pub fn volume(&self) -> usize {
        self.size.iter().product()
    }
}

/// The full sampling plan for reconstructing one convolution weight from
/// one epitome.
///
/// # Example
///
/// ```
/// use epim_core::{ConvShape, EpitomeShape, SamplingPlan};
///
/// # fn main() -> Result<(), epim_core::EpitomeError> {
/// let conv = ConvShape::new(512, 256, 3, 3);
/// let epi = EpitomeShape::new(256, 256, 2, 2);
/// let plan = SamplingPlan::build(conv, epi)?;
/// // 2 output-channel tiles x 1 input tile x 2 x 2 spatial tiles.
/// assert_eq!(plan.patches().len(), 8);
/// plan.verify()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    conv: ConvShape,
    epitome: EpitomeShape,
    /// Per-axis plans in `[cout, cin, h, w]` order.
    dim_plans: [DimPlan; 4],
    patches: Vec<Patch>,
}

impl SamplingPlan {
    /// Builds the canonical plan: overlapping windows on the input-channel
    /// and spatial axes, replicated windows on the output-channel axis
    /// (which is what the paper's channel wrapping exploits).
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] for zero extents.
    pub fn build(conv: ConvShape, epitome: EpitomeShape) -> Result<Self, EpitomeError> {
        conv.validate()?;
        epitome.validate()?;
        let dim_plans = [
            DimPlan::build_replicated(conv.cout, epitome.cout)?,
            DimPlan::build(conv.cin, epitome.cin)?,
            DimPlan::build(conv.kh, epitome.h)?,
            DimPlan::build(conv.kw, epitome.w)?,
        ];
        Ok(Self::from_dim_plans(conv, epitome, dim_plans))
    }

    /// Builds a plan with *overlapping* (non-replicated) windows on every
    /// axis, including output channels. Such plans use the epitome's
    /// output-channel axis more fully but forfeit channel wrapping.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] for zero extents.
    pub fn build_overlapping(conv: ConvShape, epitome: EpitomeShape) -> Result<Self, EpitomeError> {
        conv.validate()?;
        epitome.validate()?;
        let dim_plans = [
            DimPlan::build(conv.cout, epitome.cout)?,
            DimPlan::build(conv.cin, epitome.cin)?,
            DimPlan::build(conv.kh, epitome.h)?,
            DimPlan::build(conv.kw, epitome.w)?,
        ];
        Ok(Self::from_dim_plans(conv, epitome, dim_plans))
    }

    fn from_dim_plans(conv: ConvShape, epitome: EpitomeShape, dim_plans: [DimPlan; 4]) -> Self {
        let mut patches = Vec::with_capacity(dim_plans.iter().map(DimPlan::tiles).product());
        for s0 in &dim_plans[0].segments {
            for s1 in &dim_plans[1].segments {
                for s2 in &dim_plans[2].segments {
                    for s3 in &dim_plans[3].segments {
                        patches.push(Patch {
                            dst: [s0.dst_start, s1.dst_start, s2.dst_start, s3.dst_start],
                            src: [s0.src_start, s1.src_start, s2.src_start, s3.src_start],
                            size: [s0.len, s1.len, s2.len, s3.len],
                        });
                    }
                }
            }
        }
        SamplingPlan {
            conv,
            epitome,
            dim_plans,
            patches,
        }
    }

    /// The convolution shape this plan reconstructs.
    pub fn conv(&self) -> ConvShape {
        self.conv
    }

    /// The epitome shape this plan samples from.
    pub fn epitome(&self) -> EpitomeShape {
        self.epitome
    }

    /// The patch schedule. Order is deterministic: output-channel tiles
    /// outermost, then input-channel, then spatial.
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }

    /// The per-axis plans in `[cout, cin, h, w]` order.
    pub fn dim_plans(&self) -> &[DimPlan; 4] {
        &self.dim_plans
    }

    /// Number of crossbar activation rounds this plan implies **per output
    /// pixel** (each patch engages the crossbars once — paper §4.1).
    pub fn activation_rounds(&self) -> usize {
        self.patches.len()
    }

    /// Verifies the plan invariants:
    /// every destination element covered by exactly one patch (checked via
    /// the per-axis partition property) and all source windows in bounds.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::PlanMismatch`] on any violation.
    pub fn verify(&self) -> Result<(), EpitomeError> {
        for dp in &self.dim_plans {
            dp.verify()?;
        }
        let covered: usize = self.patches.iter().map(Patch::volume).sum();
        if covered != self.conv.params() {
            return Err(EpitomeError::plan(format!(
                "patches cover {covered} of {} weight elements",
                self.conv.params()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_plan_exact_fit_single_segment() {
        let p = DimPlan::build(4, 4).unwrap();
        assert_eq!(p.tiles(), 1);
        assert_eq!(
            p.segments[0],
            DimSegment {
                dst_start: 0,
                src_start: 0,
                len: 4
            }
        );
        p.verify().unwrap();
    }

    #[test]
    fn dim_plan_source_larger_than_dest() {
        // Epitome axis longer than kernel axis: window = dst, one tile.
        let p = DimPlan::build(3, 5).unwrap();
        assert_eq!(p.tiles(), 1);
        assert_eq!(p.segments[0].len, 3);
        p.verify().unwrap();
    }

    #[test]
    fn dim_plan_compression_overlapping_windows() {
        // dst 10 from src 4: window 4, tiles ceil(10/4) = 3, positions 1 ->
        // all src at 0. With src 6: window 6? no, window=min(6,10)=6,
        // tiles 2, positions 1.
        let p = DimPlan::build(10, 4).unwrap();
        assert_eq!(p.tiles(), 3);
        p.verify().unwrap();
        assert_eq!(p.segments[2].len, 2); // tail segment

        // src 5, dst 12: window 5, tiles 3, positions 1 -> src all 0.
        let p = DimPlan::build(12, 5).unwrap();
        assert_eq!(p.tiles(), 3);
        p.verify().unwrap();
    }

    #[test]
    fn dim_plan_spreads_tail_source_offsets() {
        // dst 9 from src 5: window 5, two tiles (5 + 4). The tail segment
        // has 2 admissible positions and lands at offset 1, overlapping the
        // first window on indices 1..5 — nonuniform repetition.
        let p = DimPlan::build(9, 5).unwrap();
        assert_eq!(p.tiles(), 2);
        assert_eq!(p.segments[0].src_start, 0);
        assert_eq!(p.segments[1].src_start, 1);
        p.verify().unwrap();
    }

    #[test]
    fn replicated_plan_is_detected() {
        let p = DimPlan::build_replicated(8, 4).unwrap();
        assert!(p.is_replicated());
        assert_eq!(p.tiles(), 2);
        p.verify().unwrap();
    }

    #[test]
    fn zero_extents_rejected() {
        assert!(DimPlan::build(0, 4).is_err());
        assert!(DimPlan::build(4, 0).is_err());
        assert!(DimPlan::build_replicated(0, 1).is_err());
    }

    #[test]
    fn verify_catches_corruption() {
        let mut p = DimPlan::build(8, 4).unwrap();
        p.segments[1].dst_start = 5;
        assert!(p.verify().is_err());

        let mut p = DimPlan::build(8, 4).unwrap();
        p.segments[1].src_start = 3; // 3 + 4 > 4
        assert!(p.verify().is_err());

        let mut p = DimPlan::build(8, 4).unwrap();
        p.segments.pop();
        assert!(p.verify().is_err());
    }

    #[test]
    fn paper_uniform_epitome_plan() {
        // 512x256x3x3 conv from 1024x256 epitome (256 cout, 256 cin, 2x2).
        let conv = ConvShape::new(512, 256, 3, 3);
        let epi = EpitomeShape::new(256, 256, 2, 2);
        let plan = SamplingPlan::build(conv, epi).unwrap();
        plan.verify().unwrap();
        // cout: 2 tiles; cin: 1; h: 2 (3 from 2); w: 2.
        // One factor per dimension: cout 2, cin 1, h 2 (3 from 2), w 2.
        assert_eq!(
            plan.activation_rounds(),
            [2, 1, 2, 2].iter().product::<usize>()
        );
    }

    #[test]
    fn patch_volumes_sum_to_conv_params() {
        let conv = ConvShape::new(96, 48, 3, 3);
        let epi = EpitomeShape::new(32, 24, 2, 3);
        let plan = SamplingPlan::build(conv, epi).unwrap();
        plan.verify().unwrap();
        let covered: usize = plan.patches().iter().map(Patch::volume).sum();
        assert_eq!(covered, conv.params());
    }

    #[test]
    fn overlapping_variant_differs_on_cout_axis() {
        let conv = ConvShape::new(8, 4, 3, 3);
        let epi = EpitomeShape::new(4, 4, 3, 3);
        let rep = SamplingPlan::build(conv, epi).unwrap();
        let ovl = SamplingPlan::build_overlapping(conv, epi).unwrap();
        assert!(rep.dim_plans()[0].is_replicated());
        rep.verify().unwrap();
        ovl.verify().unwrap();
        assert_eq!(rep.activation_rounds(), ovl.activation_rounds());
    }

    #[test]
    fn identity_epitome_single_patch() {
        // Epitome same shape as conv: exactly one patch, zero offsets.
        let conv = ConvShape::new(16, 8, 3, 3);
        let epi = EpitomeShape::new(16, 8, 3, 3);
        let plan = SamplingPlan::build(conv, epi).unwrap();
        assert_eq!(plan.activation_rounds(), 1);
        let p = plan.patches()[0];
        assert_eq!(p.dst, [0, 0, 0, 0]);
        assert_eq!(p.src, [0, 0, 0, 0]);
        assert_eq!(p.size, [16, 8, 3, 3]);
    }
}
