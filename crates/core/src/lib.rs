//! # epim-core
//!
//! The **epitome** operator from *EPIM: Efficient Processing-In-Memory
//! Accelerators based on Epitome* (DAC 2024).
//!
//! An epitome is a compact 4-D parameter tensor `E` together with a sampler
//! `τ` that repeatedly extracts small, possibly overlapping patches
//!
//! ```text
//! E_s = E[p:p+w, q:q+h, c_in:c_in+β1, c_out:c_out+β2]     (paper Eq. 1)
//! ```
//!
//! and concatenates them until the patches tile a full convolution weight
//! `(C_out, C_in, KH, KW)`. Because patches may *overlap* inside the
//! epitome, the epitome holds far fewer parameters than the convolution it
//! reconstructs — which is exactly what a memristor-crossbar PIM accelerator
//! needs, since every weight must be resident on-chip before inference.
//!
//! This crate provides:
//!
//! - [`ConvShape`] / [`EpitomeShape`]: shape vocabulary.
//! - [`SamplingPlan`]: the deterministic patch schedule produced by the
//!   sampler, with the invariant that destination patches **partition** the
//!   convolution weight while source windows may overlap.
//! - [`Epitome`]: the parameter tensor plus its plan; reconstruction into a
//!   convolution weight, repetition (overlap-frequency) maps used by
//!   epitome-aware quantization, and channel-wrapping analysis.
//! - [`EpitomeDesigner`]: legalizes epitome shapes to integral multiples of
//!   the crossbar geometry (paper §4.1) and generates per-layer candidate
//!   ladders for the evolutionary search.
//!
//! ## Example
//!
//! ```
//! use epim_core::{ConvShape, EpitomeDesigner, Epitome};
//!
//! # fn main() -> Result<(), epim_core::EpitomeError> {
//! // Replace a 512x256x3x3 convolution with a 1024x256 epitome
//! // (c_in*p*q = 1024 rows, c_out = 256), the paper's uniform setting.
//! let conv = ConvShape::new(512, 256, 3, 3);
//! let designer = EpitomeDesigner::new(128, 128);
//! let spec = designer.design(conv, 1024, 256)?;
//! let epitome = Epitome::zeros(spec);
//! let w = epitome.reconstruct()?;
//! assert_eq!(w.shape(), &[512, 256, 3, 3]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod designer;
mod epitome;
mod error;
mod metrics;
mod plan;
mod shapes;
mod wrap;

pub use designer::EpitomeDesigner;
pub use epitome::{Epitome, EpitomeSpec};
pub use error::EpitomeError;
pub use metrics::{CompressionReport, MappedMatrix};
pub use plan::{DimPlan, DimSegment, Patch, SamplingPlan};
pub use shapes::{ConvShape, EpitomeShape};
pub use wrap::{wrapping_factor, ChannelWrapping};
