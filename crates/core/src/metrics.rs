//! Compression accounting shared across the workspace.

use crate::{ConvShape, EpitomeShape, EpitomeSpec};
use serde::{Deserialize, Serialize};

/// The matrix a weight tensor maps to on memristor crossbars: input
/// channels × kernel window on the word lines, output channels on the bit
/// lines (paper §4.1, following MNSIM's mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MappedMatrix {
    /// Word-line rows.
    pub rows: usize,
    /// Bit-line columns (before bit-slicing).
    pub cols: usize,
}

impl MappedMatrix {
    /// Creates a mapped matrix directly.
    pub fn new(rows: usize, cols: usize) -> Self {
        MappedMatrix { rows, cols }
    }

    /// The matrix a convolution maps to.
    pub fn from_conv(conv: ConvShape) -> Self {
        MappedMatrix {
            rows: conv.matrix_rows(),
            cols: conv.matrix_cols(),
        }
    }

    /// The matrix an epitome maps to.
    pub fn from_epitome(shape: EpitomeShape) -> Self {
        MappedMatrix {
            rows: shape.matrix_rows(),
            cols: shape.matrix_cols(),
        }
    }

    /// Number of matrix cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl std::fmt::Display for MappedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Parameter-level compression summary for one epitome replacement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Parameters in the original convolution.
    pub conv_params: usize,
    /// Parameters in the epitome.
    pub epitome_params: usize,
    /// `conv_params / epitome_params`.
    pub rate: f64,
}

impl CompressionReport {
    /// Builds the report for a spec.
    pub fn for_spec(spec: &EpitomeSpec) -> Self {
        let conv_params = spec.conv().params();
        let epitome_params = spec.shape().params();
        CompressionReport {
            conv_params,
            epitome_params,
            rate: conv_params as f64 / epitome_params as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpitomeSpec;

    #[test]
    fn mapped_matrix_from_shapes() {
        let conv = ConvShape::new(512, 256, 3, 3);
        let m = MappedMatrix::from_conv(conv);
        assert_eq!((m.rows, m.cols), (2304, 512));
        assert_eq!(m.cells(), 2304 * 512);

        let e = EpitomeShape::new(256, 256, 2, 2);
        let me = MappedMatrix::from_epitome(e);
        assert_eq!((me.rows, me.cols), (1024, 256));
        assert_eq!(me.to_string(), "1024x256");
    }

    #[test]
    fn compression_report_consistent() {
        let spec = EpitomeSpec::new(
            ConvShape::new(512, 256, 3, 3),
            EpitomeShape::new(256, 256, 2, 2),
        )
        .unwrap();
        let r = CompressionReport::for_spec(&spec);
        assert_eq!(r.conv_params, 512 * 256 * 9);
        assert_eq!(r.epitome_params, 256 * 256 * 4);
        assert!((r.rate - spec.param_compression()).abs() < 1e-12);
        assert!(r.rate > 4.0);
    }
}
