//! Output channel wrapping (paper §5.3).
//!
//! When the sampling plan replicates the same source window across the
//! output-channel axis, the reconstructed weight satisfies the translation
//! invariance of Eq. 8: `W[x, :, :, :] = W[x + c, :, :, :]`. The output
//! feature map then satisfies Eq. 9, so a PIM accelerator can compute just
//! `c` channels and replicate the rest — cutting output-buffer writes by
//! the wrapping factor `r`.

use crate::SamplingPlan;
use serde::{Deserialize, Serialize};

/// Channel-wrapping analysis of a sampling plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelWrapping {
    /// Wrapping factor `r`: number of identical output-channel blocks.
    /// `1` means wrapping is not applicable.
    pub factor: usize,
    /// The block size `c` (output channels computed per round).
    pub block: usize,
}

impl ChannelWrapping {
    /// Whether wrapping actually saves anything.
    pub fn is_effective(&self) -> bool {
        self.factor > 1
    }
}

/// Analyzes a plan for output channel wrapping.
///
/// Wrapping applies when the output-channel axis is tiled into more than
/// one block, every block reads the identical source window, and all
/// blocks are full length (so Eq. 8 holds exactly).
///
/// # Example
///
/// ```
/// use epim_core::{ConvShape, EpitomeShape, SamplingPlan, wrapping_factor};
///
/// # fn main() -> Result<(), epim_core::EpitomeError> {
/// let plan = SamplingPlan::build(
///     ConvShape::new(512, 256, 3, 3),
///     EpitomeShape::new(256, 256, 2, 2),
/// )?;
/// let w = wrapping_factor(&plan);
/// assert_eq!(w.factor, 2);
/// assert_eq!(w.block, 256);
/// # Ok(())
/// # }
/// ```
pub fn wrapping_factor(plan: &SamplingPlan) -> ChannelWrapping {
    let cout_plan = &plan.dim_plans()[0];
    let tiles = cout_plan.tiles();
    if tiles <= 1 {
        return ChannelWrapping {
            factor: 1,
            block: cout_plan.dst_extent,
        };
    }
    let first = cout_plan.segments[0];
    let uniform = cout_plan
        .segments
        .iter()
        .all(|s| s.src_start == first.src_start && s.len == first.len);
    if uniform {
        ChannelWrapping {
            factor: tiles,
            block: first.len,
        }
    } else {
        ChannelWrapping {
            factor: 1,
            block: cout_plan.dst_extent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
    use epim_tensor::{init, rng};

    #[test]
    fn exact_division_wraps() {
        let plan = SamplingPlan::build(
            ConvShape::new(512, 4, 3, 3),
            EpitomeShape::new(128, 4, 3, 3),
        )
        .unwrap();
        let w = wrapping_factor(&plan);
        assert_eq!(w.factor, 4);
        assert_eq!(w.block, 128);
        assert!(w.is_effective());
    }

    #[test]
    fn single_tile_does_not_wrap() {
        let plan = SamplingPlan::build(ConvShape::new(64, 4, 3, 3), EpitomeShape::new(64, 4, 3, 3))
            .unwrap();
        let w = wrapping_factor(&plan);
        assert_eq!(w.factor, 1);
        assert!(!w.is_effective());
    }

    #[test]
    fn ragged_tail_does_not_wrap() {
        // cout 10 from cout_e 4: blocks 4,4,2 — last block differs, Eq. 8
        // does not hold for all x, so wrapping must be rejected.
        let plan = SamplingPlan::build(ConvShape::new(10, 4, 3, 3), EpitomeShape::new(4, 4, 3, 3))
            .unwrap();
        assert_eq!(wrapping_factor(&plan).factor, 1);
    }

    #[test]
    fn wrapped_weight_satisfies_translation_invariance() {
        // Direct check of paper Eq. 8 on a reconstructed weight.
        let spec =
            EpitomeSpec::new(ConvShape::new(12, 6, 3, 3), EpitomeShape::new(4, 6, 3, 3)).unwrap();
        let wrap = wrapping_factor(spec.plan());
        assert_eq!(wrap.factor, 3);
        let mut r = rng::seeded(7);
        let data = init::uniform(&spec.shape().dims(), -1.0, 1.0, &mut r);
        let epi = Epitome::from_tensor(spec, data).unwrap();
        let w = epi.reconstruct().unwrap();
        let c = wrap.block;
        for x in 0..(wrap.factor - 1) * c {
            for ci in 0..6 {
                for y in 0..3 {
                    for xx in 0..3 {
                        assert_eq!(w.at(&[x, ci, y, xx]), w.at(&[x + c, ci, y, xx]));
                    }
                }
            }
        }
    }

    #[test]
    fn overlapping_cout_plan_rejected() {
        // A plan built with overlapping cout windows whose offsets differ
        // cannot wrap.
        let plan = SamplingPlan::build_overlapping(
            ConvShape::new(9, 4, 3, 3),
            EpitomeShape::new(5, 4, 3, 3),
        )
        .unwrap();
        // Tail segment offset differs from 0 (spread), so not uniform.
        assert_eq!(wrapping_factor(&plan).factor, 1);
    }
}
