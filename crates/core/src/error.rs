use std::error::Error;
use std::fmt;

use epim_tensor::TensorError;

/// Error type for epitome construction, planning and reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpitomeError {
    /// The epitome shape cannot reconstruct the requested convolution
    /// (some extent is zero, or a window exceeds the epitome extent).
    InvalidGeometry {
        /// What was wrong.
        what: String,
    },
    /// A sampling plan was applied to a tensor of the wrong shape.
    PlanMismatch {
        /// What was wrong.
        what: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for EpitomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpitomeError::InvalidGeometry { what } => write!(f, "invalid epitome geometry: {what}"),
            EpitomeError::PlanMismatch { what } => write!(f, "sampling plan mismatch: {what}"),
            EpitomeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for EpitomeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EpitomeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for EpitomeError {
    fn from(e: TensorError) -> Self {
        EpitomeError::Tensor(e)
    }
}

impl EpitomeError {
    /// Convenience constructor for [`EpitomeError::InvalidGeometry`].
    pub fn geometry(what: impl Into<String>) -> Self {
        EpitomeError::InvalidGeometry { what: what.into() }
    }

    /// Convenience constructor for [`EpitomeError::PlanMismatch`].
    pub fn plan(what: impl Into<String>) -> Self {
        EpitomeError::PlanMismatch { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            EpitomeError::geometry("zero extent"),
            EpitomeError::plan("wrong tensor"),
            EpitomeError::Tensor(TensorError::invalid("x")),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let te = TensorError::invalid("boom");
        let ee: EpitomeError = te.clone().into();
        assert!(std::error::Error::source(&ee).is_some());
        assert_eq!(ee, EpitomeError::Tensor(te));
    }
}
