use crate::EpitomeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a convolution weight `(C_out, C_in, KH, KW)`.
///
/// # Example
///
/// ```
/// let c = epim_core::ConvShape::new(512, 256, 3, 3);
/// assert_eq!(c.params(), 512 * 256 * 9);
/// assert_eq!(c.matrix_rows(), 256 * 9);
/// assert_eq!(c.matrix_cols(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Output channels.
    pub cout: usize,
    /// Input channels.
    pub cin: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

impl ConvShape {
    /// Creates a convolution shape.
    pub fn new(cout: usize, cin: usize, kh: usize, kw: usize) -> Self {
        ConvShape { cout, cin, kh, kw }
    }

    /// Total number of weight parameters.
    pub fn params(&self) -> usize {
        self.cout * self.cin * self.kh * self.kw
    }

    /// Rows of the matrix this weight maps to on crossbars
    /// (`c_in × kh × kw`, the word-line dimension — paper §4.1).
    pub fn matrix_rows(&self) -> usize {
        self.cin * self.kh * self.kw
    }

    /// Columns of the mapped matrix (`c_out`, the bit-line dimension).
    pub fn matrix_cols(&self) -> usize {
        self.cout
    }

    /// The shape as a tensor dims slice.
    pub fn dims(&self) -> [usize; 4] {
        [self.cout, self.cin, self.kh, self.kw]
    }

    /// Validates that no extent is zero.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] when any extent is zero.
    pub fn validate(&self) -> Result<(), EpitomeError> {
        if self.cout == 0 || self.cin == 0 || self.kh == 0 || self.kw == 0 {
            Err(EpitomeError::geometry(format!(
                "conv shape {self} has a zero extent"
            )))
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.cout, self.cin, self.kh, self.kw)
    }
}

/// Shape of an epitome tensor `(C_out_e, C_in_e, H_e, W_e)`.
///
/// Stored in the same axis order as convolution weights so that a patch's
/// source and destination offsets live in the same coordinate system. The
/// paper writes the epitome as `E[p, q, c_in, c_out]` (Eq. 1); only the
/// axis order differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EpitomeShape {
    /// Output-channel extent of the epitome (`β2` window limit).
    pub cout: usize,
    /// Input-channel extent of the epitome (`β1` window limit).
    pub cin: usize,
    /// Spatial height extent (`p` axis length).
    pub h: usize,
    /// Spatial width extent (`q` axis length).
    pub w: usize,
}

impl EpitomeShape {
    /// Creates an epitome shape.
    pub fn new(cout: usize, cin: usize, h: usize, w: usize) -> Self {
        EpitomeShape { cout, cin, h, w }
    }

    /// Total number of epitome parameters.
    pub fn params(&self) -> usize {
        self.cout * self.cin * self.h * self.w
    }

    /// Word-line rows when mapped to crossbars (`c_in_e × h × w`).
    ///
    /// Table 1 describes epitomes by this product, e.g. `1024x256` means
    /// `matrix_rows() == 1024` and `cout == 256`.
    pub fn matrix_rows(&self) -> usize {
        self.cin * self.h * self.w
    }

    /// Bit-line columns when mapped to crossbars (`c_out_e`).
    pub fn matrix_cols(&self) -> usize {
        self.cout
    }

    /// The shape as a tensor dims slice.
    pub fn dims(&self) -> [usize; 4] {
        [self.cout, self.cin, self.h, self.w]
    }

    /// Validates that no extent is zero.
    ///
    /// # Errors
    ///
    /// Returns [`EpitomeError::InvalidGeometry`] when any extent is zero.
    pub fn validate(&self) -> Result<(), EpitomeError> {
        if self.cout == 0 || self.cin == 0 || self.h == 0 || self.w == 0 {
            Err(EpitomeError::geometry(format!(
                "epitome shape {self} has a zero extent"
            )))
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for EpitomeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} (cout={}, cin={}, h={}, w={})",
            self.matrix_rows(),
            self.cout,
            self.cout,
            self.cin,
            self.h,
            self.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_accounting() {
        let c = ConvShape::new(64, 32, 3, 3);
        assert_eq!(c.params(), 64 * 32 * 9);
        assert_eq!(c.matrix_rows(), 288);
        assert_eq!(c.matrix_cols(), 64);
        assert_eq!(c.dims(), [64, 32, 3, 3]);
        assert!(c.validate().is_ok());
        assert!(ConvShape::new(0, 32, 3, 3).validate().is_err());
    }

    #[test]
    fn epitome_shape_accounting() {
        // The paper's uniform 1024x256 epitome: 256 x 2 x 2 input block.
        let e = EpitomeShape::new(256, 256, 2, 2);
        assert_eq!(e.matrix_rows(), 1024);
        assert_eq!(e.matrix_cols(), 256);
        assert_eq!(e.params(), 256 * 256 * 4);
        assert!(e.validate().is_ok());
        assert!(EpitomeShape::new(1, 0, 1, 1).validate().is_err());
    }

    #[test]
    fn display_contains_matrix_form() {
        let e = EpitomeShape::new(256, 256, 2, 2);
        assert!(e.to_string().starts_with("1024x256"));
    }
}
