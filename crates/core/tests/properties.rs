//! Property-based tests for the epitome invariants listed in DESIGN.md §5.

use epim_core::{
    wrapping_factor, ConvShape, DimPlan, Epitome, EpitomeDesigner, EpitomeShape, EpitomeSpec,
    SamplingPlan,
};
use epim_tensor::{init, rng, Tensor};
use proptest::prelude::*;

fn conv_strategy() -> impl Strategy<Value = ConvShape> {
    (1usize..=32, 1usize..=32, 1usize..=5, 1usize..=5)
        .prop_map(|(cout, cin, kh, kw)| ConvShape::new(cout, cin, kh, kw))
}

fn shape_pair() -> impl Strategy<Value = (ConvShape, EpitomeShape)> {
    conv_strategy().prop_flat_map(|conv| {
        (
            1usize..=conv.cout,
            1usize..=conv.cin,
            1usize..=conv.kh,
            1usize..=conv.kw,
        )
            .prop_map(move |(ecout, ecin, eh, ew)| (conv, EpitomeShape::new(ecout, ecin, eh, ew)))
    })
}

proptest! {
    /// Every legal dim plan partitions the destination axis.
    #[test]
    fn dim_plan_partitions(dst in 1usize..200, src in 1usize..200) {
        let p = DimPlan::build(dst, src).unwrap();
        p.verify().unwrap();
        let covered: usize = p.segments.iter().map(|s| s.len).sum();
        prop_assert_eq!(covered, dst);
    }

    /// Replicated plans partition too and are detected as replicated.
    #[test]
    fn replicated_plan_partitions(dst in 1usize..200, src in 1usize..200) {
        let p = DimPlan::build_replicated(dst, src).unwrap();
        p.verify().unwrap();
        prop_assert!(p.is_replicated());
    }

    /// Reconstruction totality: every conv weight element is written by
    /// exactly one patch, for arbitrary legal shape pairs.
    #[test]
    fn plan_partitions_conv_weight((conv, epi) in shape_pair()) {
        let plan = SamplingPlan::build(conv, epi).unwrap();
        plan.verify().unwrap();
        // Write a unique value through each patch and check full coverage:
        // seed the epitome with a sentinel and verify no destination keeps
        // its initial NaN.
        let spec = EpitomeSpec::with_plan(conv, epi, plan).unwrap();
        let e = Epitome::from_tensor(spec, Tensor::ones(&epi.dims())).unwrap();
        let w = e.reconstruct().unwrap();
        prop_assert!(w.data().iter().all(|&v| v == 1.0));
    }

    /// Repetition counts sum to the conv volume and are >= 1 wherever the
    /// epitome is actually used.
    #[test]
    fn repetition_mass_conserved((conv, epi) in shape_pair()) {
        let spec = EpitomeSpec::new(conv, epi).unwrap();
        let e = Epitome::zeros(spec);
        let reps = e.repetition_map();
        prop_assert_eq!(reps.sum() as usize, conv.params());
        prop_assert!(reps.min() >= 0.0);
    }

    /// Averaging init is a least-squares projection: its reconstruction
    /// error never exceeds that of the zero epitome (predicting 0
    /// everywhere) or of a constant-mean epitome.
    #[test]
    fn averaging_beats_trivial_epitomes((conv, epi) in shape_pair(), seed in 0u64..1000) {
        let spec = EpitomeSpec::new(conv, epi).unwrap();
        let mut r = rng::seeded(seed);
        let w = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let avg = Epitome::from_conv_weight(spec.clone(), &w).unwrap();
        let mse_avg = avg.reconstruct().unwrap().mse(&w).unwrap();
        let zero = Epitome::zeros(spec.clone());
        let mse_zero = zero.reconstruct().unwrap().mse(&w).unwrap();
        let mean = Epitome::from_tensor(
            spec,
            Tensor::full(&epi.dims(), w.mean()),
        ).unwrap();
        let mse_mean = mean.reconstruct().unwrap().mse(&w).unwrap();
        prop_assert!(mse_avg <= mse_zero + 1e-5);
        prop_assert!(mse_avg <= mse_mean + 1e-5);
    }

    /// Wrapping factor r implies the weight is r-periodic along cout.
    #[test]
    fn wrapping_implies_periodicity((conv, epi) in shape_pair(), seed in 0u64..1000) {
        let spec = EpitomeSpec::new(conv, epi).unwrap();
        let wrap = wrapping_factor(spec.plan());
        let mut r = rng::seeded(seed);
        let data = init::uniform(&epi.dims(), -1.0, 1.0, &mut r);
        let e = Epitome::from_tensor(spec, data).unwrap();
        let w = e.reconstruct().unwrap();
        if wrap.factor > 1 {
            let c = wrap.block;
            for co in 0..conv.cout - c {
                for ci in 0..conv.cin {
                    for y in 0..conv.kh {
                        for x in 0..conv.kw {
                            prop_assert_eq!(w.at(&[co, ci, y, x]), w.at(&[co + c, ci, y, x]));
                        }
                    }
                }
            }
        }
    }

    /// Designer output is always legal: plan verifies, shape within conv,
    /// alignment holds for sizes above one crossbar.
    #[test]
    fn designer_output_legal(
        conv in conv_strategy(),
        rows_frac in 1usize..=8,
        cout_frac in 1usize..=4,
    ) {
        let d = EpitomeDesigner::new(16, 16);
        let rows = (conv.matrix_rows() / rows_frac).max(1);
        let cout = (conv.cout / cout_frac).max(1);
        let spec = d.design(conv, rows, cout).unwrap();
        spec.plan().verify().unwrap();
        prop_assert!(spec.shape().matrix_rows() <= conv.matrix_rows().max(16));
        prop_assert!(spec.shape().cout <= conv.cout);
        if spec.shape().matrix_rows() >= 16 {
            prop_assert_eq!(spec.shape().matrix_rows() % 16, 0);
        }
        prop_assert!(spec.param_compression() >= 0.99);
    }

    /// Backprop adjointness: <reconstruct(e), dW> == <e, backprop(dW)>.
    #[test]
    fn reconstruct_backprop_adjoint((conv, epi) in shape_pair(), seed in 0u64..1000) {
        let spec = EpitomeSpec::new(conv, epi).unwrap();
        let mut r = rng::seeded(seed);
        let data = init::uniform(&epi.dims(), -1.0, 1.0, &mut r);
        let dw = init::uniform(&conv.dims(), -1.0, 1.0, &mut r);
        let e = Epitome::from_tensor(spec, data.clone()).unwrap();
        let lhs: f32 = e.reconstruct().unwrap().mul(&dw).unwrap().sum();
        let g = e.backprop_weight_grad(&dw).unwrap();
        let rhs: f32 = data.mul(&g).unwrap().sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs().max(rhs.abs())),
            "lhs {} rhs {}", lhs, rhs);
    }
}
