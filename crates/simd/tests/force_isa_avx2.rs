//! `EPIM_FORCE_ISA=avx2` selects the AVX2 arm where supported and never
//! widens past the request even on an AVX-512 host.

use epim_simd::{dispatch, isa, CpuFeatures, Isa, Simd, SimdOp};

struct LaneProbe;
impl SimdOp for LaneProbe {
    type Output = usize;
    fn eval<S: Simd>(self, _s: S) -> usize {
        S::LANES
    }
}

#[test]
fn forcing_avx2_clamps_to_host_support() {
    std::env::set_var("EPIM_FORCE_ISA", "avx2");
    let feats = CpuFeatures::get();
    if feats.supports(Isa::Avx2) {
        assert_eq!(isa(), Isa::Avx2);
        assert_eq!(dispatch(LaneProbe), 8);
    } else {
        assert_eq!(isa(), Isa::Scalar);
        assert_eq!(dispatch(LaneProbe), 1);
    }
}
