//! `EPIM_FORCE_ISA=scalar` must select the scalar arm on any host.
//!
//! Each force-ISA test lives in its own integration binary (own process):
//! the override is read once at the first probe, so it has to be in the
//! environment before anything touches the dispatcher.

use epim_simd::{dispatch, isa, Isa, Simd, SimdOp};

struct LaneProbe;
impl SimdOp for LaneProbe {
    type Output = usize;
    fn eval<S: Simd>(self, _s: S) -> usize {
        S::LANES
    }
}

#[test]
fn forcing_scalar_selects_the_scalar_arm() {
    std::env::set_var("EPIM_FORCE_ISA", "scalar");
    assert_eq!(isa(), Isa::Scalar);
    assert_eq!(dispatch(LaneProbe), 1);
}
