//! `EPIM_FORCE_ISA=avx512` selects the AVX-512 arm where supported and
//! clamps down (never up, never UB) everywhere else.

use epim_simd::{dispatch, isa, CpuFeatures, Isa, Simd, SimdOp};

struct LaneProbe;
impl SimdOp for LaneProbe {
    type Output = usize;
    fn eval<S: Simd>(self, _s: S) -> usize {
        S::LANES
    }
}

#[test]
fn forcing_avx512_clamps_to_host_support() {
    std::env::set_var("EPIM_FORCE_ISA", "avx512");
    let feats = CpuFeatures::get();
    let expect = feats.clamp(Isa::Avx512);
    assert_eq!(isa(), expect);
    let lanes = match expect {
        Isa::Scalar => 1,
        Isa::Avx2 => 8,
        Isa::Avx512 => 16,
    };
    assert_eq!(dispatch(LaneProbe), lanes);
    assert!(feats.supports(expect));
}
