//! Lanewise transcendental kernels shared by every ISA arm.
//!
//! The polynomial `exp` below is built exclusively from [`Simd`] trait ops
//! whose lane semantics are pinned (fused `mul_add`, `floor`, exponent-bias
//! `pow2i`), so the scalar arm and every vector arm produce **bitwise
//! identical** results by construction — the property the softmax bit-gates
//! rely on. Accuracy vs `libm` expf is ~2 ulp over the finite range.

use crate::vec::Simd;

const LOG2E: f32 = std::f32::consts::LOG2_E;
/// High/low split of ln(2) (Cephes): `r = x - n*LN2_HI - n*LN2_LO` is
/// exact enough that the polynomial argument stays in [-ln2/2, ln2/2].
/// Written as its exact binary value (2843/4096) on purpose: the hi part
/// being exactly representable is what makes `n*LN2_HI` exact.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
/// Degree-5 minimax polynomial for `exp(r) - 1 - r` / r² (Cephes expf,
/// coefficients kept digit-for-digit from the reference).
#[allow(clippy::excessive_precision)]
const P0: f32 = 1.987_569_15e-4;
const P1: f32 = 1.398_199_9e-3;
const P2: f32 = 8.333_452e-3;
const P3: f32 = 4.166_579_6e-2;
const P4: f32 = 1.666_666_5e-1;
const P5: f32 = 5.000_000_3e-1;
/// Input clamp: keeps `n = round(x/ln2)` within the exponent range
/// [`pow2i`](Simd::pow2i) can represent without table lookups. Values above
/// `MAX_X` saturate to `exp(MAX_X)` ≈ 1.7e38 (softmax feeds only x ≤ 0);
/// values below `MIN_X` flush to `exp(MIN_X)` ≈ 1.2e-38 instead of
/// denormals.
const MAX_X: f32 = 88.02283;
const MIN_X: f32 = -87.33655;

/// Lanewise `e^x`, bitwise identical across every [`Simd`] arm.
///
/// NaN lanes clamp to `exp(MIN_X)` (the pinned `max` semantics return the
/// clamp bound when the comparison is unordered); callers in this
/// workspace document finite inputs.
#[inline(always)]
pub fn exp<S: Simd>(s: S, x: S::V) -> S::V {
    let x = s.min(x, s.splat(MAX_X));
    let x = s.max(x, s.splat(MIN_X));
    // n = round(x / ln2), as floor(x*log2e + 0.5): floor lowers to the
    // same roundps mode in every arm (f32::round would not).
    let n = s.floor(s.mul_add(x, s.splat(LOG2E), s.splat(0.5)));
    let r = s.mul_add(n, s.splat(-LN2_HI), x);
    let r = s.mul_add(n, s.splat(-LN2_LO), r);
    let mut p = s.splat(P0);
    p = s.mul_add(p, r, s.splat(P1));
    p = s.mul_add(p, r, s.splat(P2));
    p = s.mul_add(p, r, s.splat(P3));
    p = s.mul_add(p, r, s.splat(P4));
    p = s.mul_add(p, r, s.splat(P5));
    let r2 = s.mul(r, r);
    let p = s.mul_add(p, r2, s.add(r, s.splat(1.0)));
    s.mul(p, s.pow2i(n))
}
