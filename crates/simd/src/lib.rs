//! # epim-simd — generic SIMD op framework
//!
//! One cached CPU-feature probe, one `SimdOp` trait, one dispatch macro:
//! an op is written **once** as a generic body over the [`Simd`] lane
//! trait, and [`dispatch`] monomorphizes it per ISA (AVX-512F, AVX2+FMA,
//! scalar) inside `#[target_feature]` wrappers so the whole inlined body —
//! not just leaf intrinsics — compiles with the vector ISA enabled.
//! AArch64 NEON later means one new [`Isa`] variant, one new token type
//! and one new match arm in [`isa_dispatch!`], not a new dispatch stack.
//!
//! ```
//! use epim_simd::{dispatch, Simd, SimdOp};
//!
//! struct Scale<'a> {
//!     data: &'a mut [f32],
//!     k: f32,
//! }
//!
//! impl SimdOp for Scale<'_> {
//!     type Output = ();
//!     #[inline(always)]
//!     fn eval<S: Simd>(self, s: S) {
//!         let (n, kv) = (self.data.len(), s.splat(self.k));
//!         let p = self.data.as_mut_ptr();
//!         let mut i = 0;
//!         // SAFETY: i + LANES <= n on every vector iteration.
//!         unsafe {
//!             while i + S::LANES <= n {
//!                 s.store(p.add(i), s.mul(s.load(p.add(i)), kv));
//!                 i += S::LANES;
//!             }
//!         }
//!         while i < n {
//!             self.data[i] *= self.k;
//!             i += 1;
//!         }
//!     }
//! }
//!
//! let mut v = vec![1.0; 37];
//! dispatch(Scale { data: &mut v, k: 2.0 });
//! assert!(v.iter().all(|&x| x == 2.0));
//! ```
//!
//! The selected ISA comes from [`isa`]: a one-time feature probe plus the
//! `EPIM_FORCE_ISA={scalar,avx2,avx512}` override (clamped to host
//! support). [`dispatch_on`] runs an op under an explicitly requested arm
//! — the hook the bitwise property tests use to pin every vector arm
//! against the scalar reference on whatever host CI lands on.

mod features;
pub mod math;
pub mod slice;
mod vec;

pub use features::{isa, CpuFeatures, Isa};
#[cfg(target_arch = "x86_64")]
pub use vec::{Avx2Simd, Avx512Simd};
pub use vec::{ScalarSimd, Simd};

/// An operation written once, generically over the [`Simd`] lane trait.
///
/// Implementations should mark `eval` `#[inline(always)]` so the body —
/// and every trait op it calls — inlines into the `#[target_feature]`
/// dispatch wrapper and compiles with that ISA enabled.
pub trait SimdOp {
    /// Result of the operation.
    type Output;
    /// The generic body; `s` is the capability token proving the ISA.
    fn eval<S: Simd>(self, s: S) -> Self::Output;
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn run_avx512<Op: SimdOp>(op: Op) -> Op::Output {
    // SAFETY: the caller checked avx512f; the token inherits that proof.
    op.eval(Avx512Simd::new_unchecked())
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn run_avx2<Op: SimdOp>(op: Op) -> Op::Output {
    // SAFETY: the caller checked avx2+fma.
    op.eval(Avx2Simd::new_unchecked())
}

/// Run an op on the always-available scalar arm (the bitwise reference).
pub fn run_scalar<Op: SimdOp>(op: Op) -> Op::Output {
    op.eval(ScalarSimd)
}

/// The dispatch macro: monomorphize `$op` for the given [`Isa`] and run it
/// inside the matching `#[target_feature]` wrapper. Internal — the public
/// entry points are [`dispatch`] and [`dispatch_on`], which are the only
/// callers and uphold the "ISA is host-supported" safety contract.
macro_rules! isa_dispatch {
    ($isa:expr, $op:expr) => {{
        match $isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `$isa` comes from the cached probe (or is clamped to
            // it), so the required features are present.
            Isa::Avx512 => unsafe { run_avx512($op) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Isa::Avx2 => unsafe { run_avx2($op) },
            _ => run_scalar($op),
        }
    }};
}

/// Run `op` on the best host-supported ISA (honoring `EPIM_FORCE_ISA`).
pub fn dispatch<Op: SimdOp>(op: Op) -> Op::Output {
    isa_dispatch!(isa(), op)
}

/// Run `op` on a specific ISA arm, clamped to host support (requesting
/// AVX-512 on an AVX2-only machine runs the AVX2 arm, never UB). Property
/// tests iterate [`CpuFeatures::available`] through this to compare every
/// arm against [`run_scalar`] bitwise.
pub fn dispatch_on<Op: SimdOp>(requested: Isa, op: Op) -> Op::Output {
    isa_dispatch!(CpuFeatures::get().clamp(requested), op)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Returns the ISA the op body actually ran under, via LANES.
    struct LaneProbe;
    impl SimdOp for LaneProbe {
        type Output = usize;
        fn eval<S: Simd>(self, _s: S) -> usize {
            S::LANES
        }
    }

    fn lanes_of(isa: Isa) -> usize {
        match isa {
            Isa::Scalar => 1,
            Isa::Avx2 => 8,
            Isa::Avx512 => 16,
        }
    }

    #[test]
    fn dispatch_runs_the_effective_isa() {
        assert_eq!(dispatch(LaneProbe), lanes_of(isa()));
    }

    #[test]
    fn dispatch_on_selects_each_available_arm() {
        let feats = CpuFeatures::get();
        for isa in feats.available() {
            assert_eq!(dispatch_on(isa, LaneProbe), lanes_of(isa), "arm {isa:?}");
        }
        // Unsupported requests clamp downward instead of faulting.
        let clamped = feats.clamp(Isa::Avx512);
        assert!(feats.supports(clamped));
        assert_eq!(dispatch_on(Isa::Avx512, LaneProbe), lanes_of(clamped));
    }

    /// Elementwise kernel exercising most trait ops; used to pin every
    /// vector arm to the scalar arm bitwise.
    struct OpSoup<'a> {
        src: &'a [f32],
        dst: &'a mut [f32],
    }
    impl SimdOp for OpSoup<'_> {
        type Output = ();
        #[inline(always)]
        fn eval<S: Simd>(self, s: S) {
            let n = self.dst.len();
            let (sp, dp) = (self.src.as_ptr(), self.dst.as_mut_ptr());
            let half = s.splat(0.5);
            let one = s.splat(1.0);
            let lim = s.splat(3.0);
            let nlim = s.splat(-3.0);
            let mut i = 0;
            // SAFETY: i + LANES <= n; src and dst are both n long.
            unsafe {
                while i + S::LANES <= n {
                    let v = s.load(sp.add(i));
                    let sign = s.sign_bits(v);
                    let a = s.abs(v);
                    let r = s.trunc(a);
                    let frac = s.sub(a, r);
                    let bumped = s.select(s.ge(frac, half), s.add(r, one), r);
                    let q = s.or_bits(bumped, sign);
                    let q = s.min(s.max(q, nlim), lim);
                    let q = s.mul_add(q, half, s.floor(v));
                    s.store(dp.add(i), s.div(q, s.max(a, one)));
                    i += S::LANES;
                }
            }
            let s1 = ScalarSimd;
            while i < n {
                let v = self.src[i];
                let sign = s1.sign_bits(v);
                let a = s1.abs(v);
                let r = s1.trunc(a);
                let frac = s1.sub(a, r);
                let bumped = s1.select(s1.ge(frac, 0.5), s1.add(r, 1.0), r);
                let q = s1.or_bits(bumped, sign);
                let q = s1.min(s1.max(q, -3.0), 3.0);
                let q = s1.mul_add(q, 0.5, s1.floor(v));
                self.dst[i] = s1.div(q, s1.max(a, 1.0));
                i += 1;
            }
        }
    }

    fn soup_inputs() -> Vec<f32> {
        let mut v = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            7.25,
            -7.25,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-40,
            -1.0e-40,
            3.0,
            -3.0,
        ];
        // Odd length so every arm exercises its scalar tail.
        for i in 0..61 {
            v.push((i as f32 - 30.0) * 0.37);
        }
        v
    }

    #[test]
    fn every_arm_matches_scalar_bitwise_on_op_soup() {
        let src = soup_inputs();
        let mut want = vec![0.0; src.len()];
        run_scalar(OpSoup {
            src: &src,
            dst: &mut want,
        });
        for isa in CpuFeatures::get().available() {
            let mut got = vec![0.0; src.len()];
            dispatch_on(
                isa,
                OpSoup {
                    src: &src,
                    dst: &mut got,
                },
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "arm {isa:?} lane {i} in {}",
                    src[i]
                );
            }
        }
    }

    struct StridedLoad<'a> {
        src: &'a [f32],
        stride: usize,
        dst: &'a mut [f32],
    }
    impl SimdOp for StridedLoad<'_> {
        type Output = ();
        #[inline(always)]
        fn eval<S: Simd>(self, s: S) {
            assert!(self.dst.len() >= S::LANES);
            assert!(self.src.len() > (S::LANES - 1) * self.stride);
            // SAFETY: lengths asserted above.
            unsafe {
                let v = s.load_strided(self.src.as_ptr(), self.stride);
                s.store(self.dst.as_mut_ptr(), v);
            }
        }
    }

    #[test]
    fn load_strided_gathers_the_right_lanes() {
        let src: Vec<f32> = (0..512).map(|i| i as f32).collect();
        for stride in [1usize, 2, 3, 7, 29] {
            for isa in CpuFeatures::get().available() {
                let lanes = lanes_of(isa);
                let mut dst = vec![-1.0; lanes.max(1)];
                dispatch_on(
                    isa,
                    StridedLoad {
                        src: &src,
                        stride,
                        dst: &mut dst,
                    },
                );
                for (lane, &g) in dst.iter().take(lanes).enumerate() {
                    assert_eq!(g, (lane * stride) as f32, "arm {isa:?} stride {stride}");
                }
            }
        }
    }

    struct ExpSlice<'a> {
        src: &'a [f32],
        dst: &'a mut [f32],
    }
    impl SimdOp for ExpSlice<'_> {
        type Output = ();
        #[inline(always)]
        fn eval<S: Simd>(self, s: S) {
            let n = self.dst.len();
            let (sp, dp) = (self.src.as_ptr(), self.dst.as_mut_ptr());
            let mut i = 0;
            // SAFETY: i + LANES <= n; src and dst are both n long.
            unsafe {
                while i + S::LANES <= n {
                    s.store(dp.add(i), math::exp(s, s.load(sp.add(i))));
                    i += S::LANES;
                }
            }
            while i < n {
                self.dst[i] = math::exp(ScalarSimd, self.src[i]);
                i += 1;
            }
        }
    }

    #[test]
    fn exp_matches_scalar_arm_bitwise_and_libm_closely() {
        let mut src: Vec<f32> = (-4000..=400).map(|i| i as f32 * 0.025).collect();
        src.extend([0.0, -0.0, -104.0, 90.0, f32::MIN_POSITIVE, -1e-40]);
        let mut want = vec![0.0; src.len()];
        run_scalar(ExpSlice {
            src: &src,
            dst: &mut want,
        });
        for isa in CpuFeatures::get().available() {
            let mut got = vec![0.0; src.len()];
            dispatch_on(
                isa,
                ExpSlice {
                    src: &src,
                    dst: &mut got,
                },
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "arm {isa:?} exp({})", src[i]);
            }
        }
        // Accuracy vs libm over the well-inside-range part.
        for &x in src.iter().filter(|x| x.abs() <= 80.0) {
            let got = math::exp(ScalarSimd, x);
            let want = x.exp();
            let rel = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            assert!(rel <= 3e-7, "exp({x}) = {got}, libm {want}, rel {rel}");
        }
    }

    #[test]
    fn max_min_semantics_are_pinned() {
        let s = ScalarSimd;
        // Second operand wins ties: the documented maxps/minps behavior.
        assert_eq!(s.max(-0.0, 0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(s.max(0.0, -0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(s.min(-0.0, 0.0).to_bits(), 0.0f32.to_bits());
        // NaN in either operand yields b.
        assert_eq!(s.max(f32::NAN, 1.0), 1.0);
        assert!(s.max(1.0, f32::NAN).is_nan());
    }

    #[test]
    fn slice_helpers_match_plain_loops() {
        for isa in CpuFeatures::get().available() {
            struct Run<'a> {
                a: &'a mut [f32],
                b: &'a [f32],
            }
            impl SimdOp for Run<'_> {
                type Output = ();
                #[inline(always)]
                fn eval<S: Simd>(self, s: S) {
                    let mid = self.a.len() / 2;
                    let (lo, hi) = self.a.split_at_mut(mid);
                    slice::copy(s, &self.b[..mid], lo);
                    slice::add_assign(s, hi, &self.b[mid..self.b.len()]);
                    slice::add_splat(s, lo, 1.5);
                }
            }
            let b: Vec<f32> = (0..53).map(|i| i as f32 * 0.5).collect();
            let mut a = vec![2.0; 53];
            let mid = a.len() / 2;
            dispatch_on(isa, Run { a: &mut a, b: &b });
            for i in 0..mid {
                assert_eq!(a[i], b[i] + 1.5, "arm {isa:?} copy+add_splat idx {i}");
            }
            for i in mid..a.len() {
                assert_eq!(a[i], 2.0 + b[i], "arm {isa:?} add_assign idx {i}");
            }
        }
    }
}
