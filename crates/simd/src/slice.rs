//! Small vectorized slice primitives for use *inside* [`SimdOp`] bodies.
//!
//! These are generic over the [`Simd`] token and therefore inherit the
//! caller's ISA context; they are the building blocks the epitome
//! replay/accumulate loops monomorphize per arm. Scalar tails use plain
//! element ops, so every arm is bitwise identical (copies are copies and
//! lanewise adds at the same index order are the same add).
//!
//! [`SimdOp`]: crate::SimdOp

use crate::vec::Simd;

/// `dst[i] = src[i]` for `n` elements through raw pointers: vector-width
/// chunks, then two lanes at a time as raw `u64` moves, then one last lane.
///
/// The pair tail exists for the dominant caller (epitome patch replay),
/// which issues hundreds of thousands of 1-3 element runs: a
/// variable-length `copy_from_slice` pays a `memcpy` call per run and a
/// per-element loop pays a bounds check per lane, while a `u64` move is a
/// single instruction. Bit copies are value-preserving, so every arm stays
/// trivially bitwise equal.
///
/// # Safety
///
/// `src` must be valid for reads and `dst` for writes of `n` elements,
/// and the two ranges must not overlap. Callers that loop over many tiny
/// runs should prove bounds once for the whole batch (the point of the
/// raw-pointer form) rather than per run.
#[inline(always)]
pub unsafe fn copy_raw<S: Simd>(s: S, src: *const f32, dst: *mut f32, n: usize) {
    let mut i = 0;
    if S::LANES > 1 {
        while i + S::LANES <= n {
            s.store(dst.add(i), s.load(src.add(i)));
            i += S::LANES;
        }
    }
    while i + 2 <= n {
        dst.add(i)
            .cast::<u64>()
            .write_unaligned(src.add(i).cast::<u64>().read_unaligned());
        i += 2;
    }
    if i < n {
        *dst.add(i) = *src.add(i);
    }
}

/// `dst[i] = src[i]` over equal-length slices, vector-width chunks first.
#[inline(always)]
pub fn copy<S: Simd>(s: S, src: &[f32], dst: &mut [f32]) {
    let n = dst.len();
    assert_eq!(src.len(), n);
    // SAFETY: both ranges are exactly the n elements of distinct slices
    // (a &mut and a & slice cannot alias).
    unsafe { copy_raw(s, src.as_ptr(), dst.as_mut_ptr(), n) }
}

/// `dst[i] += src[i]` over equal-length slices.
#[inline(always)]
pub fn add_assign<S: Simd>(s: S, dst: &mut [f32], src: &[f32]) {
    let n = dst.len();
    assert_eq!(src.len(), n);
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    let mut i = 0;
    // SAFETY: i + LANES <= n and both slices are n long.
    unsafe {
        while i + S::LANES <= n {
            s.store(dp.add(i), s.add(s.load(dp.add(i)), s.load(sp.add(i))));
            i += S::LANES;
        }
    }
    while i < n {
        dst[i] += src[i];
        i += 1;
    }
}

/// `dst[i] += x` over the whole slice.
#[inline(always)]
pub fn add_splat<S: Simd>(s: S, dst: &mut [f32], x: f32) {
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let xv = s.splat(x);
    let mut i = 0;
    // SAFETY: i + LANES <= n.
    unsafe {
        while i + S::LANES <= n {
            s.store(dp.add(i), s.add(s.load(dp.add(i)), xv));
            i += S::LANES;
        }
    }
    while i < n {
        dst[i] += x;
        i += 1;
    }
}
