//! One-time cached CPU-feature probe and ISA selection.
//!
//! The probe runs once per process (`OnceLock`) and is the *only* place in
//! the workspace that is allowed to call `is_x86_feature_detected!`. The
//! selected ISA can be overridden with the `EPIM_FORCE_ISA` environment
//! variable (`scalar`, `avx2`, `avx512`); the override is read once at
//! first use and clamped to what the host actually supports, so forcing
//! `avx512` on an AVX2-only machine degrades to `avx2`, never to UB.

use std::sync::OnceLock;

/// Instruction-set tiers the dispatcher can select.
///
/// The tiers are cumulative capability levels, not raw feature bits:
/// [`Isa::Avx2`] means AVX2 **and** FMA (the micro-kernels fuse
/// multiply-adds), [`Isa::Avx512`] means AVX-512F. AArch64 NEON will be a
/// new variant + match arm here, not a new dispatch stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Portable one-lane arm; always available, and the bitwise reference
    /// every vector arm is gated against.
    Scalar,
    /// AVX2 + FMA (8 × f32 lanes).
    Avx2,
    /// AVX-512F (16 × f32 lanes).
    Avx512,
}

impl Isa {
    /// Human-readable name, matching the `EPIM_FORCE_ISA` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

/// Cached host capability snapshot plus the parsed `EPIM_FORCE_ISA`
/// override. Obtain via [`CpuFeatures::get`]; constructing it any other
/// way is deliberately impossible.
#[derive(Debug)]
pub struct CpuFeatures {
    avx2_fma: bool,
    avx512f: bool,
    forced: Option<Isa>,
}

impl CpuFeatures {
    /// The process-wide snapshot. Feature detection and the env-var read
    /// both happen exactly once, on the first call.
    pub fn get() -> &'static CpuFeatures {
        static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
        FEATURES.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            let (avx2_fma, avx512f) = (
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma"),
                std::arch::is_x86_feature_detected!("avx512f"),
            );
            #[cfg(not(target_arch = "x86_64"))]
            let (avx2_fma, avx512f) = (false, false);
            CpuFeatures {
                avx2_fma,
                avx512f,
                forced: parse_force_env(),
            }
        })
    }

    /// Whether the host can execute the given tier.
    pub fn supports(&self, isa: Isa) -> bool {
        match isa {
            Isa::Scalar => true,
            Isa::Avx2 => self.avx2_fma,
            Isa::Avx512 => self.avx512f,
        }
    }

    /// Step a requested tier down to the nearest one the host supports.
    pub fn clamp(&self, isa: Isa) -> Isa {
        match isa {
            Isa::Avx512 if self.avx512f => Isa::Avx512,
            Isa::Avx512 | Isa::Avx2 if self.avx2_fma => Isa::Avx2,
            _ => Isa::Scalar,
        }
    }

    /// Widest tier the host supports, ignoring any override.
    pub fn best(&self) -> Isa {
        if self.avx512f {
            Isa::Avx512
        } else if self.avx2_fma {
            Isa::Avx2
        } else {
            Isa::Scalar
        }
    }

    /// The tier [`crate::dispatch`] actually uses: the `EPIM_FORCE_ISA`
    /// override clamped to host support, or [`CpuFeatures::best`].
    pub fn effective(&self) -> Isa {
        match self.forced {
            Some(f) => self.clamp(f),
            None => self.best(),
        }
    }

    /// The parsed `EPIM_FORCE_ISA` override, if one was set (pre-clamp).
    pub fn forced(&self) -> Option<Isa> {
        self.forced
    }

    /// Every tier the host can execute, widest last. Tests iterate this to
    /// pin each vector arm against the scalar arm regardless of overrides.
    pub fn available(&self) -> Vec<Isa> {
        let mut isas = vec![Isa::Scalar];
        if self.avx2_fma {
            isas.push(Isa::Avx2);
        }
        if self.avx512f {
            isas.push(Isa::Avx512);
        }
        isas
    }
}

/// The ISA every `dispatch` call selects (cached probe + clamped override).
pub fn isa() -> Isa {
    CpuFeatures::get().effective()
}

fn parse_force_env() -> Option<Isa> {
    let raw = std::env::var("EPIM_FORCE_ISA").ok()?;
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" => None,
        "scalar" => Some(Isa::Scalar),
        "avx2" => Some(Isa::Avx2),
        "avx512" | "avx512f" => Some(Isa::Avx512),
        other => {
            eprintln!("epim-simd: ignoring unknown EPIM_FORCE_ISA value {other:?} (expected scalar|avx2|avx512)");
            None
        }
    }
}
