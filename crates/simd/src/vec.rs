//! The portable f32 lane trait and its per-ISA implementations.
//!
//! A [`Simd`] implementor is a zero-sized *capability token*: holding one
//! proves the corresponding instruction set is available on this CPU, so
//! all value operations are safe to call. Tokens are only constructed
//! inside the dispatch wrappers in `lib.rs` (via [`Simd::new_unchecked`])
//! after the feature probe, which is what makes the safe methods sound.
//!
//! # Pinned semantics
//!
//! Every operation is specified so that the scalar arm and the vector arms
//! produce **bitwise identical** lanes. Two cases need explicit rules
//! because `f32::max`/`f32::min` leave them to the whims of instruction
//! selection (the sign of a ±0 tie genuinely varies with inlining context):
//!
//! - `max(a, b)` is defined as `if a > b { a } else { b }` — the second
//!   operand wins ties (`max(-0.0, +0.0) == +0.0`, `max(+0.0, -0.0) == -0.0`)
//!   and NaN in either operand yields `b`. This is exactly one
//!   `maxps a, b` on x86, so the vector arms are a single instruction.
//! - `min(a, b)` is `if a < b { a } else { b }`, i.e. one `minps a, b`.
//!
//! Reductions that fold with `acc = max(v, acc)` therefore keep the
//! accumulator on ties, matching the scalar `f32::max` fold they replace
//! for all finite inputs.

#[allow(unused_imports)] // scalar-only builds don't touch the intrinsics
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Portable lane-group of `f32` values. See the module docs for the
/// soundness contract and the pinned tie/NaN semantics.
pub trait Simd: Copy {
    /// Vector of [`Simd::LANES`] f32 lanes.
    type V: Copy;
    /// Lane mask produced by comparisons, consumed by [`Simd::select`].
    type M: Copy;
    /// Number of f32 lanes per vector.
    const LANES: usize;

    /// Construct the capability token.
    ///
    /// # Safety
    /// The caller must guarantee the ISA this token stands for is
    /// supported by the running CPU (the dispatch wrappers check via
    /// [`crate::CpuFeatures`]).
    unsafe fn new_unchecked() -> Self;

    /// All lanes set to `x`.
    fn splat(self, x: f32) -> Self::V;

    /// Load `LANES` consecutive floats.
    ///
    /// # Safety
    /// `ptr..ptr + LANES` must be readable.
    unsafe fn load(self, ptr: *const f32) -> Self::V;

    /// Store `LANES` consecutive floats.
    ///
    /// # Safety
    /// `ptr..ptr + LANES` must be writable.
    unsafe fn store(self, ptr: *mut f32, v: Self::V);

    /// Load lanes `ptr[0], ptr[stride], …, ptr[(LANES-1)*stride]`.
    ///
    /// Strides 1 and 2 use contiguous loads plus shuffles; anything wider
    /// becomes a gather (x86) or scalar picks.
    ///
    /// # Safety
    /// `ptr..ptr + (LANES-1)*stride + 1` must be readable and
    /// `(LANES-1)*stride` must fit in `i32`.
    unsafe fn load_strided(self, ptr: *const f32, stride: usize) -> Self::V;

    /// Lanewise `a + b`.
    fn add(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a - b`.
    fn sub(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a * b`.
    fn mul(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `a / b`.
    fn div(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise fused `a * b + c` (single rounding in every arm).
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// Lanewise `if a > b { a } else { b }` (see module docs).
    fn max(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise `if a < b { a } else { b }` (see module docs).
    fn min(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise truncation toward zero.
    fn trunc(self, v: Self::V) -> Self::V;
    /// Lanewise floor (round toward −∞).
    fn floor(self, v: Self::V) -> Self::V;
    /// Lanewise `|v|` (clears the sign bit).
    fn abs(self, v: Self::V) -> Self::V;
    /// Lanewise sign bit isolated (`v & 0x8000_0000` as bits).
    fn sign_bits(self, v: Self::V) -> Self::V;
    /// Lanewise bitwise OR of the raw representations.
    fn or_bits(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lanewise ordered `a >= b` (false when either lane is NaN).
    fn ge(self, a: Self::V, b: Self::V) -> Self::M;
    /// Lanewise `if m { t } else { f }`.
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V;
    /// Lanewise `2^n` for integral-valued lanes `n` in `[-126, 127]`,
    /// built by shifting the biased exponent (no table, no rounding).
    fn pow2i(self, n: Self::V) -> Self::V;
}

/// One-lane portable arm; the bitwise ground truth for every vector arm.
/// Freely constructible — plain `f32` arithmetic needs no CPU capability.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarSimd;

impl Simd for ScalarSimd {
    type V = f32;
    type M = bool;
    const LANES: usize = 1;

    #[inline(always)]
    unsafe fn new_unchecked() -> Self {
        ScalarSimd
    }

    #[inline(always)]
    fn splat(self, x: f32) -> f32 {
        x
    }

    #[inline(always)]
    unsafe fn load(self, ptr: *const f32) -> f32 {
        *ptr
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32, v: f32) {
        *ptr = v;
    }

    #[inline(always)]
    unsafe fn load_strided(self, ptr: *const f32, _stride: usize) -> f32 {
        *ptr
    }

    #[inline(always)]
    fn add(self, a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline(always)]
    fn sub(self, a: f32, b: f32) -> f32 {
        a - b
    }

    #[inline(always)]
    fn mul(self, a: f32, b: f32) -> f32 {
        a * b
    }

    #[inline(always)]
    fn div(self, a: f32, b: f32) -> f32 {
        a / b
    }

    #[inline(always)]
    fn mul_add(self, a: f32, b: f32, c: f32) -> f32 {
        a.mul_add(b, c)
    }

    #[inline(always)]
    fn max(self, a: f32, b: f32) -> f32 {
        // Deliberately NOT f32::max: this comparison pins the ±0-tie and
        // NaN behavior to exactly what `maxps a, b` does.
        if a > b {
            a
        } else {
            b
        }
    }

    #[inline(always)]
    fn min(self, a: f32, b: f32) -> f32 {
        if a < b {
            a
        } else {
            b
        }
    }

    #[inline(always)]
    fn trunc(self, v: f32) -> f32 {
        v.trunc()
    }

    #[inline(always)]
    fn floor(self, v: f32) -> f32 {
        v.floor()
    }

    #[inline(always)]
    fn abs(self, v: f32) -> f32 {
        f32::from_bits(v.to_bits() & 0x7fff_ffff)
    }

    #[inline(always)]
    fn sign_bits(self, v: f32) -> f32 {
        f32::from_bits(v.to_bits() & 0x8000_0000)
    }

    #[inline(always)]
    fn or_bits(self, a: f32, b: f32) -> f32 {
        f32::from_bits(a.to_bits() | b.to_bits())
    }

    #[inline(always)]
    fn ge(self, a: f32, b: f32) -> bool {
        a >= b
    }

    #[inline(always)]
    fn select(self, m: bool, t: f32, f: f32) -> f32 {
        if m {
            t
        } else {
            f
        }
    }

    #[inline(always)]
    fn pow2i(self, n: f32) -> f32 {
        debug_assert!((-126.0..=127.0).contains(&n) && n == n.trunc());
        f32::from_bits(((n as i32 + 127) as u32) << 23)
    }
}

/// AVX2 + FMA arm: 8 × f32 lanes.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx2Simd(());

#[cfg(target_arch = "x86_64")]
impl Simd for Avx2Simd {
    type V = __m256;
    type M = __m256;
    const LANES: usize = 8;

    #[inline(always)]
    unsafe fn new_unchecked() -> Self {
        Avx2Simd(())
    }

    #[inline(always)]
    fn splat(self, x: f32) -> __m256 {
        unsafe { _mm256_set1_ps(x) }
    }

    #[inline(always)]
    unsafe fn load(self, ptr: *const f32) -> __m256 {
        _mm256_loadu_ps(ptr)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32, v: __m256) {
        _mm256_storeu_ps(ptr, v)
    }

    #[inline(always)]
    unsafe fn load_strided(self, ptr: *const f32, stride: usize) -> __m256 {
        debug_assert!((Self::LANES - 1) * stride <= i32::MAX as usize);
        match stride {
            1 => _mm256_loadu_ps(ptr),
            2 => {
                // Even-lane extraction from two contiguous loads: cheaper
                // than a gather for the stride the pooling kernels hit most.
                let v0 = _mm256_loadu_ps(ptr);
                let v1 = _mm256_loadu_ps(ptr.add(8));
                // [x0 x2 x8 x10 | x4 x6 x12 x14]
                let even = _mm256_shuffle_ps::<0b10_00_10_00>(v0, v1);
                let order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
                _mm256_permutevar8x32_ps(even, order)
            }
            _ => {
                let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
                let idx = _mm256_mullo_epi32(iota, _mm256_set1_epi32(stride as i32));
                _mm256_i32gather_ps::<4>(ptr, idx)
            }
        }
    }

    #[inline(always)]
    fn add(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_sub_ps(a, b) }
    }

    #[inline(always)]
    fn mul(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_mul_ps(a, b) }
    }

    #[inline(always)]
    fn div(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_div_ps(a, b) }
    }

    #[inline(always)]
    fn mul_add(self, a: __m256, b: __m256, c: __m256) -> __m256 {
        unsafe { _mm256_fmadd_ps(a, b, c) }
    }

    #[inline(always)]
    fn max(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_max_ps(a, b) }
    }

    #[inline(always)]
    fn min(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_min_ps(a, b) }
    }

    #[inline(always)]
    fn trunc(self, v: __m256) -> __m256 {
        unsafe { _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(v) }
    }

    #[inline(always)]
    fn floor(self, v: __m256) -> __m256 {
        unsafe { _mm256_round_ps::<{ _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC }>(v) }
    }

    #[inline(always)]
    fn abs(self, v: __m256) -> __m256 {
        unsafe { _mm256_andnot_ps(_mm256_set1_ps(-0.0), v) }
    }

    #[inline(always)]
    fn sign_bits(self, v: __m256) -> __m256 {
        unsafe { _mm256_and_ps(v, _mm256_set1_ps(-0.0)) }
    }

    #[inline(always)]
    fn or_bits(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_or_ps(a, b) }
    }

    #[inline(always)]
    fn ge(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_cmp_ps::<_CMP_GE_OQ>(a, b) }
    }

    #[inline(always)]
    fn select(self, m: __m256, t: __m256, f: __m256) -> __m256 {
        unsafe { _mm256_blendv_ps(f, t, m) }
    }

    #[inline(always)]
    fn pow2i(self, n: __m256) -> __m256 {
        unsafe {
            let i = _mm256_cvtps_epi32(n);
            let e = _mm256_slli_epi32::<23>(_mm256_add_epi32(i, _mm256_set1_epi32(127)));
            _mm256_castsi256_ps(e)
        }
    }
}

/// AVX-512F arm: 16 × f32 lanes.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, Debug)]
pub struct Avx512Simd(());

#[cfg(target_arch = "x86_64")]
impl Simd for Avx512Simd {
    type V = __m512;
    type M = __mmask16;
    const LANES: usize = 16;

    #[inline(always)]
    unsafe fn new_unchecked() -> Self {
        Avx512Simd(())
    }

    #[inline(always)]
    fn splat(self, x: f32) -> __m512 {
        unsafe { _mm512_set1_ps(x) }
    }

    #[inline(always)]
    unsafe fn load(self, ptr: *const f32) -> __m512 {
        _mm512_loadu_ps(ptr)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32, v: __m512) {
        _mm512_storeu_ps(ptr, v)
    }

    #[inline(always)]
    unsafe fn load_strided(self, ptr: *const f32, stride: usize) -> __m512 {
        debug_assert!((Self::LANES - 1) * stride <= i32::MAX as usize);
        match stride {
            1 => _mm512_loadu_ps(ptr),
            2 => {
                let v0 = _mm512_loadu_ps(ptr);
                let v1 = _mm512_loadu_ps(ptr.add(16));
                let idx =
                    _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
                _mm512_permutex2var_ps(v0, idx, v1)
            }
            _ => {
                let iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
                let idx = _mm512_mullo_epi32(iota, _mm512_set1_epi32(stride as i32));
                _mm512_i32gather_ps::<4>(idx, ptr)
            }
        }
    }

    #[inline(always)]
    fn add(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_add_ps(a, b) }
    }

    #[inline(always)]
    fn sub(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_sub_ps(a, b) }
    }

    #[inline(always)]
    fn mul(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_mul_ps(a, b) }
    }

    #[inline(always)]
    fn div(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_div_ps(a, b) }
    }

    #[inline(always)]
    fn mul_add(self, a: __m512, b: __m512, c: __m512) -> __m512 {
        unsafe { _mm512_fmadd_ps(a, b, c) }
    }

    #[inline(always)]
    fn max(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_max_ps(a, b) }
    }

    #[inline(always)]
    fn min(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_min_ps(a, b) }
    }

    #[inline(always)]
    fn trunc(self, v: __m512) -> __m512 {
        unsafe { _mm512_roundscale_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(v) }
    }

    #[inline(always)]
    fn floor(self, v: __m512) -> __m512 {
        unsafe { _mm512_roundscale_ps::<{ _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC }>(v) }
    }

    #[inline(always)]
    fn abs(self, v: __m512) -> __m512 {
        unsafe {
            _mm512_castsi512_ps(_mm512_and_si512(
                _mm512_castps_si512(v),
                _mm512_set1_epi32(0x7fff_ffff),
            ))
        }
    }

    #[inline(always)]
    fn sign_bits(self, v: __m512) -> __m512 {
        unsafe {
            _mm512_castsi512_ps(_mm512_and_si512(
                _mm512_castps_si512(v),
                _mm512_set1_epi32(i32::MIN),
            ))
        }
    }

    #[inline(always)]
    fn or_bits(self, a: __m512, b: __m512) -> __m512 {
        unsafe {
            _mm512_castsi512_ps(_mm512_or_si512(
                _mm512_castps_si512(a),
                _mm512_castps_si512(b),
            ))
        }
    }

    #[inline(always)]
    fn ge(self, a: __m512, b: __m512) -> __mmask16 {
        unsafe { _mm512_cmp_ps_mask::<_CMP_GE_OQ>(a, b) }
    }

    #[inline(always)]
    fn select(self, m: __mmask16, t: __m512, f: __m512) -> __m512 {
        unsafe { _mm512_mask_blend_ps(m, f, t) }
    }

    #[inline(always)]
    fn pow2i(self, n: __m512) -> __m512 {
        unsafe {
            let i = _mm512_cvtps_epi32(n);
            let e = _mm512_slli_epi32::<23>(_mm512_add_epi32(i, _mm512_set1_epi32(127)));
            _mm512_castsi512_ps(e)
        }
    }
}
