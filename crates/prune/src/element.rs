//! Element-wise (unstructured) magnitude pruning — used for the paper's
//! "Epitome + Pruning" row of Table 3, where "basic element-wise pruning
//! methods" are merged with the epitome.

use crate::PruneError;
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Accounting of one element-pruning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElementPruneReport {
    /// Elements before pruning.
    pub params_before: usize,
    /// Nonzero elements after pruning.
    pub params_after: usize,
    /// Parameter compression rate (`before / after`), assuming sparse
    /// storage of the survivors (the paper compares *parameter*
    /// compression rates in Table 3 because crossbar rates are ill-defined
    /// for unstructured sparsity).
    pub compression: f64,
}

/// Zeroes the `ratio` smallest-magnitude elements of a tensor.
///
/// # Errors
///
/// Returns [`PruneError::InvalidParameter`] for a ratio outside `[0, 1)`
/// or an empty tensor.
pub fn element_prune(t: &Tensor, ratio: f64) -> Result<(Tensor, ElementPruneReport), PruneError> {
    if !(0.0..1.0).contains(&ratio) {
        return Err(PruneError::invalid(format!("ratio {ratio} outside [0, 1)")));
    }
    if t.is_empty() {
        return Err(PruneError::invalid("cannot prune an empty tensor"));
    }
    let mut magnitudes: Vec<(usize, f32)> = t
        .data()
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, v.abs()))
        .collect();
    magnitudes.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let n_prune = (t.len() as f64 * ratio).round() as usize;
    let mut pruned = t.clone();
    {
        let data = pruned.data_mut();
        for &(i, _) in magnitudes.iter().take(n_prune) {
            data[i] = 0.0;
        }
    }
    let params_before = t.len();
    let params_after = pruned.data().iter().filter(|&&v| v != 0.0).count();
    let compression = if params_after == 0 {
        f64::INFINITY
    } else {
        params_before as f64 / params_after as f64
    };
    Ok((
        pruned,
        ElementPruneReport {
            params_before,
            params_after,
            compression,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_tensor::{init, rng};

    #[test]
    fn prunes_smallest_magnitudes() {
        let t = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[4]).unwrap();
        let (p, rep) = element_prune(&t, 0.5).unwrap();
        assert_eq!(p.data(), &[0.0, -5.0, 0.0, 3.0]);
        assert_eq!(rep.params_after, 2);
        assert!((rep.compression - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_zero_identity() {
        let mut r = rng::seeded(1);
        let t = init::uniform(&[64], -1.0, 1.0, &mut r);
        let (p, rep) = element_prune(&t, 0.0).unwrap();
        assert_eq!(p, t);
        assert_eq!(rep.params_after, rep.params_before);
    }

    #[test]
    fn fifty_percent_on_epitome_matches_table3_accounting() {
        // Epitome at 2.25x params + 50% element pruning -> combined
        // parameter compression ~4.5x; the paper reports 3.49x because it
        // counts sparse-index overhead — our report is the raw ratio and
        // the bench applies the overhead factor. Here, verify the raw
        // ratio doubles.
        let mut r = rng::seeded(2);
        let t = init::uniform(&[1000], -1.0, 1.0, &mut r);
        let (_, rep) = element_prune(&t, 0.5).unwrap();
        assert!((rep.compression - 2.0).abs() < 0.01);
    }

    #[test]
    fn invalid_ratio_rejected() {
        let t = Tensor::ones(&[4]);
        assert!(element_prune(&t, 1.0).is_err());
        assert!(element_prune(&t, -0.5).is_err());
        assert!(element_prune(&Tensor::zeros(&[0]), 0.5).is_err());
    }

    #[test]
    fn error_increases_with_ratio() {
        let mut r = rng::seeded(3);
        let t = init::uniform(&[512], -1.0, 1.0, &mut r);
        let mse = |ratio: f64| {
            let (p, _) = element_prune(&t, ratio).unwrap();
            p.mse(&t).unwrap()
        };
        assert!(mse(0.25) < mse(0.5));
        assert!(mse(0.5) < mse(0.75));
    }
}
