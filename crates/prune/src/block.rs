//! Crossbar-aware block pruning (the PIM-Prune mechanism).

use crate::PruneError;
use epim_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Block-pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockPruneConfig {
    /// Block height, aligned to crossbar word lines.
    pub block_rows: usize,
    /// Block width, aligned to crossbar bit lines.
    pub block_cols: usize,
    /// Fraction of blocks to prune, in `[0, 1)`.
    pub ratio: f64,
}

/// Accounting of one block-pruning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Blocks in the matrix before pruning.
    pub blocks_total: usize,
    /// Blocks zeroed.
    pub blocks_pruned: usize,
    /// Nonzero parameters before.
    pub params_before: usize,
    /// Nonzero parameters after.
    pub params_after: usize,
    /// Parameter compression rate (`before / after`).
    pub compression: f64,
}

/// Result of [`prune_blocks`]: the pruned (same-shape) matrix, a
/// compacted matrix with fully-zero block-rows/columns removed, and the
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPruneResult {
    /// Same-shape matrix with pruned blocks zeroed.
    pub pruned: Tensor,
    /// Matrix after compaction: block-rows and block-columns that became
    /// entirely zero are removed, shrinking the crossbar footprint.
    pub compacted: Tensor,
    /// Accounting.
    pub report: PruneReport,
}

/// Prunes the mapped weight matrix block-wise by L1 magnitude.
///
/// The `ratio` lowest-magnitude blocks are zeroed. Compaction then drops
/// any block-row/block-column whose blocks are all zero — the mechanism
/// by which PIM-Prune converts sparsity into crossbar savings.
///
/// # Errors
///
/// Returns [`PruneError::InvalidParameter`] for a non-matrix input, zero
/// block extents, or a ratio outside `[0, 1)`.
pub fn prune_blocks(
    matrix: &Tensor,
    cfg: &BlockPruneConfig,
) -> Result<BlockPruneResult, PruneError> {
    if matrix.rank() != 2 {
        return Err(PruneError::invalid("block pruning expects a matrix"));
    }
    if cfg.block_rows == 0 || cfg.block_cols == 0 {
        return Err(PruneError::invalid("block extents must be nonzero"));
    }
    if !(0.0..1.0).contains(&cfg.ratio) {
        return Err(PruneError::invalid(format!(
            "ratio {} outside [0, 1)",
            cfg.ratio
        )));
    }
    let (rows, cols) = (matrix.shape()[0], matrix.shape()[1]);
    let br = rows.div_ceil(cfg.block_rows);
    let bc = cols.div_ceil(cfg.block_cols);

    // Rank blocks by L1 norm.
    let mut norms: Vec<(usize, f64)> = Vec::with_capacity(br * bc);
    for bi in 0..br {
        for bj in 0..bc {
            let mut l1 = 0.0f64;
            for r in (bi * cfg.block_rows)..((bi + 1) * cfg.block_rows).min(rows) {
                for c in (bj * cfg.block_cols)..((bj + 1) * cfg.block_cols).min(cols) {
                    l1 += matrix.at(&[r, c]).abs() as f64;
                }
            }
            norms.push((bi * bc + bj, l1));
        }
    }
    norms.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let n_prune = ((br * bc) as f64 * cfg.ratio).round() as usize;
    let prune_set: std::collections::HashSet<usize> =
        norms.iter().take(n_prune).map(|&(i, _)| i).collect();

    // Zero pruned blocks.
    let mut pruned = matrix.clone();
    for bi in 0..br {
        for bj in 0..bc {
            if !prune_set.contains(&(bi * bc + bj)) {
                continue;
            }
            for r in (bi * cfg.block_rows)..((bi + 1) * cfg.block_rows).min(rows) {
                for c in (bj * cfg.block_cols)..((bj + 1) * cfg.block_cols).min(cols) {
                    pruned.set(&[r, c], 0.0)?;
                }
            }
        }
    }

    // Compaction: keep block-rows/columns with at least one surviving
    // block.
    let live_row = |bi: usize| (0..bc).any(|bj| !prune_set.contains(&(bi * bc + bj)));
    let live_col = |bj: usize| (0..br).any(|bi| !prune_set.contains(&(bi * bc + bj)));
    let keep_rows: Vec<usize> = (0..rows).filter(|r| live_row(r / cfg.block_rows)).collect();
    let keep_cols: Vec<usize> = (0..cols).filter(|c| live_col(c / cfg.block_cols)).collect();
    let compacted = Tensor::from_fn(
        &[keep_rows.len().max(1), keep_cols.len().max(1)],
        |idx| match (keep_rows.get(idx[0]), keep_cols.get(idx[1])) {
            (Some(&r), Some(&c)) => pruned.at(&[r, c]),
            _ => 0.0,
        },
    );

    let params_before = matrix.data().iter().filter(|&&v| v != 0.0).count();
    let params_after = pruned.data().iter().filter(|&&v| v != 0.0).count();
    let compression = if params_after == 0 {
        f64::INFINITY
    } else {
        params_before as f64 / params_after as f64
    };
    Ok(BlockPruneResult {
        pruned,
        compacted,
        report: PruneReport {
            blocks_total: br * bc,
            blocks_pruned: n_prune,
            params_before,
            params_after,
            compression,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_tensor::{init, rng};

    #[test]
    fn prunes_lowest_magnitude_blocks() {
        // Two blocks: left block tiny values, right block large.
        let m = Tensor::from_fn(&[2, 4], |i| if i[1] < 2 { 0.01 } else { 10.0 });
        let cfg = BlockPruneConfig {
            block_rows: 2,
            block_cols: 2,
            ratio: 0.5,
        };
        let res = prune_blocks(&m, &cfg).unwrap();
        assert_eq!(res.report.blocks_pruned, 1);
        // Left block zeroed, right intact.
        assert_eq!(res.pruned.at(&[0, 0]), 0.0);
        assert_eq!(res.pruned.at(&[0, 3]), 10.0);
        // Compacted matrix keeps only the surviving block column.
        assert_eq!(res.compacted.shape(), &[2, 2]);
    }

    #[test]
    fn ratio_zero_is_identity() {
        let mut r = rng::seeded(1);
        let m = init::uniform(&[8, 8], -1.0, 1.0, &mut r);
        let cfg = BlockPruneConfig {
            block_rows: 4,
            block_cols: 4,
            ratio: 0.0,
        };
        let res = prune_blocks(&m, &cfg).unwrap();
        assert_eq!(res.pruned, m);
        assert_eq!(res.report.blocks_pruned, 0);
        assert!((res.report.compression - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_ratio_halves_nonzeros_roughly() {
        let mut r = rng::seeded(2);
        let m = init::uniform(&[16, 16], -1.0, 1.0, &mut r);
        let cfg = BlockPruneConfig {
            block_rows: 4,
            block_cols: 4,
            ratio: 0.5,
        };
        let res = prune_blocks(&m, &cfg).unwrap();
        assert_eq!(res.report.blocks_pruned, 8);
        let frac = res.report.params_after as f64 / res.report.params_before as f64;
        assert!((0.45..0.55).contains(&frac), "{frac}");
        assert!(res.report.compression > 1.8);
    }

    #[test]
    fn compaction_preserves_surviving_values() {
        let mut r = rng::seeded(3);
        let m = init::uniform(&[8, 8], 0.5, 1.0, &mut r); // strictly nonzero
        let cfg = BlockPruneConfig {
            block_rows: 8,
            block_cols: 4,
            ratio: 0.5,
        };
        let res = prune_blocks(&m, &cfg).unwrap();
        // One of two column-blocks pruned -> compacted is 8x4 and every
        // surviving value appears.
        assert_eq!(res.compacted.shape(), &[8, 4]);
        let surviving: f32 = res.pruned.sum();
        assert!((res.compacted.sum() - surviving).abs() < 1e-4);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let m = Tensor::ones(&[4, 4]);
        assert!(prune_blocks(
            &m,
            &BlockPruneConfig {
                block_rows: 0,
                block_cols: 2,
                ratio: 0.5
            }
        )
        .is_err());
        assert!(prune_blocks(
            &m,
            &BlockPruneConfig {
                block_rows: 2,
                block_cols: 2,
                ratio: 1.0
            }
        )
        .is_err());
        assert!(prune_blocks(
            &m,
            &BlockPruneConfig {
                block_rows: 2,
                block_cols: 2,
                ratio: -0.1
            }
        )
        .is_err());
        let v = Tensor::ones(&[4]);
        assert!(prune_blocks(
            &v,
            &BlockPruneConfig {
                block_rows: 2,
                block_cols: 2,
                ratio: 0.5
            }
        )
        .is_err());
    }

    #[test]
    fn ragged_matrix_handled() {
        let mut r = rng::seeded(4);
        let m = init::uniform(&[10, 7], -1.0, 1.0, &mut r);
        let cfg = BlockPruneConfig {
            block_rows: 4,
            block_cols: 4,
            ratio: 0.4,
        };
        let res = prune_blocks(&m, &cfg).unwrap();
        assert_eq!(res.report.blocks_total, 3 * 2);
        assert!(res.report.params_after < res.report.params_before);
    }

    #[test]
    fn higher_ratio_more_compression() {
        let mut r = rng::seeded(5);
        let m = init::uniform(&[32, 32], -1.0, 1.0, &mut r);
        let c50 = prune_blocks(
            &m,
            &BlockPruneConfig {
                block_rows: 8,
                block_cols: 8,
                ratio: 0.5,
            },
        )
        .unwrap();
        let c75 = prune_blocks(
            &m,
            &BlockPruneConfig {
                block_rows: 8,
                block_cols: 8,
                ratio: 0.75,
            },
        )
        .unwrap();
        assert!(c75.report.compression > c50.report.compression);
    }
}
