//! # epim-prune
//!
//! A reproduction of **PIM-Prune** (Chu et al., DAC 2020) — the pruning
//! baseline the EPIM paper compares against in Tables 1 and 3 — plus the
//! element-wise pruning used for the paper's "Epitome + Pruning" row.
//!
//! PIM-Prune's key idea: unstructured sparsity does not save crossbars,
//! because a crossbar is allocated whole. Pruning must therefore be
//! *crossbar-aware*: zero out whole blocks of the mapped weight matrix
//! (aligned to the crossbar geometry) and compact the matrix so emptied
//! blocks release physical crossbars.
//!
//! ## Example
//!
//! ```
//! use epim_prune::{prune_blocks, BlockPruneConfig};
//! use epim_tensor::Tensor;
//!
//! # fn main() -> Result<(), epim_prune::PruneError> {
//! let w = Tensor::from_fn(&[8, 8], |i| (i[0] * 8 + i[1]) as f32 + 1.0);
//! let cfg = BlockPruneConfig { block_rows: 4, block_cols: 4, ratio: 0.5 };
//! let pruned = prune_blocks(&w, &cfg)?;
//! assert_eq!(pruned.report.blocks_pruned, 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod block;
mod element;
mod error;

pub use block::{prune_blocks, BlockPruneConfig, BlockPruneResult, PruneReport};
pub use element::{element_prune, ElementPruneReport};
pub use error::PruneError;
