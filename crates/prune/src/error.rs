use std::error::Error;
use std::fmt;

use epim_tensor::TensorError;

/// Error type for pruning operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PruneError {
    /// A pruning parameter was invalid (ratio outside `[0, 1)`, zero
    /// block extents, ...).
    InvalidParameter {
        /// What was wrong.
        what: String,
    },
    /// Underlying tensor error.
    Tensor(TensorError),
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::InvalidParameter { what } => {
                write!(f, "invalid pruning parameter: {what}")
            }
            PruneError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for PruneError {
    fn from(e: TensorError) -> Self {
        PruneError::Tensor(e)
    }
}

impl PruneError {
    /// Convenience constructor for [`PruneError::InvalidParameter`].
    pub fn invalid(what: impl Into<String>) -> Self {
        PruneError::InvalidParameter { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(PruneError::invalid("ratio").to_string().contains("ratio"));
        let e: PruneError = TensorError::invalid("x").into();
        assert!(e.source().is_some());
    }
}
