//! Loopback integration tests: a real TCP server on an ephemeral port
//! must serve the default three-tenant zoo **bit-identically** to an
//! in-process fleet built from the same `FleetConfig`, reply with typed
//! error frames for overload / unknown tenants / protocol violations,
//! and drain gracefully — answering everything in flight before closing.

use epim_serve::client::Client;
use epim_serve::fleet::{FleetConfig, TenantSpec, INPUT_SHAPE};
use epim_serve::server::{ServeReport, Server};
use epim_serve::wire::{self, Message};
use epim_tensor::{init, rng, Tensor};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn start(
    cfg: &FleetConfig,
    max_frame: Option<u32>,
) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<ServeReport>) {
    let engine = cfg.build().unwrap();
    let mut server = Server::bind(engine, "127.0.0.1:0").unwrap();
    if let Some(mf) = max_frame {
        server = server.with_max_frame(mf);
    }
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, flag, handle)
}

fn inputs(n: usize, seed: u64) -> Vec<Tensor> {
    let mut r = rng::seeded(seed);
    (0..n)
        .map(|_| init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r))
        .collect()
}

/// The acceptance-criterion invariant: three tenants, three concurrent
/// clients, every wire output bitwise-equal to a direct in-process
/// `MultiEngine` built from the same fleet config.
#[test]
fn loopback_serving_is_bit_identical_to_in_process() {
    let cfg = FleetConfig::default_zoo();
    let (addr, flag, server) = start(&cfg, None);
    let reference = cfg.build().unwrap();

    const PER_CLIENT: usize = 9;
    let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.name.clone()).collect();
    let wire_outputs: Vec<Vec<(String, Tensor, Tensor)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let addr = addr.to_string();
                let tenant_names = &tenant_names;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let xs = inputs(PER_CLIENT, 500 + c as u64);
                    // Pipeline everything, then collect by id.
                    let mut by_id = std::collections::HashMap::new();
                    for (k, x) in xs.iter().enumerate() {
                        let tenant = &tenant_names[(c + k) % tenant_names.len()];
                        let id = client.submit(tenant, x.clone()).unwrap();
                        by_id.insert(id, (tenant.clone(), x.clone()));
                    }
                    let mut got = Vec::new();
                    for _ in 0..xs.len() {
                        let resp = client.recv_reply().unwrap().expect("no error frames");
                        assert!(resp.batch_size >= 1);
                        let (tenant, input) = by_id.remove(&resp.id).expect("known id");
                        got.push((tenant, input, resp.output));
                    }
                    client.close().unwrap();
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut compared = 0;
    for (tenant, input, wire_out) in wire_outputs.into_iter().flatten() {
        let tid = reference.tenant_id(&tenant).unwrap();
        let want = reference.infer(tid, input).unwrap().output;
        assert_eq!(want.shape(), wire_out.shape());
        assert_eq!(
            want.data(),
            wire_out.data(),
            "wire output differs from in-process output for tenant `{tenant}`"
        );
        compared += 1;
    }
    assert_eq!(compared, 3 * PER_CLIENT);

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.connections, 3);
    assert_eq!(report.requests, (3 * PER_CLIENT) as u64);
    assert_eq!(report.error_frames, 0);
}

/// A saturated tenant sheds into typed `overloaded` error frames while
/// the accepted requests still come back correct; an unknown tenant gets
/// its own error code without poisoning the connection.
#[test]
fn overload_and_unknown_tenant_reply_with_typed_errors() {
    // One tiny tenant, no batching, queue of one: a pipelined burst far
    // outpaces execution, so some requests must shed.
    let mut spec = TenantSpec::new("only", 8, 4, 10, 7);
    spec.max_batch = 1;
    spec.batch_window_ms = 0;
    spec.queue_capacity = 1;
    let cfg = FleetConfig {
        workers: 1,
        tenants: vec![spec],
    };
    let (addr, flag, server) = start(&cfg, None);
    let reference = cfg.build().unwrap();
    let only = reference.tenant_id("only").unwrap();

    let mut client = Client::connect(&addr.to_string()).unwrap();
    const BURST: usize = 64;
    let xs = inputs(BURST, 900);
    let mut by_id = std::collections::HashMap::new();
    for x in &xs {
        let id = client.submit("only", x.clone()).unwrap();
        by_id.insert(id, x.clone());
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for _ in 0..BURST {
        match client.recv_reply().unwrap() {
            Ok(resp) => {
                let input = by_id.remove(&resp.id).unwrap();
                let want = reference.infer(only, input).unwrap().output;
                assert_eq!(want.data(), resp.output.data());
                ok += 1;
            }
            Err(err) => {
                assert_eq!(err.code, wire::code::OVERLOADED, "{}", err.message);
                assert!(err.message.contains("queue full"), "{}", err.message);
                shed += 1;
            }
        }
    }
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        shed >= 1,
        "a {BURST}-deep pipelined burst into a 1-slot queue must shed"
    );

    // Unknown tenant: typed error, connection survives.
    let reply = client.infer("nope", xs[0].clone()).unwrap();
    let err = reply.expect_err("unknown tenant must be an error frame");
    assert_eq!(err.code, wire::code::UNKNOWN_TENANT);
    assert!(err.message.contains("nope"), "{}", err.message);
    let reply = client.infer("only", xs[0].clone()).unwrap();
    let resp = reply.expect("connection must survive an unknown-tenant error");
    let want = reference.infer(only, xs[0].clone()).unwrap().output;
    assert_eq!(want.data(), resp.output.data());

    client.close().unwrap();
    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.error_frames as usize, shed + 1);
}

/// Protocol violations — bad hello, malformed frame, oversize frame —
/// each get a typed `protocol` error frame and a closed connection.
#[test]
fn protocol_violations_are_rejected_with_error_frames() {
    let cfg = FleetConfig::default_zoo();
    let (addr, flag, server) = start(&cfg, Some(4096));

    // Bad magic in the hello.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"EVIL\x01\x00").unwrap();
    match Message::read(&mut stream, wire::MAX_FRAME).unwrap() {
        Some(Message::Error(err)) => assert_eq!(err.code, wire::code::PROTOCOL),
        other => panic!("want a protocol error frame, got {other:?}"),
    }
    assert!(
        Message::read(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .is_none(),
        "connection must close after a protocol error"
    );

    // Unknown frame type after a valid hello.
    let mut stream = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut stream).unwrap();
    wire::read_hello(&mut stream).unwrap();
    wire::write_frame(&mut stream, &[0x7f, 1, 2, 3]).unwrap();
    match Message::read(&mut stream, wire::MAX_FRAME).unwrap() {
        Some(Message::Error(err)) => {
            assert_eq!(err.code, wire::code::PROTOCOL);
            assert!(err.message.contains("0x7f"), "{}", err.message);
        }
        other => panic!("want a protocol error frame, got {other:?}"),
    }
    assert!(Message::read(&mut stream, wire::MAX_FRAME)
        .unwrap()
        .is_none());

    // Oversize frame: rejected from the length prefix alone.
    let mut stream = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut stream).unwrap();
    wire::read_hello(&mut stream).unwrap();
    stream.write_all(&1_000_000u32.to_le_bytes()).unwrap();
    match Message::read(&mut stream, wire::MAX_FRAME).unwrap() {
        Some(Message::Error(err)) => {
            assert_eq!(err.code, wire::code::PROTOCOL);
            assert!(err.message.contains("4096"), "{}", err.message);
        }
        other => panic!("want a protocol error frame, got {other:?}"),
    }

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.error_frames, 3);
}

/// Graceful drain: a shutdown with requests held open by a long batching
/// window still answers every in-flight request and says goodbye before
/// the server returns.
#[test]
fn drain_answers_in_flight_requests() {
    // A long window with a small burst keeps requests in flight: the
    // batcher holds them open hoping for `max_batch` peers.
    let mut spec = TenantSpec::new("slow", 8, 4, 10, 7);
    spec.max_batch = 8;
    spec.batch_window_ms = 400;
    let cfg = FleetConfig {
        workers: 1,
        tenants: vec![spec],
    };
    let (addr, flag, server) = start(&cfg, None);
    let reference = cfg.build().unwrap();
    let slow = reference.tenant_id("slow").unwrap();

    let mut client = Client::connect(&addr.to_string()).unwrap();
    let xs = inputs(3, 321);
    let mut by_id = std::collections::HashMap::new();
    for x in &xs {
        let id = client.submit("slow", x.clone()).unwrap();
        by_id.insert(id, x.clone());
    }
    // Let the submissions land in the scheduler, then pull the plug
    // while the batch window still holds them all in flight.
    std::thread::sleep(Duration::from_millis(100));
    flag.store(true, Ordering::SeqCst);

    for _ in 0..xs.len() {
        let resp = client
            .recv_reply()
            .unwrap()
            .expect("drain must answer in-flight requests, not drop them");
        let input = by_id.remove(&resp.id).unwrap();
        let want = reference.infer(slow, input).unwrap().output;
        assert_eq!(want.data(), resp.output.data());
    }
    let (_, receiver) = client.split();
    receiver
        .await_goodbye()
        .expect("drain must end with a goodbye frame");

    let report = server.join().unwrap();
    assert_eq!(report.requests, 3);
    assert_eq!(report.error_frames, 0);
}
