//! Wire-level chaos tests: injected connection resets, torn frames,
//! idle peers, connection-cap pressure and expiring deadlines — under
//! all of which the serving contract must hold: every request gets a
//! **bit-identical answer or a typed error**, never a hang, never a
//! wrong bit, and a drain always completes.
//!
//! Fault state is process-global (`epim_faults::install`/`clear`), so
//! every test — including the ones that install nothing — serializes on
//! a static mutex.

use epim_faults::{FaultPlan, FaultPoint, FaultRule};
use epim_serve::client::{Client, ResilientClient};
use epim_serve::fleet::{FleetConfig, TenantSpec, INPUT_SHAPE};
use epim_serve::server::{ServeReport, Server};
use epim_serve::wire::{self, Message};
use epim_tensor::{init, rng, Tensor};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serializes tests around the process-global fault plan.
static GATE: Mutex<()> = Mutex::new(());

fn small_fleet() -> FleetConfig {
    FleetConfig {
        workers: 1,
        tenants: vec![TenantSpec::new("t", 8, 4, 10, 7)],
    }
}

fn start_with(
    cfg: &FleetConfig,
    tweak: impl FnOnce(Server) -> Server,
) -> (SocketAddr, Arc<AtomicBool>, JoinHandle<ServeReport>) {
    let engine = cfg.build().unwrap();
    let server = tweak(Server::bind(engine, "127.0.0.1:0").unwrap());
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, flag, handle)
}

fn inputs(n: usize, seed: u64) -> Vec<Tensor> {
    let mut r = rng::seeded(seed);
    (0..n)
        .map(|_| init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r))
        .collect()
}

/// An injected connection reset mid-reply-stream: the resilient client
/// reconnects, resubmits everything unanswered under the original ids,
/// and every request still yields output bitwise-equal to an in-process
/// fleet built from the same config.
#[test]
fn conn_reset_is_survived_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let (addr, flag, server) = start_with(&cfg, |s| s);
    let reference = cfg.build().unwrap();
    let tid = reference.tenant_id("t").unwrap();

    // The second reply write severs the socket instead of answering.
    epim_faults::install(
        FaultPlan::new(42).with_rule(FaultPoint::ConnReset, FaultRule::once_at(2)),
    );

    let mut client = ResilientClient::connect(&addr.to_string()).unwrap();
    let xs = inputs(4, 1100);
    let mut by_id = std::collections::HashMap::new();
    for x in &xs {
        let id = client.submit("t", x.clone()).unwrap();
        by_id.insert(id, x.clone());
    }
    for _ in 0..xs.len() {
        let resp = client
            .recv_reply()
            .unwrap()
            .expect("no error frames expected");
        let input = by_id.remove(&resp.id).expect("known, unanswered id");
        let want = reference.infer(tid, input).unwrap().output;
        assert_eq!(
            want.data(),
            resp.output.data(),
            "reply after reconnect diverged from in-process reference"
        );
    }
    let fired = epim_faults::fire_count(FaultPoint::ConnReset);
    epim_faults::clear();

    assert_eq!(fired, 1, "the reset must have actually been injected");
    assert_eq!(client.inflight(), 0);
    client.close().unwrap();
    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    // The reconnect shows up as a second accepted connection.
    assert!(report.connections >= 2, "report: {report:?}");
}

/// A frame torn mid-body (length prefix promises more bytes than
/// arrive) must be detected as a transport failure — never decoded into
/// wrong bits — and the resilient client recovers the answer exactly.
#[test]
fn torn_frame_is_detected_and_recovered() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let (addr, flag, server) = start_with(&cfg, |s| s);
    let reference = cfg.build().unwrap();
    let tid = reference.tenant_id("t").unwrap();

    // The very first reply is written half-way, then the socket severs.
    epim_faults::install(
        FaultPlan::new(42).with_rule(FaultPoint::TornFrame, FaultRule::once_at(1)),
    );

    let mut client = ResilientClient::connect(&addr.to_string()).unwrap();
    let xs = inputs(3, 1200);
    let mut by_id = std::collections::HashMap::new();
    for x in &xs {
        let id = client.submit("t", x.clone()).unwrap();
        by_id.insert(id, x.clone());
    }
    for _ in 0..xs.len() {
        let resp = client.recv_reply().unwrap().expect("no error frames");
        let input = by_id.remove(&resp.id).unwrap();
        let want = reference.infer(tid, input).unwrap().output;
        assert_eq!(want.data(), resp.output.data());
    }
    let fired = epim_faults::fire_count(FaultPoint::TornFrame);
    epim_faults::clear();

    assert_eq!(fired, 1);
    client.close().unwrap();
    flag.store(true, Ordering::SeqCst);
    server.join().unwrap();
}

/// A peer that goes silent past the idle timeout is disconnected with a
/// typed error frame (and counted), instead of pinning session threads
/// forever.
#[test]
fn idle_peer_is_disconnected_with_typed_error() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let (addr, flag, server) =
        start_with(&cfg, |s| s.with_idle_timeout(Duration::from_millis(100)));

    // Handshake, then say nothing.
    let mut stream = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut stream).unwrap();
    wire::read_hello(&mut stream).unwrap();
    match Message::read(&mut stream, wire::MAX_FRAME).unwrap() {
        Some(Message::Error(err)) => {
            assert_eq!(err.id, wire::NO_REQUEST);
            assert_eq!(err.code, wire::code::IO);
            assert!(err.message.contains("idle"), "{}", err.message);
        }
        other => panic!("want an idle-timeout error frame, got {other:?}"),
    }
    assert!(
        Message::read(&mut stream, wire::MAX_FRAME)
            .unwrap()
            .is_none(),
        "connection must close after the idle timeout"
    );

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.idle_disconnects, 1, "report: {report:?}");
}

/// A connection over the cap is answered — hello plus one typed
/// `overloaded` error frame — and closed; established sessions keep
/// serving untouched.
#[test]
fn connection_cap_rejects_with_typed_overload() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let (addr, flag, server) = start_with(&cfg, |s| s.with_max_connections(1));
    let reference = cfg.build().unwrap();
    let tid = reference.tenant_id("t").unwrap();

    // Session A establishes itself with a full round trip.
    let mut a = Client::connect(&addr.to_string()).unwrap();
    let xs = inputs(2, 1300);
    let resp = a.infer("t", xs[0].clone()).unwrap().expect("served");
    let want = reference.infer(tid, xs[0].clone()).unwrap().output;
    assert_eq!(want.data(), resp.output.data());

    // Connection B is over the cap: typed rejection, then close.
    let mut b = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut b).unwrap();
    wire::read_hello(&mut b).unwrap();
    match Message::read(&mut b, wire::MAX_FRAME).unwrap() {
        Some(Message::Error(err)) => {
            assert_eq!(err.id, wire::NO_REQUEST);
            assert_eq!(err.code, wire::code::OVERLOADED);
            assert!(err.message.contains("connection limit"), "{}", err.message);
        }
        other => panic!("want an overloaded error frame, got {other:?}"),
    }
    assert!(Message::read(&mut b, wire::MAX_FRAME).unwrap().is_none());

    // Session A is unaffected by B's rejection.
    let resp = a.infer("t", xs[1].clone()).unwrap().expect("still served");
    let want = reference.infer(tid, xs[1].clone()).unwrap().output;
    assert_eq!(want.data(), resp.output.data());
    a.close().unwrap();

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.connections, 1, "report: {report:?}");
    assert_eq!(report.connections_rejected, 1, "report: {report:?}");
}

/// The health frame reports the fleet's tenant list (and the draining
/// flag) without touching any tenant queue.
#[test]
fn health_frame_reports_fleet_snapshot() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = FleetConfig {
        workers: 1,
        tenants: vec![
            TenantSpec::new("alpha", 8, 4, 10, 7),
            TenantSpec::new("beta", 8, 8, 12, 9),
        ],
    };
    let (addr, flag, server) = start_with(&cfg, |s| s);

    let mut client = Client::connect(&addr.to_string()).unwrap();
    let health = client.health().unwrap();
    assert!(!health.draining);
    assert_eq!(
        health.tenants,
        vec!["alpha".to_string(), "beta".to_string()]
    );
    client.close().unwrap();

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.requests, 0, "health probes are not requests");
    assert_eq!(report.error_frames, 0);
}

/// A wire-carried deadline that expires while the batch window holds the
/// request open comes back as a typed `deadline` error frame — the slot
/// is never spent on an answer nobody is waiting for.
#[test]
fn wire_deadline_expires_into_typed_error_frame() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    // A long batch window holds the lone request open well past its
    // 30 ms deadline; the scheduler's sweep sheds it.
    let mut spec = TenantSpec::new("slow", 8, 4, 10, 7);
    spec.max_batch = 8;
    spec.batch_window_ms = 300;
    let cfg = FleetConfig {
        workers: 1,
        tenants: vec![spec],
    };
    let (addr, flag, server) = start_with(&cfg, |s| s);

    let mut client = Client::connect(&addr.to_string()).unwrap();
    let x = inputs(1, 1400).pop().unwrap();
    let id = client.submit_with_deadline("slow", x, 30).unwrap();
    match client.recv_reply().unwrap() {
        Err(err) => {
            assert_eq!(err.id, id);
            assert_eq!(err.code, wire::code::DEADLINE, "{}", err.message);
        }
        Ok(resp) => panic!("expected a deadline error frame, got response {}", resp.id),
    }
    client.close().unwrap();

    flag.store(true, Ordering::SeqCst);
    let report = server.join().unwrap();
    assert_eq!(report.error_frames, 1, "report: {report:?}");
}

/// Graceful drain under hostile clients: sessions that vanish abruptly
/// and a peer that dies mid-frame must not stall the drain — the
/// well-behaved client still gets every answer (bit-identical) and the
/// server joins cleanly.
#[test]
fn drain_survives_concurrent_disconnects_and_midframe_resets() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let (addr, flag, server) = start_with(&cfg, |s| s);
    let reference = cfg.build().unwrap();
    let tid = reference.tenant_id("t").unwrap();

    // A well-behaved client with work in flight.
    let mut good = Client::connect(&addr.to_string()).unwrap();
    let xs = inputs(3, 1500);
    let mut by_id = std::collections::HashMap::new();
    for x in &xs {
        let id = good.submit("t", x.clone()).unwrap();
        by_id.insert(id, x.clone());
    }

    // A client that submits and then vanishes without a goodbye.
    let mut rude = Client::connect(&addr.to_string()).unwrap();
    rude.submit("t", xs[0].clone()).unwrap();
    drop(rude);

    // A peer that dies mid-frame: the length prefix promises 100 bytes,
    // 10 arrive, then the socket drops.
    let mut torn = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut torn).unwrap();
    wire::read_hello(&mut torn).unwrap();
    torn.write_all(&100u32.to_le_bytes()).unwrap();
    torn.write_all(&[0u8; 10]).unwrap();
    drop(torn);

    // Pull the plug while all of the above is in flight.
    std::thread::sleep(Duration::from_millis(50));
    flag.store(true, Ordering::SeqCst);

    for _ in 0..xs.len() {
        let resp = good
            .recv_reply()
            .unwrap()
            .expect("drain must answer the surviving client");
        let input = by_id.remove(&resp.id).unwrap();
        let want = reference.infer(tid, input).unwrap().output;
        assert_eq!(want.data(), resp.output.data());
    }
    let (_, receiver) = good.split();
    receiver
        .await_goodbye()
        .expect("drain must end with a goodbye");

    // The drain completing at all is the core assertion: no session —
    // vanished, torn or healthy — may stall the join.
    let report = server.join().unwrap();
    assert_eq!(report.connections, 3, "report: {report:?}");
}

/// The server's Prometheus exposition carries both the fleet's serving
/// metrics (worker restarts, deadline sheds) and the transport counters,
/// readable while `serve` runs on another thread.
#[test]
fn prometheus_exposition_includes_resilience_counters() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let cfg = small_fleet();
    let engine = cfg.build().unwrap();
    let server = Arc::new(
        Server::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_max_connections(4),
    );
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let serving = Arc::clone(&server);
    let handle = std::thread::spawn(move || serving.serve().unwrap());

    let reference = cfg.build().unwrap();
    let tid = reference.tenant_id("t").unwrap();
    let mut client = Client::connect(&addr.to_string()).unwrap();
    let x = inputs(1, 1600).pop().unwrap();
    let resp = client.infer("t", x.clone()).unwrap().expect("served");
    let want = reference.infer(tid, x).unwrap().output;
    assert_eq!(want.data(), resp.output.data());

    let text = server.render_prometheus();
    for metric in [
        "# TYPE epim_serve_connections_total counter",
        "epim_serve_connections_total 1",
        "epim_serve_requests_total 1",
        "epim_serve_error_frames_total 0",
        "epim_serve_connections_rejected_total 0",
        "epim_serve_idle_disconnects_total 0",
        "# TYPE epim_worker_restarts_total counter",
        "epim_worker_restarts_total 0",
        "# TYPE epim_deadline_exceeded_total counter",
    ] {
        assert!(text.contains(metric), "missing `{metric}` in:\n{text}");
    }

    client.close().unwrap();
    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
