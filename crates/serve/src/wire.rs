//! The length-prefixed binary wire protocol.
//!
//! A connection opens with a fixed 6-byte hello in each direction —
//! the [`MAGIC`] bytes `"EPIM"` followed by the little-endian protocol
//! [`VERSION`] — and then carries frames. Every frame is a `u32`
//! little-endian body length followed by the body; the first body byte is
//! the frame type:
//!
//! | type | frame     | body after the type byte                                   |
//! |------|-----------|------------------------------------------------------------|
//! | 0x01 | Request   | `u64` id, `u16` name len + tenant name, `u32` deadline ms (`0` = none), `u8` rank, rank × `u32` dims, `f32` payload |
//! | 0x02 | Response  | `u64` id, `u32` batch size, `u64` latency ns, `u8` rank, rank × `u32` dims, `f32` payload |
//! | 0x03 | Error     | `u64` id ([`NO_REQUEST`] when connection-level), `u16` code, `u16` message len + message |
//! | 0x04 | Goodbye   | empty                                                      |
//! | 0x05 | HealthReq | empty (client → server probe)                              |
//! | 0x06 | Health    | `u8` draining, `u16` tenant count, count × (`u16` len + name) |
//!
//! All integers and floats are little-endian. Request ids are chosen by
//! the client and echoed verbatim; the server never interprets them
//! beyond routing the reply. A frame longer than the negotiated
//! [`MAX_FRAME`] or with any structural defect (bad type byte, truncated
//! body, trailing bytes, non-UTF-8 tenant name, dims/payload mismatch)
//! decodes to [`RuntimeError::Protocol`] — connection-fatal on the server
//! side: it replies with a typed error frame and closes.

use epim_runtime::RuntimeError;
use epim_tensor::Tensor;
use std::io::{Read, Write};

/// The 4-byte connection preamble.
pub const MAGIC: [u8; 4] = *b"EPIM";
/// Protocol version carried in the hello exchange. Version 2 added the
/// request deadline field and the health probe frames.
pub const VERSION: u16 = 2;
/// Default upper bound on a frame body. Large enough for any zoo-model
/// tensor, small enough that a hostile length prefix cannot make the
/// server allocate gigabytes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// The request id used in connection-level error frames that do not
/// answer any particular request.
pub const NO_REQUEST: u64 = u64::MAX;

/// Frame type tags (first body byte).
pub const TYPE_REQUEST: u8 = 0x01;
/// See [`TYPE_REQUEST`].
pub const TYPE_RESPONSE: u8 = 0x02;
/// See [`TYPE_REQUEST`].
pub const TYPE_ERROR: u8 = 0x03;
/// See [`TYPE_REQUEST`].
pub const TYPE_GOODBYE: u8 = 0x04;
/// See [`TYPE_REQUEST`].
pub const TYPE_HEALTH_REQ: u8 = 0x05;
/// See [`TYPE_REQUEST`].
pub const TYPE_HEALTH: u8 = 0x06;

/// Typed error codes carried by error frames, mapped from
/// [`RuntimeError`] by [`error_code`].
pub mod code {
    /// The tenant's bounded queue was full and the request was shed.
    pub const OVERLOADED: u16 = 1;
    /// The request named a tenant the fleet does not serve.
    pub const UNKNOWN_TENANT: u16 = 2;
    /// The server is draining and no longer accepts requests.
    pub const SHUTTING_DOWN: u16 = 3;
    /// The peer violated the wire protocol; the connection closes.
    pub const PROTOCOL: u16 = 4;
    /// A bounded wait expired server-side.
    pub const TIMEOUT: u16 = 5;
    /// The request failed inside the execution engine.
    pub const EXECUTION: u16 = 6;
    /// A transport-level I/O failure.
    pub const IO: u16 = 7;
    /// The request's deadline passed before execution started; the
    /// scheduler shed it instead of computing an answer nobody waits
    /// for.
    pub const DEADLINE: u16 = 8;
}

/// Maps a runtime error onto its wire error code.
pub fn error_code(err: &RuntimeError) -> u16 {
    match err {
        RuntimeError::Overloaded { .. } => code::OVERLOADED,
        RuntimeError::UnknownTenant { .. } => code::UNKNOWN_TENANT,
        RuntimeError::ShuttingDown => code::SHUTTING_DOWN,
        RuntimeError::Protocol { .. } => code::PROTOCOL,
        RuntimeError::Timeout => code::TIMEOUT,
        RuntimeError::DeadlineExceeded => code::DEADLINE,
        RuntimeError::Io(_) => code::IO,
        _ => code::EXECUTION,
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A client inference request.
    Request(WireRequest),
    /// A server reply carrying the output tensor.
    Response(WireResponse),
    /// A typed failure reply.
    Error(WireError),
    /// Orderly end-of-stream marker (sent by both sides).
    Goodbye,
    /// A client health probe; the server answers with
    /// [`Message::Health`] without touching any tenant queue.
    HealthReq,
    /// The server's health snapshot.
    Health(WireHealth),
}

/// The request frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen id, echoed in the reply.
    pub id: u64,
    /// Which fleet tenant serves this request.
    pub tenant: String,
    /// Relative completion deadline in milliseconds, measured from
    /// server-side decode; `0` means "no deadline". Carried relative
    /// (not as a wall-clock instant) so client/server clock skew cannot
    /// spuriously expire requests.
    pub deadline_ms: u32,
    /// The input tensor.
    pub input: Tensor,
}

/// The response frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// Echo of the request id.
    pub id: u64,
    /// How many requests shared the executed batch server-side.
    pub batch_size: u32,
    /// Server-side submission-to-delivery latency in nanoseconds.
    pub latency_ns: u64,
    /// The output tensor.
    pub output: Tensor,
}

/// The health frame payload: enough for a load balancer (or an
/// operator's probe) to decide whether to keep routing traffic here.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHealth {
    /// `true` once the server has begun draining: in-flight requests
    /// still complete but new connections should go elsewhere.
    pub draining: bool,
    /// The tenant names this fleet serves, in registration order.
    pub tenants: Vec<String>,
}

/// The error frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Echo of the offending request id, or [`NO_REQUEST`].
    pub id: u64,
    /// One of the [`code`] constants.
    pub code: u16,
    /// Human-readable detail (the runtime error's `Display`).
    pub message: String,
}

fn proto(reason: impl Into<String>) -> RuntimeError {
    RuntimeError::Protocol {
        reason: reason.into(),
    }
}

/// Writes the 6-byte hello preamble.
///
/// # Errors
///
/// Transport failures as [`RuntimeError::Io`].
pub fn write_hello(w: &mut impl Write) -> Result<(), RuntimeError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the peer's hello preamble.
///
/// # Errors
///
/// [`RuntimeError::Protocol`] on a wrong magic or an unsupported
/// version; transport failures as [`RuntimeError::Io`].
pub fn read_hello(r: &mut impl Read) -> Result<(), RuntimeError> {
    let mut buf = [0u8; 6];
    r.read_exact(&mut buf)?;
    if buf[..4] != MAGIC {
        return Err(proto(format!(
            "bad magic {:02x?}, want \"EPIM\"",
            &buf[..4]
        )));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(proto(format!(
            "unsupported protocol version {version}, want {VERSION}"
        )));
    }
    Ok(())
}

/// Writes one already-encoded frame body behind its length prefix.
///
/// # Errors
///
/// Transport failures as [`RuntimeError::Io`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), RuntimeError> {
    let len = u32::try_from(body.len()).map_err(|_| proto("frame body over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one raw frame body. Returns `Ok(None)` on a clean end-of-stream
/// at a frame boundary.
///
/// # Errors
///
/// [`RuntimeError::Protocol`] when the announced length exceeds
/// `max_frame`; transport failures (including EOF mid-frame) as
/// [`RuntimeError::Io`].
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Vec<u8>>, RuntimeError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte is an orderly close; EOF after
    // a partial prefix is a transport error.
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(RuntimeError::Io(std::sync::Arc::new(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF mid frame prefix",
                ))))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(proto(format!(
            "frame of {len} bytes exceeds the {max_frame}-byte limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// A little-endian byte writer for frame bodies.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn tensor(&mut self, t: &Tensor) -> Result<(), RuntimeError> {
        let rank = u8::try_from(t.shape().len()).map_err(|_| proto("tensor rank over 255"))?;
        self.u8(rank);
        for &d in t.shape() {
            let d = u32::try_from(d).map_err(|_| proto("tensor dim over u32"))?;
            self.u32(d);
        }
        self.buf.reserve(t.data().len() * 4);
        for &x in t.data() {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        Ok(())
    }
}

/// A bounds-checked little-endian byte reader for frame bodies.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| proto("truncated frame body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, RuntimeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, RuntimeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, RuntimeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, RuntimeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn string(&mut self, len: usize) -> Result<String, RuntimeError> {
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| proto("non-UTF-8 string field"))
    }
    fn tensor(&mut self) -> Result<Tensor, RuntimeError> {
        let rank = self.u8()? as usize;
        let mut shape = Vec::with_capacity(rank);
        let mut numel: usize = 1;
        for _ in 0..rank {
            let d = self.u32()? as usize;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| proto("tensor element count overflows"))?;
            shape.push(d);
        }
        // Bound the element count by what the frame can actually hold
        // before allocating, so a hostile dim cannot force a huge alloc.
        let remaining = self.buf.len() - self.pos;
        if numel.checked_mul(4).map(|b| b > remaining).unwrap_or(true) {
            return Err(proto(format!(
                "tensor payload wants {numel} f32s but {remaining} bytes remain in the frame"
            )));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            let b = self.take(4)?;
            data.push(f32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        Tensor::from_vec(data, &shape).map_err(|e| proto(format!("bad tensor in frame: {e}")))
    }
    fn finish(self) -> Result<(), RuntimeError> {
        if self.pos != self.buf.len() {
            return Err(proto(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Message {
    /// Encodes this message into a frame body (no length prefix).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] when a field exceeds its wire range
    /// (tenant name over `u16`, tensor rank over `u8`).
    pub fn encode(&self) -> Result<Vec<u8>, RuntimeError> {
        let mut e = Enc::default();
        match self {
            Message::Request(req) => {
                e.u8(TYPE_REQUEST);
                e.u64(req.id);
                let name_len = u16::try_from(req.tenant.len())
                    .map_err(|_| proto("tenant name over 64 KiB"))?;
                e.u16(name_len);
                e.buf.extend_from_slice(req.tenant.as_bytes());
                e.u32(req.deadline_ms);
                e.tensor(&req.input)?;
            }
            Message::Response(resp) => {
                e.u8(TYPE_RESPONSE);
                e.u64(resp.id);
                e.u32(resp.batch_size);
                e.u64(resp.latency_ns);
                e.tensor(&resp.output)?;
            }
            Message::Error(err) => {
                e.u8(TYPE_ERROR);
                e.u64(err.id);
                e.u16(err.code);
                let msg = err.message.as_bytes();
                let take = msg.len().min(u16::MAX as usize);
                e.u16(take as u16);
                e.buf.extend_from_slice(&msg[..take]);
            }
            Message::Goodbye => e.u8(TYPE_GOODBYE),
            Message::HealthReq => e.u8(TYPE_HEALTH_REQ),
            Message::Health(h) => {
                e.u8(TYPE_HEALTH);
                e.u8(u8::from(h.draining));
                let count = u16::try_from(h.tenants.len())
                    .map_err(|_| proto("over 65535 tenants in health frame"))?;
                e.u16(count);
                for name in &h.tenants {
                    let len =
                        u16::try_from(name.len()).map_err(|_| proto("tenant name over 64 KiB"))?;
                    e.u16(len);
                    e.buf.extend_from_slice(name.as_bytes());
                }
            }
        }
        Ok(e.buf)
    }

    /// Decodes a frame body.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] on any structural defect: empty body,
    /// unknown type byte, truncated fields, non-UTF-8 strings,
    /// dims/payload mismatch or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Message, RuntimeError> {
        let mut d = Dec::new(body);
        let msg = match d.u8()? {
            TYPE_REQUEST => {
                let id = d.u64()?;
                let name_len = d.u16()? as usize;
                let tenant = d.string(name_len)?;
                let deadline_ms = d.u32()?;
                let input = d.tensor()?;
                Message::Request(WireRequest {
                    id,
                    tenant,
                    deadline_ms,
                    input,
                })
            }
            TYPE_RESPONSE => {
                let id = d.u64()?;
                let batch_size = d.u32()?;
                let latency_ns = d.u64()?;
                let output = d.tensor()?;
                Message::Response(WireResponse {
                    id,
                    batch_size,
                    latency_ns,
                    output,
                })
            }
            TYPE_ERROR => {
                let id = d.u64()?;
                let code = d.u16()?;
                let msg_len = d.u16()? as usize;
                let message = d.string(msg_len)?;
                Message::Error(WireError { id, code, message })
            }
            TYPE_GOODBYE => Message::Goodbye,
            TYPE_HEALTH_REQ => Message::HealthReq,
            TYPE_HEALTH => {
                let draining = d.u8()? != 0;
                let count = d.u16()? as usize;
                let mut tenants = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    let len = d.u16()? as usize;
                    tenants.push(d.string(len)?);
                }
                Message::Health(WireHealth { draining, tenants })
            }
            t => return Err(proto(format!("unknown frame type 0x{t:02x}"))),
        };
        d.finish()?;
        Ok(msg)
    }

    /// Writes this message as one length-prefixed frame.
    ///
    /// # Errors
    ///
    /// Encoding range errors as [`RuntimeError::Protocol`]; transport
    /// failures as [`RuntimeError::Io`].
    pub fn write(&self, w: &mut impl Write) -> Result<(), RuntimeError> {
        write_frame(w, &self.encode()?)
    }

    /// Reads and decodes one frame. `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Same contract as [`read_frame`] plus [`Message::decode`].
    pub fn read(r: &mut impl Read, max_frame: u32) -> Result<Option<Message>, RuntimeError> {
        match read_frame(r, max_frame)? {
            None => Ok(None),
            Some(body) => Message::decode(&body).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_tensor::{init, rng};

    fn roundtrip(msg: &Message) -> Message {
        let body = msg.encode().unwrap();
        Message::decode(&body).unwrap()
    }

    #[test]
    fn frames_roundtrip_bitwise() {
        let mut r = rng::seeded(3);
        let t = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, &mut r);
        let req = Message::Request(WireRequest {
            id: 42,
            tenant: "resnet-a".into(),
            deadline_ms: 0,
            input: t.clone(),
        });
        assert_eq!(roundtrip(&req), req);

        let req = Message::Request(WireRequest {
            id: 43,
            tenant: "resnet-a".into(),
            deadline_ms: 250,
            input: t.clone(),
        });
        assert_eq!(roundtrip(&req), req);

        let resp = Message::Response(WireResponse {
            id: 42,
            batch_size: 8,
            latency_ns: 1_234_567,
            output: t,
        });
        assert_eq!(roundtrip(&resp), resp);

        let err = Message::Error(WireError {
            id: NO_REQUEST,
            code: code::OVERLOADED,
            message: "queue full".into(),
        });
        assert_eq!(roundtrip(&err), err);
        assert_eq!(roundtrip(&Message::Goodbye), Message::Goodbye);
        assert_eq!(roundtrip(&Message::HealthReq), Message::HealthReq);

        let health = Message::Health(WireHealth {
            draining: true,
            tenants: vec!["resnet-a".into(), "vgg-b".into()],
        });
        assert_eq!(roundtrip(&health), health);
        let health = Message::Health(WireHealth {
            draining: false,
            tenants: Vec::new(),
        });
        assert_eq!(roundtrip(&health), health);
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        let is_proto = |r: Result<Message, RuntimeError>| {
            assert!(matches!(r, Err(RuntimeError::Protocol { .. })), "{r:?}");
        };
        is_proto(Message::decode(&[]));
        is_proto(Message::decode(&[0x7f]));
        // Truncated request: claims an 8-byte tenant name, body ends.
        let mut body = vec![TYPE_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&8u16.to_le_bytes());
        is_proto(Message::decode(&body));
        // Dims promising more payload than the frame carries.
        let mut body = vec![TYPE_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(b'a');
        body.push(1); // rank 1
        body.extend_from_slice(&1_000_000u32.to_le_bytes());
        is_proto(Message::decode(&body));
        // Trailing garbage after a well-formed goodbye.
        is_proto(Message::decode(&[TYPE_GOODBYE, 0xaa]));
        // Non-UTF-8 tenant name.
        let mut body = vec![TYPE_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe]);
        body.push(0);
        is_proto(Message::decode(&body));
    }

    #[test]
    fn oversize_and_eof_framing() {
        // Oversize announced length is rejected before allocation.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol { .. }), "{err:?}");

        // Clean EOF at a frame boundary is not an error.
        assert!(read_frame(&mut [].as_slice(), MAX_FRAME).unwrap().is_none());

        // EOF mid-prefix and mid-body are I/O errors.
        let err = read_frame(&mut [1u8, 0].as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, RuntimeError::Io(_)), "{err:?}");
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.push(TYPE_GOODBYE);
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, RuntimeError::Io(_)), "{err:?}");
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        assert_eq!(buf.len(), 6);
        read_hello(&mut buf.as_slice()).unwrap();

        let err = read_hello(&mut b"EPIN\x01\x00".as_slice()).unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol { .. }), "{err:?}");
        let err = read_hello(&mut b"EPIM\x63\x00".as_slice()).unwrap_err();
        assert!(matches!(err, RuntimeError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn error_codes_cover_runtime_errors() {
        assert_eq!(
            error_code(&RuntimeError::Overloaded {
                tenant: Some("a".into()),
                capacity: 1
            }),
            code::OVERLOADED
        );
        assert_eq!(
            error_code(&RuntimeError::UnknownTenant { id: 9 }),
            code::UNKNOWN_TENANT
        );
        assert_eq!(error_code(&RuntimeError::ShuttingDown), code::SHUTTING_DOWN);
        assert_eq!(error_code(&RuntimeError::Timeout), code::TIMEOUT);
        assert_eq!(
            error_code(&RuntimeError::Protocol { reason: "x".into() }),
            code::PROTOCOL
        );
        assert_eq!(
            error_code(&RuntimeError::ExecutionPanicked),
            code::EXECUTION
        );
        assert_eq!(error_code(&RuntimeError::DeadlineExceeded), code::DEADLINE);
        assert_eq!(
            error_code(&RuntimeError::CrashLoop { restarts: 3 }),
            code::EXECUTION,
            "a crash-looped fleet reports the execution failure class"
        );
    }

    #[test]
    fn truncated_health_frame_is_a_protocol_error() {
        // Claims two tenants but carries only one.
        let mut body = vec![TYPE_HEALTH, 1];
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(b'a');
        let r = Message::decode(&body);
        assert!(matches!(r, Err(RuntimeError::Protocol { .. })), "{r:?}");
    }
}
