//! A blocking wire-protocol client with request pipelining.
//!
//! [`Client::infer`] is the one-call convenience; [`Client::submit`] /
//! [`Client::recv_reply`] pipeline many requests over one connection
//! (replies arrive in completion order and correlate by id); and
//! [`Client::split`] separates the two halves onto different threads for
//! open-loop load generation.
//!
//! [`ResilientClient`] wraps a [`Client`] with automatic reconnection:
//! a transport failure triggers a jittered-exponential-backoff
//! reconnect, and every still-unanswered request is resubmitted **with
//! its original id** — the fleet's outputs are deterministic, so a
//! re-executed request returns the same bits, and replies that arrive
//! twice (answered just before the cut, again after the resubmit) are
//! deduplicated by id.

use crate::wire::{self, Message, WireError, WireHealth, WireRequest, WireResponse};
use epim_runtime::RuntimeError;
use epim_tensor::Tensor;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

fn eof() -> RuntimeError {
    RuntimeError::Io(std::sync::Arc::new(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "server closed the connection",
    )))
}

/// A reply to one request: the server's response frame or its typed
/// error frame. Transport and protocol failures surface separately as
/// [`RuntimeError`].
pub type Reply = Result<WireResponse, WireError>;

/// The sending half: encodes and writes request frames.
pub struct ClientSender {
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl ClientSender {
    /// Writes one request frame and returns its id (monotonic from 1).
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; encoding range
    /// violations as [`RuntimeError::Protocol`].
    pub fn submit(&mut self, tenant: &str, input: Tensor) -> Result<u64, RuntimeError> {
        self.submit_with_deadline(tenant, input, 0)
    }

    /// [`ClientSender::submit`] with a relative completion deadline in
    /// milliseconds (`0` = none). The server sheds the request with a
    /// typed `deadline` error frame if it expires before execution
    /// starts.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientSender::submit`].
    pub fn submit_with_deadline(
        &mut self,
        tenant: &str,
        input: Tensor,
        deadline_ms: u32,
    ) -> Result<u64, RuntimeError> {
        let id = self.next_id;
        self.submit_with_id(id, tenant, input, deadline_ms)?;
        Ok(id)
    }

    /// Writes one request frame under a caller-chosen id — the
    /// resubmission path of [`ResilientClient`], which must reuse the
    /// original id across reconnects so replies stay correlatable (and
    /// duplicates detectable). Keeps `next_id` monotonic past `id`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientSender::submit`].
    pub fn submit_with_id(
        &mut self,
        id: u64,
        tenant: &str,
        input: Tensor,
        deadline_ms: u32,
    ) -> Result<(), RuntimeError> {
        self.next_id = self.next_id.max(id.wrapping_add(1));
        Message::Request(WireRequest {
            id,
            tenant: tenant.to_string(),
            deadline_ms,
            input,
        })
        .write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Writes one health probe frame; the server answers with a
    /// [`WireHealth`] frame on the reply stream.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn probe_health(&mut self) -> Result<(), RuntimeError> {
        Message::HealthReq.write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends the orderly goodbye frame (the server will answer
    /// everything in flight, reply `Goodbye` and close).
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn goodbye(mut self) -> Result<(), RuntimeError> {
        Message::Goodbye.write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// The receiving half: reads and decodes reply frames.
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
    max_frame: u32,
}

impl ClientReceiver {
    /// Reads the next reply frame (response or typed error).
    ///
    /// # Errors
    ///
    /// Transport failures (including an unexpected close) as
    /// [`RuntimeError::Io`]; a malformed or unexpected frame — anything
    /// but a response, error or goodbye — as [`RuntimeError::Protocol`].
    /// A `Goodbye` from the server also decodes to
    /// [`RuntimeError::Protocol`] here: it means the server closed while
    /// the caller still expected replies.
    pub fn recv_reply(&mut self) -> Result<Reply, RuntimeError> {
        match Message::read(&mut self.reader, self.max_frame)? {
            None => Err(eof()),
            Some(Message::Response(resp)) => Ok(Ok(resp)),
            Some(Message::Error(err)) => Ok(Err(err)),
            Some(Message::Goodbye) => Err(RuntimeError::Protocol {
                reason: "server said goodbye while replies were still expected".to_string(),
            }),
            Some(other) => Err(RuntimeError::Protocol {
                reason: format!("unexpected frame while awaiting a reply: {other:?}"),
            }),
        }
    }

    /// Reads the next frame, expecting the server's health snapshot.
    /// Only valid when no inference reply is pending ahead of it (health
    /// frames share the reply stream).
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; any frame other than
    /// `Health` as [`RuntimeError::Protocol`].
    pub fn recv_health(&mut self) -> Result<WireHealth, RuntimeError> {
        match Message::read(&mut self.reader, self.max_frame)? {
            None => Err(eof()),
            Some(Message::Health(health)) => Ok(health),
            Some(other) => Err(RuntimeError::Protocol {
                reason: format!("expected a health frame, got {other:?}"),
            }),
        }
    }

    /// Reads until the server's `Goodbye` (discarding any stray
    /// replies), confirming an orderly close.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; an unexpected close
    /// before `Goodbye` as [`RuntimeError::Io`] (unexpected EOF).
    pub fn await_goodbye(mut self) -> Result<(), RuntimeError> {
        loop {
            match Message::read(&mut self.reader, self.max_frame)? {
                Some(Message::Goodbye) => return Ok(()),
                Some(_) => continue,
                None => return Err(eof()),
            }
        }
    }
}

/// A connected wire-protocol client.
pub struct Client {
    sender: ClientSender,
    receiver: ClientReceiver,
}

impl Client {
    /// Connects to `addr` and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; a bad server hello as
    /// [`RuntimeError::Protocol`].
    pub fn connect(addr: &str) -> Result<Self, RuntimeError> {
        Self::connect_with_max_frame(addr, wire::MAX_FRAME)
    }

    /// [`Client::connect`] with a custom reply-frame size cap.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::connect`].
    pub fn connect_with_max_frame(addr: &str, max_frame: u32) -> Result<Self, RuntimeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut sender = ClientSender {
            writer: BufWriter::new(write_half),
            next_id: 1,
        };
        let mut receiver = ClientReceiver {
            reader: BufReader::new(stream),
            max_frame,
        };
        wire::write_hello(&mut sender.writer)?;
        wire::read_hello(&mut receiver.reader)?;
        Ok(Client { sender, receiver })
    }

    /// Pipelines: writes one request frame without waiting for a reply.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientSender::submit`].
    pub fn submit(&mut self, tenant: &str, input: Tensor) -> Result<u64, RuntimeError> {
        self.sender.submit(tenant, input)
    }

    /// [`Client::submit`] with a relative deadline in milliseconds
    /// (`0` = none).
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientSender::submit`].
    pub fn submit_with_deadline(
        &mut self,
        tenant: &str,
        input: Tensor,
        deadline_ms: u32,
    ) -> Result<u64, RuntimeError> {
        self.sender.submit_with_deadline(tenant, input, deadline_ms)
    }

    /// Reads the next reply (in the server's completion order).
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientReceiver::recv_reply`].
    pub fn recv_reply(&mut self) -> Result<Reply, RuntimeError> {
        self.receiver.recv_reply()
    }

    /// One health round trip: probes the server and reads its snapshot.
    /// Only valid when no inference reply is pending on this client.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; a non-health reply as
    /// [`RuntimeError::Protocol`].
    pub fn health(&mut self) -> Result<WireHealth, RuntimeError> {
        self.sender.probe_health()?;
        self.receiver.recv_health()
    }

    /// One round trip: submit, then block for this request's reply.
    /// Only valid when no other request is in flight on this client
    /// (otherwise an earlier request's reply may arrive first; use
    /// [`Client::submit`] / [`Client::recv_reply`] and correlate ids).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures as [`RuntimeError`]; a reply that
    /// answers a different id as [`RuntimeError::Protocol`].
    pub fn infer(&mut self, tenant: &str, input: Tensor) -> Result<Reply, RuntimeError> {
        let id = self.submit(tenant, input)?;
        let reply = self.recv_reply()?;
        let got = match &reply {
            Ok(resp) => resp.id,
            Err(err) => err.id,
        };
        if got != id && got != wire::NO_REQUEST {
            return Err(RuntimeError::Protocol {
                reason: format!("reply for id {got} while only {id} was in flight"),
            });
        }
        Ok(reply)
    }

    /// Splits into independently-owned sender and receiver halves, for
    /// open-loop drivers that pace submissions on one thread and collect
    /// replies on another.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }

    /// Orderly close: goodbye, drain, confirm the server's goodbye.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn close(self) -> Result<(), RuntimeError> {
        let (sender, receiver) = self.split();
        sender.goodbye()?;
        receiver.await_goodbye()
    }
}

/// splitmix64 — a tiny, high-quality mixer for deterministic backoff
/// jitter (keeps retry storms from synchronizing without pulling a
/// clock or an RNG dependency into the client).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Client`] that survives connection loss.
///
/// On any transport failure — mid-submit or mid-receive — it reconnects
/// with jittered exponential backoff and resubmits every still-unanswered
/// request **under its original id**. The fleet's execution is
/// deterministic, so a re-executed request produces bit-identical output;
/// a reply that arrives twice (once just before the cut, once after the
/// resubmission) is dropped by id. The visible contract: every submitted
/// request eventually yields exactly one reply (response or typed error),
/// or [`ResilientClient::recv_reply`] returns the final transport error
/// after the reconnect budget is exhausted.
pub struct ResilientClient {
    addr: String,
    max_frame: u32,
    client: Option<Client>,
    next_id: u64,
    /// Unanswered requests by id: `(tenant, input, deadline_ms)`.
    inflight: HashMap<u64, (String, Tensor, u32)>,
    reconnect_budget: u32,
    backoff_base: Duration,
    jitter_seed: u64,
}

impl ResilientClient {
    /// Connects to `addr` with default resilience settings (8
    /// reconnects, 10 ms backoff base).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::connect`] — the *initial* connection
    /// is not retried; resilience covers an established session.
    pub fn connect(addr: &str) -> Result<Self, RuntimeError> {
        let client = Client::connect(addr)?;
        Ok(ResilientClient {
            addr: addr.to_string(),
            max_frame: wire::MAX_FRAME,
            client: Some(client),
            next_id: 1,
            inflight: HashMap::new(),
            reconnect_budget: 8,
            backoff_base: Duration::from_millis(10),
            jitter_seed: 0x45_50_49_4D, // "EPIM"
        })
    }

    /// Caps how many reconnects one failure may consume before the
    /// transport error is surfaced (builder-style).
    pub fn with_reconnect_budget(mut self, budget: u32) -> Self {
        self.reconnect_budget = budget;
        self
    }

    /// Sets the backoff base: attempt `k` sleeps
    /// `base × 2^k` plus a deterministic jitter of up to half that
    /// (builder-style).
    pub fn with_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Seeds the deterministic backoff jitter (builder-style) — distinct
    /// seeds keep a fleet of reconnecting clients from thundering back
    /// in lockstep.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// How many requests are currently awaiting replies.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.backoff_base.saturating_mul(1u32 << attempt.min(6));
        let jitter_ns = mix64(self.jitter_seed ^ u64::from(attempt))
            % (exp.as_nanos().max(1) as u64 / 2).max(1);
        exp + Duration::from_nanos(jitter_ns)
    }

    /// Reconnects and resubmits everything in flight under the original
    /// ids. Consumes the reconnect budget; returns the last error when
    /// it runs out.
    fn reconnect_and_resubmit(&mut self, last: RuntimeError) -> Result<(), RuntimeError> {
        self.client = None;
        let mut last = last;
        for attempt in 0..self.reconnect_budget {
            std::thread::sleep(self.backoff(attempt));
            let mut client = match Client::connect_with_max_frame(&self.addr, self.max_frame) {
                Ok(c) => c,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            client.sender.next_id = self.next_id;
            // Resubmit in id order so the server sees a deterministic
            // stream regardless of HashMap iteration.
            let mut ids: Vec<u64> = self.inflight.keys().copied().collect();
            ids.sort_unstable();
            let mut failed = None;
            for id in ids {
                let (tenant, input, deadline_ms) = self.inflight[&id].clone();
                if let Err(e) = client
                    .sender
                    .submit_with_id(id, &tenant, input, deadline_ms)
                {
                    failed = Some(e);
                    break;
                }
            }
            match failed {
                Some(e) => last = e,
                None => {
                    self.client = Some(client);
                    return Ok(());
                }
            }
        }
        Err(last)
    }

    fn client(&mut self) -> Result<&mut Client, RuntimeError> {
        if self.client.is_none() {
            self.reconnect_and_resubmit(eof())?;
        }
        Ok(self.client.as_mut().expect("reconnect succeeded"))
    }

    /// Submits one request, reconnecting (and resubmitting everything in
    /// flight) if the transport fails mid-write.
    ///
    /// # Errors
    ///
    /// The last transport error once the reconnect budget is exhausted;
    /// encoding range violations as [`RuntimeError::Protocol`].
    pub fn submit(&mut self, tenant: &str, input: Tensor) -> Result<u64, RuntimeError> {
        self.submit_with_deadline(tenant, input, 0)
    }

    /// [`ResilientClient::submit`] with a relative deadline in
    /// milliseconds (`0` = none).
    ///
    /// # Errors
    ///
    /// Same contract as [`ResilientClient::submit`].
    pub fn submit_with_deadline(
        &mut self,
        tenant: &str,
        input: Tensor,
        deadline_ms: u32,
    ) -> Result<u64, RuntimeError> {
        let id = self.next_id;
        self.next_id += 1;
        // Record before the write: a failure mid-write leaves the
        // request in flight for the resubmission pass.
        self.inflight
            .insert(id, (tenant.to_string(), input.clone(), deadline_ms));
        loop {
            let result =
                self.client()?
                    .sender
                    .submit_with_id(id, tenant, input.clone(), deadline_ms);
            match result {
                Ok(()) => return Ok(id),
                Err(e @ RuntimeError::Protocol { .. }) => {
                    // Encoding failures are deterministic; retrying or
                    // resubmitting the same frame cannot help.
                    self.inflight.remove(&id);
                    return Err(e);
                }
                Err(e) => self.reconnect_and_resubmit(e)?,
            }
        }
    }

    /// Reads the next reply for a still-unanswered request, reconnecting
    /// (and resubmitting) on transport failure and dropping duplicate
    /// replies by id.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] when nothing is in flight, when the
    /// server violates the protocol, or the last transport error once
    /// the reconnect budget is exhausted.
    pub fn recv_reply(&mut self) -> Result<Reply, RuntimeError> {
        if self.inflight.is_empty() {
            return Err(RuntimeError::Protocol {
                reason: "recv_reply with no requests in flight".to_string(),
            });
        }
        loop {
            let result = self.client()?.receiver.recv_reply();
            match result {
                Ok(reply) => {
                    let id = match &reply {
                        Ok(resp) => resp.id,
                        Err(err) => err.id,
                    };
                    // A connection-level error frame (id == NO_REQUEST)
                    // answers no particular request; surface it as-is.
                    if id == wire::NO_REQUEST {
                        return Ok(reply);
                    }
                    if self.inflight.remove(&id).is_some() {
                        return Ok(reply);
                    }
                    // Duplicate: this id was answered on an earlier
                    // connection just before it broke. Drop and read on.
                }
                Err(e @ RuntimeError::Protocol { .. }) => return Err(e),
                Err(e) => self.reconnect_and_resubmit(e)?,
            }
        }
    }

    /// Orderly close. In-flight requests are abandoned (their inputs are
    /// dropped); call [`ResilientClient::recv_reply`] to drain first if
    /// every answer matters.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn close(mut self) -> Result<(), RuntimeError> {
        match self.client.take() {
            Some(client) => client.close(),
            None => Ok(()),
        }
    }
}
