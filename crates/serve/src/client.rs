//! A blocking wire-protocol client with request pipelining.
//!
//! [`Client::infer`] is the one-call convenience; [`Client::submit`] /
//! [`Client::recv_reply`] pipeline many requests over one connection
//! (replies arrive in completion order and correlate by id); and
//! [`Client::split`] separates the two halves onto different threads for
//! open-loop load generation.

use crate::wire::{self, Message, WireError, WireRequest, WireResponse};
use epim_runtime::RuntimeError;
use epim_tensor::Tensor;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

fn eof() -> RuntimeError {
    RuntimeError::Io(std::sync::Arc::new(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "server closed the connection",
    )))
}

/// A reply to one request: the server's response frame or its typed
/// error frame. Transport and protocol failures surface separately as
/// [`RuntimeError`].
pub type Reply = Result<WireResponse, WireError>;

/// The sending half: encodes and writes request frames.
pub struct ClientSender {
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl ClientSender {
    /// Writes one request frame and returns its id (monotonic from 1).
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; encoding range
    /// violations as [`RuntimeError::Protocol`].
    pub fn submit(&mut self, tenant: &str, input: Tensor) -> Result<u64, RuntimeError> {
        let id = self.next_id;
        self.next_id += 1;
        Message::Request(WireRequest {
            id,
            tenant: tenant.to_string(),
            input,
        })
        .write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Sends the orderly goodbye frame (the server will answer
    /// everything in flight, reply `Goodbye` and close).
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn goodbye(mut self) -> Result<(), RuntimeError> {
        Message::Goodbye.write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// The receiving half: reads and decodes reply frames.
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
    max_frame: u32,
}

impl ClientReceiver {
    /// Reads the next reply frame (response or typed error).
    ///
    /// # Errors
    ///
    /// Transport failures (including an unexpected close) as
    /// [`RuntimeError::Io`]; a malformed or unexpected frame — anything
    /// but a response, error or goodbye — as [`RuntimeError::Protocol`].
    /// A `Goodbye` from the server also decodes to
    /// [`RuntimeError::Protocol`] here: it means the server closed while
    /// the caller still expected replies.
    pub fn recv_reply(&mut self) -> Result<Reply, RuntimeError> {
        match Message::read(&mut self.reader, self.max_frame)? {
            None => Err(eof()),
            Some(Message::Response(resp)) => Ok(Ok(resp)),
            Some(Message::Error(err)) => Ok(Err(err)),
            Some(Message::Goodbye) => Err(RuntimeError::Protocol {
                reason: "server said goodbye while replies were still expected".to_string(),
            }),
            Some(Message::Request(_)) => Err(RuntimeError::Protocol {
                reason: "server sent a request frame".to_string(),
            }),
        }
    }

    /// Reads until the server's `Goodbye` (discarding any stray
    /// replies), confirming an orderly close.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; an unexpected close
    /// before `Goodbye` as [`RuntimeError::Io`] (unexpected EOF).
    pub fn await_goodbye(mut self) -> Result<(), RuntimeError> {
        loop {
            match Message::read(&mut self.reader, self.max_frame)? {
                Some(Message::Goodbye) => return Ok(()),
                Some(_) => continue,
                None => return Err(eof()),
            }
        }
    }
}

/// A connected wire-protocol client.
pub struct Client {
    sender: ClientSender,
    receiver: ClientReceiver,
}

impl Client {
    /// Connects to `addr` and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`]; a bad server hello as
    /// [`RuntimeError::Protocol`].
    pub fn connect(addr: &str) -> Result<Self, RuntimeError> {
        Self::connect_with_max_frame(addr, wire::MAX_FRAME)
    }

    /// [`Client::connect`] with a custom reply-frame size cap.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::connect`].
    pub fn connect_with_max_frame(addr: &str, max_frame: u32) -> Result<Self, RuntimeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut sender = ClientSender {
            writer: BufWriter::new(write_half),
            next_id: 1,
        };
        let mut receiver = ClientReceiver {
            reader: BufReader::new(stream),
            max_frame,
        };
        wire::write_hello(&mut sender.writer)?;
        wire::read_hello(&mut receiver.reader)?;
        Ok(Client { sender, receiver })
    }

    /// Pipelines: writes one request frame without waiting for a reply.
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientSender::submit`].
    pub fn submit(&mut self, tenant: &str, input: Tensor) -> Result<u64, RuntimeError> {
        self.sender.submit(tenant, input)
    }

    /// Reads the next reply (in the server's completion order).
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientReceiver::recv_reply`].
    pub fn recv_reply(&mut self) -> Result<Reply, RuntimeError> {
        self.receiver.recv_reply()
    }

    /// One round trip: submit, then block for this request's reply.
    /// Only valid when no other request is in flight on this client
    /// (otherwise an earlier request's reply may arrive first; use
    /// [`Client::submit`] / [`Client::recv_reply`] and correlate ids).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures as [`RuntimeError`]; a reply that
    /// answers a different id as [`RuntimeError::Protocol`].
    pub fn infer(&mut self, tenant: &str, input: Tensor) -> Result<Reply, RuntimeError> {
        let id = self.submit(tenant, input)?;
        let reply = self.recv_reply()?;
        let got = match &reply {
            Ok(resp) => resp.id,
            Err(err) => err.id,
        };
        if got != id && got != wire::NO_REQUEST {
            return Err(RuntimeError::Protocol {
                reason: format!("reply for id {got} while only {id} was in flight"),
            });
        }
        Ok(reply)
    }

    /// Splits into independently-owned sender and receiver halves, for
    /// open-loop drivers that pace submissions on one thread and collect
    /// replies on another.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }

    /// Orderly close: goodbye, drain, confirm the server's goodbye.
    ///
    /// # Errors
    ///
    /// Transport failures as [`RuntimeError::Io`].
    pub fn close(self) -> Result<(), RuntimeError> {
        let (sender, receiver) = self.split();
        sender.goodbye()?;
        receiver.await_goodbye()
    }
}
