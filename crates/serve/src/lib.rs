//! # epim-serve
//!
//! The network serving front-end: a TCP wire protocol over the
//! multi-tenant inference runtime, built entirely on `std` (no async
//! runtime, no external networking crates).
//!
//! Layers:
//!
//! - [`wire`] — the length-prefixed binary protocol: `"EPIM"` + version
//!   hello, then framed `Request` / `Response` / `Error` / `Goodbye`
//!   messages with typed error codes, oversize and malformed-frame
//!   rejection.
//! - [`fleet`] — the model zoo a server exposes as tenants:
//!   deterministic seeds and a pinned analog model make any two builds of
//!   the same [`fleet::FleetConfig`] bit-identical, which is what the
//!   load generator's `--check` mode and the bench identity gate compare
//!   against.
//! - [`mux`] — the waker-driven completion multiplexer: one writer
//!   thread parks on a condvar while polling every in-flight
//!   [`epim_runtime::Pending`] as a `Future`; the scheduler's delivery
//!   wakes it. No busy-polling anywhere on the serving path.
//! - [`server`] — accept loop, per-connection reader/writer session
//!   threads mapping wire tenants onto the
//!   [`epim_runtime::InferService`] surface, and graceful drain (stop
//!   accepting, answer in-flight, goodbye, join).
//! - [`client`] — a blocking pipelining client, splittable into
//!   sender/receiver halves for open-loop load generation, plus
//!   [`client::ResilientClient`]: automatic reconnection with jittered
//!   exponential backoff and id-stable resubmission of unanswered
//!   requests.
//!
//! Binaries: `epim_serve` (the server) and `load_gen` (closed- or
//! open-loop load with QPS + p50/p99/p999 reporting and a `--check` mode
//! asserting wire outputs are bit-identical to an in-process fleet).

#![deny(missing_docs)]

pub mod client;
pub mod fleet;
pub mod mux;
pub mod server;
pub mod wire;

pub use client::{Client, ClientReceiver, ClientSender, Reply, ResilientClient};
pub use fleet::{FleetConfig, TenantSpec};
pub use mux::Mux;
pub use server::{ServeReport, Server};
pub use wire::{Message, WireError, WireHealth, WireRequest, WireResponse};
