//! The TCP inference server.
//!
//! ```text
//! epim_serve [--listen ADDR] [--config FLEET.toml] [--workers N]
//!            [--max-frame BYTES] [--max-conns N] [--idle-ms MS]
//!            [--watch-stdin]
//! ```
//!
//! Serves the fleet (the default three-tenant zoo unless `--config`
//! points at a fleet file — see `epim_serve::fleet::FleetConfig::parse`
//! for the grammar) on `ADDR` (default `127.0.0.1:7878`). Prints one
//! `listening on ...` line to stdout once ready, so scripts can wait for
//! it. Drains gracefully on SIGTERM/SIGINT — and, with `--watch-stdin`,
//! when stdin reaches EOF (opt-in because detached processes start with
//! a closed stdin).

use epim_serve::fleet::FleetConfig;
use epim_serve::server::Server;
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; bridged onto the server's drain flag by a
/// watcher thread (only async-signal-safe work happens in the handler).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // The workspace vendors no libc crate; SIGTERM/SIGINT numbers are
    // POSIX-stable and `signal(2)` takes a bare function pointer.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

struct Args {
    listen: String,
    config: Option<String>,
    workers: Option<usize>,
    max_frame: Option<u32>,
    max_conns: Option<usize>,
    idle_ms: Option<u64>,
    watch_stdin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7878".to_string(),
        config: None,
        workers: None,
        max_frame: None,
        max_conns: None,
        idle_ms: None,
        watch_stdin: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} wants a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--config" => args.config = Some(value("--config")?),
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers wants an integer".to_string())?,
                )
            }
            "--max-frame" => {
                args.max_frame = Some(
                    value("--max-frame")?
                        .parse()
                        .map_err(|_| "--max-frame wants an integer".to_string())?,
                )
            }
            "--max-conns" => {
                args.max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|_| "--max-conns wants an integer".to_string())?,
                )
            }
            "--idle-ms" => {
                args.idle_ms = Some(
                    value("--idle-ms")?
                        .parse()
                        .map_err(|_| "--idle-ms wants an integer".to_string())?,
                )
            }
            "--watch-stdin" => args.watch_stdin = true,
            "--help" | "-h" => {
                println!(
                    "usage: epim_serve [--listen ADDR] [--config FLEET.toml] \
                     [--workers N] [--max-frame BYTES] [--max-conns N] \
                     [--idle-ms MS] [--watch-stdin]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("epim_serve: {e}");
            std::process::exit(2);
        }
    };
    let mut fleet_cfg = match &args.config {
        None => FleetConfig::default_zoo(),
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| FleetConfig::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("epim_serve: fleet config `{path}`: {e}");
                std::process::exit(2);
            }
        },
    };
    if let Some(w) = args.workers {
        fleet_cfg.workers = w.max(1);
    }
    let engine = match fleet_cfg.build() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("epim_serve: building fleet: {e}");
            std::process::exit(1);
        }
    };
    let mut server = match Server::bind(engine, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("epim_serve: binding {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    if let Some(mf) = args.max_frame {
        server = server.with_max_frame(mf);
    }
    if let Some(mc) = args.max_conns {
        server = server.with_max_connections(mc);
    }
    if let Some(ms) = args.idle_ms {
        server = server.with_idle_timeout(Duration::from_millis(ms));
    }
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    println!(
        "epim_serve: listening on {addr} tenants=[{}] workers={}",
        server.engine().tenant_names().join(", "),
        fleet_cfg.workers,
    );
    // Make the readiness line visible to pipes immediately.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    install_signal_handlers();
    let flag = server.shutdown_flag();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            flag.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    if args.watch_stdin {
        let flag = server.shutdown_flag();
        std::thread::spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            flag.store(true, Ordering::SeqCst);
        });
    }

    match server.serve() {
        Ok(report) => {
            println!(
                "epim_serve: drained cleanly connections={} requests={} error_frames={} \
                 rejected={} idle_disconnects={}",
                report.connections,
                report.requests,
                report.error_frames,
                report.connections_rejected,
                report.idle_disconnects
            );
        }
        Err(e) => {
            eprintln!("epim_serve: serve failed: {e}");
            std::process::exit(1);
        }
    }
}
