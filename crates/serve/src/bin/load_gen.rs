//! Load generator for the TCP serving front-end.
//!
//! ```text
//! load_gen [--connect ADDR] [--connections N] [--requests M]
//!          [--rate QPS] [--config FLEET.toml] [--seed S]
//!          [--deadline-ms MS] [--check]
//! ```
//!
//! Opens `N` connections and drives `M` requests over each — closed-loop
//! (next request after the previous reply) by default, or open-loop at a
//! fixed aggregate submission rate with `--rate` (pipelined: a sender
//! thread paces submissions while a receiver thread collects replies).
//! Requests round-robin over the fleet's tenants with deterministic
//! seeded inputs. Reports sustained QPS and p50/p99/p999 end-to-end
//! latency, as a human summary plus one machine-readable JSON line.
//!
//! `--deadline-ms` attaches a relative completion deadline to every
//! request; replies shed server-side come back as typed `deadline` error
//! frames. Typed error frames are counted per class (`overloaded`,
//! `deadline`, `protocol`, `other`) separately from transport failures
//! in both the human summary and the JSON line.
//!
//! `--check` rebuilds the same fleet in-process (the weights are
//! deterministically seeded, so server and checker agree bit-for-bit)
//! and asserts every wire output equals the in-process output exactly;
//! any mismatch or error frame exits nonzero.

use epim_serve::client::Client;
use epim_serve::fleet::{FleetConfig, INPUT_SHAPE};
use epim_serve::wire;
use epim_tensor::{init, rng, Tensor};
use std::time::{Duration, Instant};

struct Args {
    connect: String,
    connections: usize,
    requests: usize,
    rate: f64,
    config: Option<String>,
    seed: u64,
    deadline_ms: u32,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: "127.0.0.1:7878".to_string(),
        connections: 1,
        requests: 32,
        rate: 0.0,
        config: None,
        seed: 1000,
        deadline_ms: 0,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} wants a value"));
        match flag.as_str() {
            "--connect" => args.connect = value("--connect")?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "--connections wants an integer".to_string())?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests wants an integer".to_string())?
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate wants a number".to_string())?
            }
            "--config" => args.config = Some(value("--config")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants an integer".to_string())?
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms wants an integer".to_string())?
            }
            "--check" => args.check = true,
            "--help" | "-h" => {
                println!(
                    "usage: load_gen [--connect ADDR] [--connections N] [--requests M] \
                     [--rate QPS] [--config FLEET.toml] [--seed S] \
                     [--deadline-ms MS] [--check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.connections == 0 || args.requests == 0 {
        return Err("--connections and --requests must be positive".to_string());
    }
    Ok(args)
}

/// One completed request's outcome.
struct Sample {
    latency: Duration,
    /// Index into this connection's input list (for `--check`).
    input_idx: usize,
    output: Option<Tensor>,
    error: Option<(u16, String)>,
}

/// The deterministic workload for one connection: inputs and the tenant
/// each one targets. Shared verbatim by the driver and the checker.
fn connection_workload(
    tenants: &[String],
    requests: usize,
    seed: u64,
    conn: usize,
) -> Vec<(String, Tensor)> {
    let mut r = rng::seeded(seed.wrapping_add(conn as u64));
    (0..requests)
        .map(|k| {
            let tenant = tenants[(conn + k) % tenants.len()].clone();
            (tenant, init::uniform(&INPUT_SHAPE, -1.0, 1.0, &mut r))
        })
        .collect()
}

fn drive_closed_loop(
    addr: &str,
    workload: &[(String, Tensor)],
    deadline_ms: u32,
) -> Result<Vec<Sample>, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut samples = Vec::with_capacity(workload.len());
    for (k, (tenant, input)) in workload.iter().enumerate() {
        let started = Instant::now();
        client
            .submit_with_deadline(tenant, input.clone(), deadline_ms)
            .map_err(|e| format!("request {k}: {e}"))?;
        let reply = client
            .recv_reply()
            .map_err(|e| format!("request {k}: {e}"))?;
        let latency = started.elapsed();
        samples.push(match reply {
            Ok(resp) => Sample {
                latency,
                input_idx: k,
                output: Some(resp.output),
                error: None,
            },
            Err(err) => Sample {
                latency,
                input_idx: k,
                output: None,
                error: Some((err.code, err.message)),
            },
        });
    }
    client.close().map_err(|e| format!("close: {e}"))?;
    Ok(samples)
}

fn drive_open_loop(
    addr: &str,
    workload: Vec<(String, Tensor)>,
    interval: Duration,
    deadline_ms: u32,
) -> Result<Vec<Sample>, String> {
    let client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (mut sender, mut receiver) = client.split();
    let n = workload.len();
    // Ids are monotonic from 1 in submission order, so id -> input index
    // and submit timestamp are plain vectors under one lock.
    let send_times = std::sync::Arc::new(std::sync::Mutex::new(vec![None::<Instant>; n]));
    let times_tx = std::sync::Arc::clone(&send_times);

    std::thread::scope(|scope| {
        let send = scope.spawn(move || -> Result<_, String> {
            let epoch = Instant::now();
            for (k, (tenant, input)) in workload.into_iter().enumerate() {
                let due = epoch + interval.mul_f64(k as f64);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                times_tx.lock().unwrap()[k] = Some(Instant::now());
                sender
                    .submit_with_deadline(&tenant, input, deadline_ms)
                    .map_err(|e| format!("submit {k}: {e}"))?;
            }
            Ok(sender)
        });
        let recv = scope.spawn(move || -> Result<Vec<Sample>, String> {
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let reply = receiver.recv_reply().map_err(|e| format!("recv: {e}"))?;
                let done = Instant::now();
                let (id, output, error) = match reply {
                    Ok(resp) => (resp.id, Some(resp.output), None),
                    Err(err) => (err.id, None, Some((err.code, err.message))),
                };
                let k = (id.wrapping_sub(1)) as usize;
                let sent = send_times.lock().unwrap().get(k).copied().flatten();
                let latency = sent
                    .map(|t0| done.duration_since(t0))
                    .unwrap_or(Duration::ZERO);
                samples.push(Sample {
                    latency,
                    input_idx: k,
                    output,
                    error,
                });
            }
            // All replies are in; confirm the orderly close.
            receiver
                .await_goodbye()
                .map_err(|e| format!("goodbye: {e}"))?;
            Ok(samples)
        });
        // Goodbye goes out only after the last submission; the receiver
        // drains every reply and then the server's goodbye.
        let sender = send.join().expect("sender thread panicked")?;
        sender.goodbye().map_err(|e| format!("goodbye: {e}"))?;
        recv.join().expect("receiver thread panicked")
    })
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("load_gen: {e}");
            std::process::exit(2);
        }
    };
    let fleet_cfg = match &args.config {
        None => FleetConfig::default_zoo(),
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| FleetConfig::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("load_gen: fleet config `{path}`: {e}");
                std::process::exit(2);
            }
        },
    };
    let tenants: Vec<String> = fleet_cfg.tenants.iter().map(|t| t.name.clone()).collect();
    let interval = if args.rate > 0.0 {
        // The aggregate rate spreads evenly over the connections.
        Some(Duration::from_secs_f64(args.connections as f64 / args.rate))
    } else {
        None
    };

    let started = Instant::now();
    let per_conn: Vec<Result<Vec<Sample>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|conn| {
                let addr = args.connect.clone();
                let workload = connection_workload(&tenants, args.requests, args.seed, conn);
                let deadline_ms = args.deadline_ms;
                scope.spawn(move || match interval {
                    None => drive_closed_loop(&addr, &workload, deadline_ms),
                    Some(iv) => drive_open_loop(&addr, workload, iv, deadline_ms),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut samples_by_conn: Vec<Vec<Sample>> = Vec::with_capacity(per_conn.len());
    let mut transport_failures = 0u64;
    for (conn, result) in per_conn.into_iter().enumerate() {
        match result {
            Ok(samples) => samples_by_conn.push(samples),
            Err(e) => {
                // A transport failure (reset, refused, mid-frame EOF) is
                // a different failure class than a typed error frame:
                // the server never answered. Count it; an empty sample
                // list keeps `--check` indexing consistent.
                eprintln!("load_gen: connection {conn}: transport failure: {e}");
                transport_failures += 1;
                samples_by_conn.push(Vec::new());
            }
        }
    }
    if transport_failures > 0 && args.check {
        eprintln!(
            "load_gen: check FAILED: {transport_failures} connection(s) lost to transport failures"
        );
        std::process::exit(1);
    }

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    let (mut err_overloaded, mut err_deadline, mut err_protocol, mut err_other) =
        (0u64, 0u64, 0u64, 0u64);
    for samples in &samples_by_conn {
        for s in samples {
            completed += 1;
            if let Some((code, message)) = &s.error {
                errors += 1;
                match *code {
                    wire::code::OVERLOADED => err_overloaded += 1,
                    wire::code::DEADLINE => err_deadline += 1,
                    wire::code::PROTOCOL => err_protocol += 1,
                    _ => err_other += 1,
                }
                eprintln!("load_gen: error frame code={code}: {message}");
            }
            latencies_ms.push(s.latency.as_secs_f64() * 1e3);
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let qps = completed as f64 / elapsed.as_secs_f64();
    let p50 = percentile_ms(&latencies_ms, 50.0);
    let p99 = percentile_ms(&latencies_ms, 99.0);
    let p999 = percentile_ms(&latencies_ms, 99.9);

    let mut check_status = "skipped";
    if args.check {
        check_status = "ok";
        let engine = match fleet_cfg.build() {
            Ok(e) => e,
            Err(e) => {
                eprintln!("load_gen: building check fleet: {e}");
                std::process::exit(1);
            }
        };
        let mut compared = 0u64;
        for (conn, samples) in samples_by_conn.iter().enumerate() {
            let workload = connection_workload(&tenants, args.requests, args.seed, conn);
            for s in samples {
                let (tenant, input) = &workload[s.input_idx];
                let Some(wire_out) = &s.output else {
                    eprintln!(
                        "load_gen: check FAILED: connection {conn} request {} got an error frame",
                        s.input_idx
                    );
                    std::process::exit(1);
                };
                let tid = engine.tenant_id(tenant).expect("checker fleet has tenant");
                let want = match engine.infer(tid, input.clone()) {
                    Ok(inf) => inf.output,
                    Err(e) => {
                        eprintln!("load_gen: check inference failed: {e}");
                        std::process::exit(1);
                    }
                };
                if wire_out.shape() != want.shape() || wire_out.data() != want.data() {
                    eprintln!(
                        "load_gen: check FAILED: connection {conn} request {} differs from \
                         in-process output (tenant `{tenant}`)",
                        s.input_idx
                    );
                    std::process::exit(1);
                }
                compared += 1;
            }
        }
        println!("load_gen: check OK — {compared} outputs bit-identical to in-process fleet");
    }

    println!(
        "load_gen: {completed} requests over {} connection(s) in {:.3}s — \
         {qps:.1} QPS, latency p50={p50:.3}ms p99={p99:.3}ms p999={p999:.3}ms, \
         {errors} error frames (overloaded={err_overloaded} deadline={err_deadline} \
         protocol={err_protocol} other={err_other}), {transport_failures} transport failures",
        args.connections,
        elapsed.as_secs_f64(),
    );
    println!(
        "{{\"qps\":{qps:.3},\"p50_ms\":{p50:.4},\"p99_ms\":{p99:.4},\"p999_ms\":{p999:.4},\
         \"requests\":{completed},\"errors\":{errors},\
         \"errors_overloaded\":{err_overloaded},\"errors_deadline\":{err_deadline},\
         \"errors_protocol\":{err_protocol},\"errors_other\":{err_other},\
         \"transport_failures\":{transport_failures},\
         \"elapsed_s\":{:.3},\"check\":\"{check_status}\"}}",
        elapsed.as_secs_f64(),
    );
    if errors > 0 && args.check {
        std::process::exit(1);
    }
}
