//! The TCP serving front-end: accept loop, per-connection session
//! threads and graceful drain.
//!
//! Each accepted connection gets two threads. The **reader** decodes
//! request frames, resolves the wire tenant name against the fleet and
//! submits through the non-blocking [`InferService`] path — tagging every
//! submission with the connection id, which the scheduler threads into
//! its `Enqueue` trace spans — then hands the in-flight [`Pending`] to
//! the **writer**. The writer multiplexes all of the connection's
//! in-flight requests through a [`Mux`] (waker-parked, never
//! busy-polling) and streams responses back in completion order; request
//! ids, not arrival order, correlate replies. A full tenant queue turns
//! into a typed `overloaded` error frame; a malformed frame turns into a
//! `protocol` error frame and a close.
//!
//! Drain: setting the shutdown flag (SIGTERM in the binary, or
//! [`Server::shutdown_flag`] in-process) stops the accept loop, shuts
//! down the read half of every live connection (the reader sees EOF and
//! stops taking new work), lets every in-flight request finish and be
//! answered, sends `Goodbye` frames and joins every session thread
//! before [`Server::serve`] returns.

use crate::mux::Mux;
use crate::wire::{self, Message, WireError, WireResponse};
use epim_runtime::{InferRequest, MultiEngine, RuntimeError, TenantId};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a finished [`Server::serve`] saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Error frames sent (overload, unknown tenant, protocol, ...).
    pub error_frames: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    error_frames: AtomicU64,
}

/// A bound TCP serving front-end over one [`MultiEngine`] fleet.
pub struct Server {
    listener: TcpListener,
    engine: Arc<MultiEngine>,
    shutdown: Arc<AtomicBool>,
    max_frame: u32,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — read it back with
    /// [`Server::local_addr`]) over `engine`.
    ///
    /// # Errors
    ///
    /// Bind failures as [`RuntimeError::Io`].
    pub fn bind(engine: MultiEngine, addr: &str) -> Result<Self, RuntimeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(engine),
            shutdown: Arc::new(AtomicBool::new(false)),
            max_frame: wire::MAX_FRAME,
        })
    }

    /// Caps accepted frame bodies at `max_frame` bytes.
    pub fn with_max_frame(mut self, max_frame: u32) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// The bound address (resolves an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket introspection failures as [`RuntimeError::Io`].
    pub fn local_addr(&self) -> Result<SocketAddr, RuntimeError> {
        Ok(self.listener.local_addr()?)
    }

    /// The fleet this server fronts.
    pub fn engine(&self) -> &Arc<MultiEngine> {
        &self.engine
    }

    /// The drain flag: store `true` to make [`Server::serve`] stop
    /// accepting, drain in-flight work and return.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until the shutdown flag is set, then drains:
    /// read halves are shut down, in-flight requests finish and are
    /// answered, `Goodbye` frames go out, and every session thread is
    /// joined before this returns.
    ///
    /// # Errors
    ///
    /// Only setup failures (making the listener non-blocking) error;
    /// per-connection failures are absorbed into the report.
    pub fn serve(self) -> Result<ServeReport, RuntimeError> {
        self.listener.set_nonblocking(true)?;
        let counters = Arc::new(Counters::default());
        // Tenant names resolve per request; snapshot the map once.
        let tenants: Arc<HashMap<String, TenantId>> = Arc::new(
            self.engine
                .tenant_names()
                .iter()
                .filter_map(|n| self.engine.tenant_id(n).map(|id| (n.clone(), id)))
                .collect(),
        );
        let mut sessions: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
        let mut conn_seq: u64 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    conn_seq += 1;
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nodelay(true);
                    match stream.try_clone() {
                        Ok(keep) => {
                            let engine = Arc::clone(&self.engine);
                            let tenants = Arc::clone(&tenants);
                            let counters = Arc::clone(&counters);
                            let shutdown = Arc::clone(&self.shutdown);
                            let max_frame = self.max_frame;
                            let conn_id = conn_seq;
                            let handle = std::thread::spawn(move || {
                                session(
                                    engine, tenants, counters, shutdown, stream, conn_id, max_frame,
                                );
                            });
                            sessions.push((keep, handle));
                        }
                        Err(_) => drop(stream),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    sessions.retain(|(_, h)| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // Drain: closing the read half makes each session's reader see a
        // clean EOF — it stops taking requests while the writer still
        // answers everything in flight and says goodbye.
        for (stream, _) in &sessions {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handle) in sessions {
            let _ = handle.join();
        }
        Ok(ServeReport {
            connections: counters.connections.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            error_frames: counters.error_frames.load(Ordering::Relaxed),
        })
    }
}

/// Reader-to-writer handoff for one connection.
enum SessionMsg {
    /// A submitted request whose completion the writer multiplexes.
    InFlight(u64, epim_runtime::Pending),
    /// A request that failed at submission: reply immediately.
    Immediate(u64, u16, String),
    /// A protocol violation: reply with the error frame, then close
    /// without a goodbye.
    Fatal(u64, u16, String),
    /// Orderly end of requests: answer what is in flight, say goodbye.
    Bye,
}

#[allow(clippy::too_many_arguments)]
fn session(
    engine: Arc<MultiEngine>,
    tenants: Arc<HashMap<String, TenantId>>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    stream: TcpStream,
    conn_id: u64,
    max_frame: u32,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    // Handshake: expect the client hello, answer with ours.
    if wire::read_hello(&mut reader).is_err() {
        counters.error_frames.fetch_add(1, Ordering::Relaxed);
        let _ = Message::Error(WireError {
            id: wire::NO_REQUEST,
            code: wire::code::PROTOCOL,
            message: "bad hello".to_string(),
        })
        .write(&mut writer);
        let _ = writer.flush();
        return;
    }
    if wire::write_hello(&mut writer).is_err() {
        return;
    }

    let (tx, rx) = std::sync::mpsc::channel::<SessionMsg>();
    let writer_counters = Arc::clone(&counters);
    let writer_handle = std::thread::spawn(move || writer_loop(writer, rx, writer_counters));
    reader_loop(
        &engine,
        &tenants,
        &counters,
        &shutdown,
        &mut reader,
        &tx,
        conn_id,
        max_frame,
    );
    drop(tx);
    let _ = writer_handle.join();
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    engine: &MultiEngine,
    tenants: &HashMap<String, TenantId>,
    counters: &Counters,
    shutdown: &AtomicBool,
    reader: &mut impl std::io::Read,
    tx: &Sender<SessionMsg>,
    conn_id: u64,
    max_frame: u32,
) {
    loop {
        match Message::read(reader, max_frame) {
            // Clean close — from the client, or from the server's drain
            // shutting the read half down.
            Ok(None) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
            Ok(Some(Message::Request(req))) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                if shutdown.load(Ordering::SeqCst) {
                    let err = RuntimeError::ShuttingDown;
                    let _ = tx.send(SessionMsg::Immediate(
                        req.id,
                        wire::error_code(&err),
                        err.to_string(),
                    ));
                    continue;
                }
                let Some(&tid) = tenants.get(&req.tenant) else {
                    let _ = tx.send(SessionMsg::Immediate(
                        req.id,
                        wire::code::UNKNOWN_TENANT,
                        format!("unknown tenant `{}`", req.tenant),
                    ));
                    continue;
                };
                let infer_req = InferRequest::new(req.input).with_client(conn_id);
                match engine.try_infer(tid, infer_req) {
                    Ok(pending) => {
                        let _ = tx.send(SessionMsg::InFlight(req.id, pending));
                    }
                    Err(e) => {
                        let _ = tx.send(SessionMsg::Immediate(
                            req.id,
                            wire::error_code(&e),
                            e.to_string(),
                        ));
                    }
                }
            }
            Ok(Some(Message::Goodbye)) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
            Ok(Some(_)) => {
                let _ = tx.send(SessionMsg::Fatal(
                    wire::NO_REQUEST,
                    wire::code::PROTOCOL,
                    "unexpected frame type from client".to_string(),
                ));
                return;
            }
            Err(RuntimeError::Protocol { reason }) => {
                let _ = tx.send(SessionMsg::Fatal(
                    wire::NO_REQUEST,
                    wire::code::PROTOCOL,
                    reason,
                ));
                return;
            }
            // Transport failure: the peer is gone, nothing to answer.
            Err(_) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
        }
    }
}

fn writer_loop(
    mut writer: BufWriter<TcpStream>,
    rx: Receiver<SessionMsg>,
    counters: Arc<Counters>,
) {
    let mut mux = Mux::new();
    let mut saw_bye = false;
    let mut disconnected = false;

    let write_result =
        |writer: &mut BufWriter<TcpStream>,
         counters: &Counters,
         id: u64,
         result: Result<epim_runtime::Inference, RuntimeError>| {
            let msg = match result {
                Ok(inference) => Message::Response(WireResponse {
                    id,
                    batch_size: inference.batch_size as u32,
                    latency_ns: inference.latency.as_nanos().min(u64::MAX as u128) as u64,
                    output: inference.output,
                }),
                Err(e) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    Message::Error(WireError {
                        id,
                        code: wire::error_code(&e),
                        message: e.to_string(),
                    })
                }
            };
            msg.write(writer)
        };

    'outer: loop {
        // Take everything the reader has handed over so far.
        loop {
            match rx.try_recv() {
                Ok(SessionMsg::InFlight(id, pending)) => mux.push(id, pending),
                Ok(SessionMsg::Immediate(id, code, message)) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    if Message::Error(WireError { id, code, message })
                        .write(&mut writer)
                        .is_err()
                    {
                        break 'outer;
                    }
                }
                Ok(SessionMsg::Fatal(id, code, message)) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = Message::Error(WireError { id, code, message }).write(&mut writer);
                    let _ = writer.flush();
                    break 'outer;
                }
                Ok(SessionMsg::Bye) => saw_bye = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // Answer everything that has completed.
        for (id, result) in mux.poll_ready() {
            if write_result(&mut writer, &counters, id, result).is_err() {
                break 'outer;
            }
        }
        if writer.flush().is_err() {
            break 'outer;
        }
        if (saw_bye || disconnected) && mux.is_empty() {
            if saw_bye {
                let _ = Message::Goodbye.write(&mut writer);
                let _ = writer.flush();
            }
            break 'outer;
        }
        // Park until the next event: a completion (waker-driven, wakes
        // immediately) or a new handoff from the reader (bounded nap —
        // the common closed-loop path parks directly on the channel).
        if mux.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(SessionMsg::InFlight(id, pending)) => mux.push(id, pending),
                Ok(SessionMsg::Immediate(id, code, message)) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    if Message::Error(WireError { id, code, message })
                        .write(&mut writer)
                        .is_err()
                    {
                        break 'outer;
                    }
                    if writer.flush().is_err() {
                        break 'outer;
                    }
                }
                Ok(SessionMsg::Fatal(id, code, message)) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    let _ = Message::Error(WireError { id, code, message }).write(&mut writer);
                    let _ = writer.flush();
                    break 'outer;
                }
                Ok(SessionMsg::Bye) => saw_bye = true,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
        } else {
            for (id, result) in mux.wait_ready(Some(Duration::from_millis(10))) {
                if write_result(&mut writer, &counters, id, result).is_err() {
                    break 'outer;
                }
            }
            if writer.flush().is_err() {
                break 'outer;
            }
        }
    }
}
