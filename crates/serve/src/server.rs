//! The TCP serving front-end: accept loop, per-connection session
//! threads and graceful drain.
//!
//! Each accepted connection gets two threads. The **reader** decodes
//! request frames, resolves the wire tenant name against the fleet and
//! submits through the non-blocking [`InferService`] path — tagging every
//! submission with the connection id, which the scheduler threads into
//! its `Enqueue` trace spans — then hands the in-flight [`Pending`] to
//! the **writer**. The writer multiplexes all of the connection's
//! in-flight requests through a [`Mux`] (waker-parked, never
//! busy-polling) and streams responses back in completion order; request
//! ids, not arrival order, correlate replies. A full tenant queue turns
//! into a typed `overloaded` error frame; a malformed frame turns into a
//! `protocol` error frame and a close.
//!
//! Resilience controls:
//!
//! - [`Server::with_max_connections`] caps concurrent sessions; a
//!   connection over the cap is answered with its hello plus a typed
//!   `overloaded` error frame and closed (counted in
//!   [`ServeReport::connections_rejected`]).
//! - [`Server::with_idle_timeout`] disconnects sessions that go silent
//!   (counted in [`ServeReport::idle_disconnects`]), so abandoned peers
//!   cannot pin session threads forever.
//! - A request frame may carry a relative deadline; the server converts
//!   it to an absolute [`std::time::Instant`] at decode and the
//!   scheduler sheds it with a typed `deadline` error frame if it
//!   expires before execution starts.
//! - A `HealthReq` frame is answered with the fleet's tenant list and
//!   the draining flag, without touching any tenant queue.
//!
//! Drain: setting the shutdown flag (SIGTERM in the binary, or
//! [`Server::shutdown_flag`] in-process) stops the accept loop, shuts
//! down the read half of every live connection (the reader sees EOF and
//! stops taking new work), lets every in-flight request finish and be
//! answered, sends `Goodbye` frames and joins every session thread
//! before [`Server::serve`] returns.
//!
//! Fault injection (`epim-faults`, disabled at one relaxed atomic load
//! per site): `conn_reset` severs a connection instead of writing a
//! response, `torn_frame` writes half a response frame then severs, and
//! `accept_stall` delays the accept loop.

use crate::mux::Mux;
use crate::wire::{self, Message, WireError, WireHealth, WireResponse};
use epim_faults as faults;
use epim_runtime::{InferRequest, MultiEngine, RuntimeError, TenantId};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a finished [`Server::serve`] saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Error frames sent (overload, unknown tenant, protocol, ...).
    pub error_frames: u64,
    /// Connections turned away at the [`Server::with_max_connections`]
    /// cap (answered with a typed error frame, never counted in
    /// [`ServeReport::connections`]).
    pub connections_rejected: u64,
    /// Sessions closed by the [`Server::with_idle_timeout`] watchdog.
    pub idle_disconnects: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    error_frames: AtomicU64,
    connections_rejected: AtomicU64,
    idle_disconnects: AtomicU64,
}

/// A bound TCP serving front-end over one [`MultiEngine`] fleet.
pub struct Server {
    listener: TcpListener,
    engine: Arc<MultiEngine>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    max_frame: u32,
    max_connections: usize,
    idle_timeout: Option<Duration>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — read it back with
    /// [`Server::local_addr`]) over `engine`.
    ///
    /// # Errors
    ///
    /// Bind failures as [`RuntimeError::Io`].
    pub fn bind(engine: MultiEngine, addr: &str) -> Result<Self, RuntimeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(engine),
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(Counters::default()),
            max_frame: wire::MAX_FRAME,
            max_connections: 0,
            idle_timeout: None,
        })
    }

    /// Caps accepted frame bodies at `max_frame` bytes.
    pub fn with_max_frame(mut self, max_frame: u32) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Caps concurrent sessions at `max_connections` (`0`, the default,
    /// means unlimited). A connection over the cap gets the hello
    /// exchange plus one typed `overloaded` error frame and is closed —
    /// a load balancer sees a fast, diagnosable rejection instead of a
    /// thread-exhausted hang.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Disconnects a session whose peer sends nothing for `timeout`
    /// (default: never). In-flight requests still complete and are
    /// answered before the close; the timer only bounds silence on the
    /// read half.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// The bound address (resolves an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket introspection failures as [`RuntimeError::Io`].
    pub fn local_addr(&self) -> Result<SocketAddr, RuntimeError> {
        Ok(self.listener.local_addr()?)
    }

    /// The fleet this server fronts.
    pub fn engine(&self) -> &Arc<MultiEngine> {
        &self.engine
    }

    /// The drain flag: store `true` to make [`Server::serve`] stop
    /// accepting, drain in-flight work and return.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The fleet's Prometheus exposition plus the server's own
    /// transport counters (`epim_serve_connections_rejected_total`,
    /// `epim_serve_idle_disconnects_total`, accepted connections,
    /// request and error frames). Callable while [`Server::serve`] runs
    /// on another thread.
    pub fn render_prometheus(&self) -> String {
        let mut text = self.engine.render_prometheus();
        let mut w = epim_obs::PromWriter::new();
        let c = &self.counters;
        let mut counter = |name: &str, help: &'static str, value: u64| {
            w.counter(name, help, &[], value);
        };
        counter(
            "epim_serve_connections_total",
            "Connections accepted over the server's lifetime",
            c.connections.load(Ordering::Relaxed),
        );
        counter(
            "epim_serve_requests_total",
            "Request frames decoded",
            c.requests.load(Ordering::Relaxed),
        );
        counter(
            "epim_serve_error_frames_total",
            "Typed error frames sent to clients",
            c.error_frames.load(Ordering::Relaxed),
        );
        counter(
            "epim_serve_connections_rejected_total",
            "Connections turned away at the connection cap",
            c.connections_rejected.load(Ordering::Relaxed),
        );
        counter(
            "epim_serve_idle_disconnects_total",
            "Sessions closed by the idle timeout watchdog",
            c.idle_disconnects.load(Ordering::Relaxed),
        );
        text.push_str(&w.render());
        text
    }

    /// Runs the accept loop until the shutdown flag is set, then drains:
    /// read halves are shut down, in-flight requests finish and are
    /// answered, `Goodbye` frames go out, and every session thread is
    /// joined before this returns.
    ///
    /// # Errors
    ///
    /// Only setup failures (making the listener non-blocking) error;
    /// per-connection failures are absorbed into the report.
    pub fn serve(&self) -> Result<ServeReport, RuntimeError> {
        self.listener.set_nonblocking(true)?;
        let counters = Arc::clone(&self.counters);
        // Tenant names resolve per request; snapshot the map once.
        let tenants: Arc<HashMap<String, TenantId>> = Arc::new(
            self.engine
                .tenant_names()
                .iter()
                .filter_map(|n| self.engine.tenant_id(n).map(|id| (n.clone(), id)))
                .collect(),
        );
        let names: Arc<Vec<String>> = Arc::new(self.engine.tenant_names().to_vec());
        let mut sessions: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
        let mut conn_seq: u64 = 0;
        while !self.shutdown.load(Ordering::SeqCst) {
            // Fault-injection point: stall the accept loop (simulates a
            // wedged acceptor; live sessions keep serving).
            if let Some(delay) = faults::fire_delay(faults::FaultPoint::AcceptStall) {
                std::thread::sleep(delay);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    sessions.retain(|(_, h)| !h.is_finished());
                    if self.max_connections > 0 && sessions.len() >= self.max_connections {
                        counters
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        reject_connection(stream);
                        continue;
                    }
                    conn_seq += 1;
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nodelay(true);
                    if let Some(timeout) = self.idle_timeout {
                        let _ = stream.set_read_timeout(Some(timeout));
                    }
                    match stream.try_clone() {
                        Ok(keep) => {
                            let ctx = SessionCtx {
                                engine: Arc::clone(&self.engine),
                                tenants: Arc::clone(&tenants),
                                names: Arc::clone(&names),
                                counters: Arc::clone(&counters),
                                shutdown: Arc::clone(&self.shutdown),
                                max_frame: self.max_frame,
                            };
                            let conn_id = conn_seq;
                            let handle = std::thread::spawn(move || {
                                session(ctx, stream, conn_id);
                            });
                            sessions.push((keep, handle));
                        }
                        Err(_) => drop(stream),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    sessions.retain(|(_, h)| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        // Drain: closing the read half makes each session's reader see a
        // clean EOF — it stops taking requests while the writer still
        // answers everything in flight and says goodbye.
        for (stream, _) in &sessions {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handle) in sessions {
            let _ = handle.join();
        }
        Ok(ServeReport {
            connections: counters.connections.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            error_frames: counters.error_frames.load(Ordering::Relaxed),
            connections_rejected: counters.connections_rejected.load(Ordering::Relaxed),
            idle_disconnects: counters.idle_disconnects.load(Ordering::Relaxed),
        })
    }
}

/// Answers an over-cap connection with its hello and one typed
/// `overloaded` error frame, then closes. Runs on a detached thread so a
/// slow (or silent) peer cannot stall the accept loop; the short read
/// timeout bounds how long the thread lives.
fn reject_connection(stream: TcpStream) {
    std::thread::spawn(move || {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(write_half);
        if wire::read_hello(&mut reader).is_err() {
            return;
        }
        if wire::write_hello(&mut writer).is_err() {
            return;
        }
        let _ = Message::Error(WireError {
            id: wire::NO_REQUEST,
            code: wire::code::OVERLOADED,
            message: "connection limit reached; try another replica".to_string(),
        })
        .write(&mut writer);
        let _ = writer.flush();
    });
}

/// The shared state one session needs, bundled so the accept loop clones
/// one struct per connection.
#[derive(Clone)]
struct SessionCtx {
    engine: Arc<MultiEngine>,
    tenants: Arc<HashMap<String, TenantId>>,
    names: Arc<Vec<String>>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    max_frame: u32,
}

/// Reader-to-writer handoff for one connection.
enum SessionMsg {
    /// A submitted request whose completion the writer multiplexes.
    InFlight(u64, epim_runtime::Pending),
    /// A request that failed at submission: reply immediately.
    Immediate(u64, u16, String),
    /// A health probe: reply with the fleet snapshot.
    Health(WireHealth),
    /// A protocol violation: reply with the error frame, then close
    /// without a goodbye.
    Fatal(u64, u16, String),
    /// Orderly end of requests: answer what is in flight, say goodbye.
    Bye,
}

fn session(ctx: SessionCtx, stream: TcpStream, conn_id: u64) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    // Handshake: expect the client hello, answer with ours.
    if wire::read_hello(&mut reader).is_err() {
        ctx.counters.error_frames.fetch_add(1, Ordering::Relaxed);
        let _ = Message::Error(WireError {
            id: wire::NO_REQUEST,
            code: wire::code::PROTOCOL,
            message: "bad hello".to_string(),
        })
        .write(&mut writer);
        let _ = writer.flush();
        return;
    }
    if wire::write_hello(&mut writer).is_err() {
        return;
    }

    let (tx, rx) = std::sync::mpsc::channel::<SessionMsg>();
    let writer_counters = Arc::clone(&ctx.counters);
    let writer_handle = std::thread::spawn(move || writer_loop(writer, rx, writer_counters));
    reader_loop(&ctx, &mut reader, &tx, conn_id);
    drop(tx);
    let _ = writer_handle.join();
}

fn reader_loop(
    ctx: &SessionCtx,
    reader: &mut impl std::io::Read,
    tx: &Sender<SessionMsg>,
    conn_id: u64,
) {
    loop {
        match Message::read(reader, ctx.max_frame) {
            // Clean close — from the client, or from the server's drain
            // shutting the read half down.
            Ok(None) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
            Ok(Some(Message::Request(req))) => {
                ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
                if ctx.shutdown.load(Ordering::SeqCst) {
                    let err = RuntimeError::ShuttingDown;
                    let _ = tx.send(SessionMsg::Immediate(
                        req.id,
                        wire::error_code(&err),
                        err.to_string(),
                    ));
                    continue;
                }
                let Some(&tid) = ctx.tenants.get(&req.tenant) else {
                    let _ = tx.send(SessionMsg::Immediate(
                        req.id,
                        wire::code::UNKNOWN_TENANT,
                        format!("unknown tenant `{}`", req.tenant),
                    ));
                    continue;
                };
                let mut infer_req = InferRequest::new(req.input).with_client(conn_id);
                if req.deadline_ms > 0 {
                    // The wire carries the deadline relative to decode so
                    // client/server clock skew cannot expire it.
                    infer_req = infer_req.with_deadline(
                        Instant::now() + Duration::from_millis(req.deadline_ms.into()),
                    );
                }
                match ctx.engine.try_infer(tid, infer_req) {
                    Ok(pending) => {
                        let _ = tx.send(SessionMsg::InFlight(req.id, pending));
                    }
                    Err(e) => {
                        let _ = tx.send(SessionMsg::Immediate(
                            req.id,
                            wire::error_code(&e),
                            e.to_string(),
                        ));
                    }
                }
            }
            Ok(Some(Message::HealthReq)) => {
                let _ = tx.send(SessionMsg::Health(WireHealth {
                    draining: ctx.shutdown.load(Ordering::SeqCst),
                    tenants: ctx.names.as_ref().clone(),
                }));
            }
            Ok(Some(Message::Goodbye)) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
            Ok(Some(_)) => {
                let _ = tx.send(SessionMsg::Fatal(
                    wire::NO_REQUEST,
                    wire::code::PROTOCOL,
                    "unexpected frame type from client".to_string(),
                ));
                return;
            }
            Err(RuntimeError::Protocol { reason }) => {
                let _ = tx.send(SessionMsg::Fatal(
                    wire::NO_REQUEST,
                    wire::code::PROTOCOL,
                    reason,
                ));
                return;
            }
            // The idle watchdog: a read timeout means the peer has sent
            // nothing for the configured window. Answer with a typed
            // error frame and close.
            Err(RuntimeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ctx.counters
                    .idle_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(SessionMsg::Fatal(
                    wire::NO_REQUEST,
                    wire::code::IO,
                    "idle timeout: no frames received within the configured window".to_string(),
                ));
                return;
            }
            // Transport failure: the peer is gone, nothing to answer.
            Err(_) => {
                let _ = tx.send(SessionMsg::Bye);
                return;
            }
        }
    }
}

/// Writes `msg`, honoring the `conn_reset` / `torn_frame` fault points:
/// `conn_reset` severs the socket instead of writing; `torn_frame`
/// writes the length prefix and half the body, then severs. Both return
/// an error so the writer loop tears the session down.
fn write_msg(writer: &mut BufWriter<TcpStream>, msg: &Message) -> Result<(), RuntimeError> {
    if faults::fires(faults::FaultPoint::ConnReset) {
        let _ = writer.get_ref().shutdown(Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected fault: connection reset before response",
        )
        .into());
    }
    if faults::fires(faults::FaultPoint::TornFrame) {
        let body = msg.encode()?;
        let torn = &body[..body.len() / 2];
        let _ = writer.write_all(&(body.len() as u32).to_le_bytes());
        let _ = writer.write_all(torn);
        let _ = writer.flush();
        let _ = writer.get_ref().shutdown(Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "injected fault: frame torn mid-body",
        )
        .into());
    }
    msg.write(writer)
}

/// What [`handle_msg`] decided about the session.
enum Handled {
    /// Keep going.
    Continue,
    /// The reader reported an orderly end of requests.
    SawBye,
    /// The session is over (fatal frame sent or transport failure).
    Close,
}

/// Processes one reader handoff inside [`writer_loop`].
fn handle_msg(
    writer: &mut BufWriter<TcpStream>,
    counters: &Counters,
    mux: &mut Mux,
    msg: SessionMsg,
    flush_immediate: bool,
) -> Handled {
    match msg {
        SessionMsg::InFlight(id, pending) => mux.push(id, pending),
        SessionMsg::Immediate(id, code, message) => {
            counters.error_frames.fetch_add(1, Ordering::Relaxed);
            if write_msg(writer, &Message::Error(WireError { id, code, message })).is_err() {
                return Handled::Close;
            }
            if flush_immediate && writer.flush().is_err() {
                return Handled::Close;
            }
        }
        SessionMsg::Health(health) => {
            if write_msg(writer, &Message::Health(health)).is_err() {
                return Handled::Close;
            }
            if flush_immediate && writer.flush().is_err() {
                return Handled::Close;
            }
        }
        SessionMsg::Fatal(id, code, message) => {
            counters.error_frames.fetch_add(1, Ordering::Relaxed);
            let _ = write_msg(writer, &Message::Error(WireError { id, code, message }));
            let _ = writer.flush();
            return Handled::Close;
        }
        SessionMsg::Bye => return Handled::SawBye,
    }
    Handled::Continue
}

fn writer_loop(
    mut writer: BufWriter<TcpStream>,
    rx: Receiver<SessionMsg>,
    counters: Arc<Counters>,
) {
    let mut mux = Mux::new();
    let mut saw_bye = false;
    let mut disconnected = false;

    let write_result =
        |writer: &mut BufWriter<TcpStream>,
         counters: &Counters,
         id: u64,
         result: Result<epim_runtime::Inference, RuntimeError>| {
            let msg = match result {
                Ok(inference) => Message::Response(WireResponse {
                    id,
                    batch_size: inference.batch_size as u32,
                    latency_ns: inference.latency.as_nanos().min(u64::MAX as u128) as u64,
                    output: inference.output,
                }),
                Err(e) => {
                    counters.error_frames.fetch_add(1, Ordering::Relaxed);
                    Message::Error(WireError {
                        id,
                        code: wire::error_code(&e),
                        message: e.to_string(),
                    })
                }
            };
            write_msg(writer, &msg)
        };

    'outer: loop {
        // Take everything the reader has handed over so far.
        loop {
            match rx.try_recv() {
                Ok(msg) => match handle_msg(&mut writer, &counters, &mut mux, msg, false) {
                    Handled::Continue => {}
                    Handled::SawBye => saw_bye = true,
                    Handled::Close => break 'outer,
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // Answer everything that has completed.
        for (id, result) in mux.poll_ready() {
            if write_result(&mut writer, &counters, id, result).is_err() {
                break 'outer;
            }
        }
        if writer.flush().is_err() {
            break 'outer;
        }
        if (saw_bye || disconnected) && mux.is_empty() {
            if saw_bye {
                let _ = Message::Goodbye.write(&mut writer);
                let _ = writer.flush();
            }
            break 'outer;
        }
        // Park until the next event: a completion (waker-driven, wakes
        // immediately) or a new handoff from the reader (bounded nap —
        // the common closed-loop path parks directly on the channel).
        if mux.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => match handle_msg(&mut writer, &counters, &mut mux, msg, true) {
                    Handled::Continue => {}
                    Handled::SawBye => saw_bye = true,
                    Handled::Close => break 'outer,
                },
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
        } else {
            for (id, result) in mux.wait_ready(Some(Duration::from_millis(10))) {
                if write_result(&mut writer, &counters, id, result).is_err() {
                    break 'outer;
                }
            }
            if writer.flush().is_err() {
                break 'outer;
            }
        }
    }
}
