//! The model zoo a server instance exposes as tenants.
//!
//! A [`FleetConfig`] names each tenant, fixes the zoo network it serves
//! (`tiny_epitome_network(stem, mid, classes)` with a deterministic
//! weight seed) and carries its scheduler knobs. Because weights come
//! from [`NetworkWeights::random`] with a pinned seed and the analog
//! model is fixed, any two processes that build the same `FleetConfig`
//! serve **bit-identical** tenants — which is what lets the load
//! generator's `--check` mode (and the loopback tests, and the bench
//! identity gate) compare wire outputs against an in-process fleet with
//! exact-0 tolerance.
//!
//! Configs come from [`FleetConfig::default_zoo`] or from a TOML-subset
//! file ([`FleetConfig::parse`]); the workspace vendors no TOML crate, so
//! the parser accepts exactly the flat `key = value` / `[[tenant]]`
//! shape this module documents, and nothing more.

use epim_models::lower::NetworkWeights;
use epim_models::zoo;
use epim_pim::datapath::AnalogModel;
use epim_runtime::{FlowControl, MultiEngine, PlanCache, RuntimeError, TenantConfig};
use std::time::Duration;

/// The input image side length every zoo tenant is lowered for.
pub const INPUT_SIDE: usize = 16;

/// The input tensor shape (NCHW) every zoo tenant expects.
pub const INPUT_SHAPE: [usize; 4] = [1, 3, INPUT_SIDE, INPUT_SIDE];

/// The pinned analog model shared by every fleet build (server, load
/// generator, tests, bench) — changing it anywhere breaks wire/in-process
/// bit-identity, so it is defined exactly once, here.
pub fn analog() -> AnalogModel {
    AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    }
}

/// One tenant: a zoo network, its deterministic weight seed and its
/// scheduler knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Wire-visible tenant name.
    pub name: String,
    /// Zoo backbone stem width.
    pub stem: usize,
    /// Zoo backbone inner width (equal `mid` ⇒ shared compiled plan).
    pub mid: usize,
    /// Classifier width.
    pub classes: usize,
    /// Seed for [`NetworkWeights::random`].
    pub seed: u64,
    /// Most requests coalesced into one executed batch.
    pub max_batch: usize,
    /// Batch coalescing window in milliseconds.
    pub batch_window_ms: u64,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Weighted-fair drain weight.
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant spec with the default scheduler knobs.
    pub fn new(name: &str, stem: usize, mid: usize, classes: usize, seed: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            stem,
            mid,
            classes,
            seed,
            max_batch: 8,
            batch_window_ms: 1,
            queue_capacity: 64,
            weight: 1,
        }
    }

    fn tenant_config(&self) -> TenantConfig {
        TenantConfig {
            max_batch: self.max_batch,
            batch_window: Duration::from_millis(self.batch_window_ms),
            queue_capacity: self.queue_capacity,
            // The wire path always submits through the non-blocking
            // `try_infer`, so a full queue sheds into a typed
            // `overloaded` error frame regardless of this policy; keep
            // the policy explicit anyway for in-process users of the
            // same fleet.
            flow: FlowControl::Shed {
                timeout: Duration::ZERO,
            },
            weight: self.weight,
        }
    }
}

/// The full fleet a server instance exposes.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Scheduler worker threads shared by all tenants.
    pub workers: usize,
    /// The tenants, in registration (and wire-listing) order.
    pub tenants: Vec<TenantSpec>,
}

impl FleetConfig {
    /// The default three-tenant zoo: two distinct plans plus a third
    /// tenant sharing tenant zero's compiled plan (equal `mid`), so the
    /// default fleet exercises both plan-cache sharing and genuine
    /// multi-plan tenancy.
    pub fn default_zoo() -> Self {
        FleetConfig {
            workers: 2,
            tenants: vec![
                TenantSpec::new("resnet-a", 8, 4, 10, 11),
                TenantSpec::new("resnet-b", 8, 8, 12, 22),
                TenantSpec::new("resnet-c", 8, 4, 16, 33),
            ],
        }
    }

    /// Parses the TOML-subset fleet file: optional top-level
    /// `workers = N`, then one `[[tenant]]` section per tenant with
    /// `name` (string, required) and optional integer keys `stem`,
    /// `mid`, `classes`, `seed`, `max_batch`, `batch_window_ms`,
    /// `queue_capacity`, `weight`. `#` starts a comment.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] naming the offending line for
    /// anything outside that grammar, a duplicate or missing tenant
    /// name, or an empty fleet.
    pub fn parse(text: &str) -> Result<Self, RuntimeError> {
        let bad = |what: String| RuntimeError::InvalidConfig { what };
        let mut cfg = FleetConfig {
            workers: 2,
            tenants: Vec::new(),
        };
        let mut current: Option<TenantSpec> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[tenant]]" {
                if let Some(t) = current.take() {
                    cfg.tenants.push(t);
                }
                current = Some(TenantSpec::new("", 8, 4, 10, 0));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("fleet config line {}: `{line}`", lineno + 1)))?;
            let (key, value) = (key.trim(), value.trim());
            let int = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    bad(format!(
                        "fleet config line {}: `{key}` wants an integer",
                        lineno + 1
                    ))
                })
            };
            match (&mut current, key) {
                (None, "workers") => cfg.workers = int(value)?.max(1) as usize,
                (None, other) => {
                    return Err(bad(format!(
                        "fleet config line {}: unknown top-level key `{other}`",
                        lineno + 1
                    )))
                }
                (Some(t), "name") => {
                    let v = value.trim_matches('"');
                    if v == value {
                        return Err(bad(format!(
                            "fleet config line {}: `name` wants a quoted string",
                            lineno + 1
                        )));
                    }
                    t.name = v.to_string();
                }
                (Some(t), "stem") => t.stem = int(value)? as usize,
                (Some(t), "mid") => t.mid = int(value)? as usize,
                (Some(t), "classes") => t.classes = int(value)? as usize,
                (Some(t), "seed") => t.seed = int(value)?,
                (Some(t), "max_batch") => t.max_batch = int(value)? as usize,
                (Some(t), "batch_window_ms") => t.batch_window_ms = int(value)?,
                (Some(t), "queue_capacity") => t.queue_capacity = int(value)? as usize,
                (Some(t), "weight") => t.weight = int(value)? as u32,
                (Some(_), other) => {
                    return Err(bad(format!(
                        "fleet config line {}: unknown tenant key `{other}`",
                        lineno + 1
                    )))
                }
            }
        }
        if let Some(t) = current.take() {
            cfg.tenants.push(t);
        }
        if cfg.tenants.is_empty() {
            return Err(bad("fleet config declares no tenants".to_string()));
        }
        let mut seen = std::collections::HashSet::new();
        for t in &cfg.tenants {
            if t.name.is_empty() {
                return Err(bad("a [[tenant]] section is missing `name`".to_string()));
            }
            if !seen.insert(t.name.clone()) {
                return Err(bad(format!("duplicate tenant name `{}`", t.name)));
            }
        }
        Ok(cfg)
    }

    /// Builds the fleet: one [`MultiEngine`] with every tenant
    /// registered, weights deterministically seeded.
    ///
    /// # Errors
    ///
    /// Propagates zoo design, lowering and registration errors.
    pub fn build(&self) -> Result<MultiEngine, RuntimeError> {
        let cache = PlanCache::new();
        let mut builder = MultiEngine::builder(&cache).workers(self.workers);
        for spec in &self.tenants {
            let (net, _) =
                zoo::tiny_epitome_network(spec.stem, spec.mid, spec.classes).map_err(|e| {
                    RuntimeError::InvalidConfig {
                        what: format!("tenant `{}`: {e}", spec.name),
                    }
                })?;
            let weights = NetworkWeights::random(&net, spec.seed).map_err(|e| {
                RuntimeError::InvalidConfig {
                    what: format!("tenant `{}`: {e}", spec.name),
                }
            })?;
            builder.register(
                &spec.name,
                &net,
                &weights,
                (INPUT_SIDE, INPUT_SIDE),
                true,
                analog(),
                spec.tenant_config(),
            )?;
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_zoo_builds_and_names_tenants() {
        let cfg = FleetConfig::default_zoo();
        let fleet = cfg.build().unwrap();
        assert_eq!(
            fleet.tenant_names(),
            &["resnet-a", "resnet-b", "resnet-c"],
            "wire-visible names must match registration order"
        );
    }

    #[test]
    fn parse_roundtrips_the_documented_grammar() {
        let cfg = FleetConfig::parse(
            r#"
            # serving fleet
            workers = 3

            [[tenant]]
            name = "a"
            stem = 8
            mid = 4
            classes = 10
            seed = 7
            max_batch = 4
            batch_window_ms = 2
            queue_capacity = 16
            weight = 2

            [[tenant]]
            name = "b"  # trailing comment
            mid = 8
            seed = 9
            "#,
        )
        .unwrap();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].name, "a");
        assert_eq!(cfg.tenants[0].weight, 2);
        assert_eq!(cfg.tenants[0].queue_capacity, 16);
        assert_eq!(cfg.tenants[1].name, "b");
        assert_eq!(cfg.tenants[1].mid, 8);
    }

    #[test]
    fn parse_rejects_bad_configs() {
        for (text, why) in [
            ("workers = 2", "no tenants"),
            ("[[tenant]]\nstem = 8", "missing name"),
            ("[[tenant]]\nname = \"a\"\n[[tenant]]\nname = \"a\"", "dup"),
            ("[[tenant]]\nname = a", "unquoted string"),
            ("[[tenant]]\nname = \"a\"\nbogus = 1", "unknown key"),
            ("nonsense", "not an assignment"),
            ("[[tenant]]\nname = \"a\"\nmid = x", "non-integer"),
        ] {
            let err = FleetConfig::parse(text).unwrap_err();
            assert!(
                matches!(err, RuntimeError::InvalidConfig { .. }),
                "{why}: {err:?}"
            );
        }
    }
}
