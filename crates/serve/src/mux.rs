//! A completion multiplexer over in-flight [`Pending`] handles.
//!
//! A connection's writer thread holds many requests in flight at once.
//! Before `Pending` grew waker integration the only options were one
//! blocked thread per request or a busy-poll loop; [`Mux`] instead polls
//! every in-flight handle as a [`std::future::Future`] with one shared
//! [`Waker`] and parks on a condvar until *any* of them completes — the
//! scheduler's delivery path wakes the waker, the waker wakes the thread.
//! One OS thread multiplexes an arbitrary number of in-flight requests
//! with zero spinning.

use epim_runtime::{Inference, Pending, RuntimeError};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// The shared wake target: a flag plus the condvar the mux parks on.
struct WakeFlag {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Wake for WakeFlag {
    fn wake(self: Arc<Self>) {
        let mut woken = self.woken.lock().unwrap();
        *woken = true;
        self.cv.notify_all();
    }
}

/// Multiplexes completion of many in-flight [`Pending`] handles onto the
/// calling thread.
pub struct Mux {
    inflight: Vec<(u64, Pending)>,
    flag: Arc<WakeFlag>,
    waker: Waker,
}

impl Default for Mux {
    fn default() -> Self {
        Mux::new()
    }
}

impl Mux {
    /// An empty multiplexer.
    pub fn new() -> Self {
        let flag = Arc::new(WakeFlag {
            woken: Mutex::new(false),
            cv: Condvar::new(),
        });
        let waker = Waker::from(Arc::clone(&flag));
        Mux {
            inflight: Vec::new(),
            flag,
            waker,
        }
    }

    /// Adds an in-flight request keyed by its wire id.
    pub fn push(&mut self, id: u64, pending: Pending) {
        self.inflight.push((id, pending));
    }

    /// How many requests are currently in flight.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Polls every in-flight handle once, removing and returning the
    /// completed ones in submission order. Non-blocking.
    pub fn poll_ready(&mut self) -> Vec<(u64, Result<Inference, RuntimeError>)> {
        let mut cx = Context::from_waker(&self.waker);
        let mut done = Vec::new();
        self.inflight
            .retain_mut(|(id, pending)| match Pin::new(pending).poll(&mut cx) {
                Poll::Ready(result) => {
                    done.push((*id, result));
                    false
                }
                Poll::Pending => true,
            });
        done
    }

    /// Blocks until at least one in-flight request completes (or
    /// `timeout` expires — `None` waits indefinitely), returning every
    /// completed request. Returns an empty vector on timeout or when
    /// nothing is in flight.
    pub fn wait_ready(
        &mut self,
        timeout: Option<Duration>,
    ) -> Vec<(u64, Result<Inference, RuntimeError>)> {
        if self.inflight.is_empty() {
            return Vec::new();
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let done = self.poll_ready();
            if !done.is_empty() {
                return done;
            }
            let mut woken = self.flag.woken.lock().unwrap();
            // A completion may have raced in between the poll and the
            // lock; the flag catches it and we re-poll immediately.
            while !*woken {
                match deadline {
                    None => woken = self.flag.cv.wait(woken).unwrap(),
                    Some(d) => {
                        let now = std::time::Instant::now();
                        if now >= d {
                            return Vec::new();
                        }
                        let (guard, _) = self.flag.cv.wait_timeout(woken, d - now).unwrap();
                        woken = guard;
                    }
                }
            }
            *woken = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mux_never_blocks() {
        let mut mux = Mux::new();
        assert!(mux.is_empty());
        assert_eq!(mux.len(), 0);
        assert!(mux.wait_ready(Some(Duration::from_secs(5))).is_empty());
        assert!(mux.poll_ready().is_empty());
    }
}
