//! The serving engine: a synchronous-API, internally concurrent
//! micro-batching inference loop around one epitome layer's [`DataPath`].
//!
//! ## How a request flows
//!
//! 1. Any number of application threads call [`Engine::infer`]; each
//!    request is timestamped, pushed onto the shared queue, and its thread
//!    parks on a per-request slot.
//! 2. A **persistent batcher thread** (spawned at engine construction,
//!    joined on drop) takes the queue head's shape, then waits up to
//!    [`EngineConfig::batch_window`] for more same-shaped requests — or
//!    until [`EngineConfig::max_batch`] of them are queued — before
//!    draining that shape group in FIFO order. Requests with *diverging
//!    shapes* are left queued and form their own later groups, which is the
//!    per-request fallback: a shape seen once simply runs as a batch of 1.
//! 3. The group runs through [`DataPath::execute_batch`] (bit-identical to
//!    per-request execution, so batching is invisible to callers), results
//!    are delivered to the parked slots, and latency/batch statistics are
//!    recorded.
//!
//! The data path itself fans out over `epim-parallel`'s persistent worker
//! pool, so a single engine saturates the machine: the batcher thread
//! amortizes per-request overhead while the pool parallelizes each batch's
//! pixel tiles.

use crate::stats::StatsInner;
use crate::{PlanCache, RuntimeError, RuntimeStats};
use epim_core::Epitome;
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_tensor::ops::Conv2dCfg;
use epim_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Most requests coalesced into one data-path batch.
    pub max_batch: usize,
    /// How long the batcher holds a non-full batch open for stragglers.
    /// `Duration::ZERO` disables coalescing-by-time: whatever is queued
    /// when the batcher looks is taken.
    pub batch_window: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { max_batch: 16, batch_window: Duration::from_micros(200) }
    }
}

/// One completed inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The layer output for this request's input.
    pub output: Tensor,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Submission-to-delivery latency.
    pub latency: Duration,
}

/// A queued request: the input plus the slot its submitter parks on.
struct Request {
    input: Tensor,
    submitted_at: Instant,
    slot: Arc<Slot>,
}

/// Rendezvous between a submitter and the batcher.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<Inference, RuntimeError>>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, result: Result<Inference, RuntimeError>) {
        *self.result.lock().expect("slot poisoned") = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Inference, RuntimeError> {
        let mut guard = self.result.lock().expect("slot poisoned");
        loop {
            match guard.take() {
                Some(result) => return result,
                None => guard = self.ready.wait(guard).expect("slot poisoned"),
            }
        }
    }
}

struct Shared {
    dp: DataPath,
    config: EngineConfig,
    queue: Mutex<Queue>,
    /// Signals the batcher that the queue changed (new request, shutdown).
    submitted: Condvar,
    stats: Mutex<StatsInner>,
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// A batched inference serving engine for one epitome layer.
///
/// Construct with [`Engine::new`] (compiles the plan) or
/// [`Engine::with_cache`] (reuses a [`PlanCache`]). The API is synchronous
/// — [`Engine::infer`] blocks until the result is ready — but concurrent
/// callers are transparently coalesced into data-path batches.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Builds an engine around `epitome`, compiling its plan from scratch.
    ///
    /// # Errors
    ///
    /// Propagates data-path construction errors and rejects a zero
    /// `max_batch`.
    pub fn new(
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let dp = DataPath::with_analog(epitome, conv_cfg, wrapping_enabled, analog)?;
        Self::from_datapath(dp, config)
    }

    /// Builds an engine reusing `cache`'s compiled plan for the epitome's
    /// spec (compiling into the cache on first sight).
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::new`].
    pub fn with_cache(
        cache: &PlanCache,
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let dp = cache.datapath(epitome, conv_cfg, wrapping_enabled, analog)?;
        Self::from_datapath(dp, config)
    }

    /// Builds an engine around an existing data path.
    ///
    /// # Errors
    ///
    /// Rejects a zero `max_batch`.
    pub fn from_datapath(dp: DataPath, config: EngineConfig) -> Result<Self, RuntimeError> {
        if config.max_batch == 0 {
            return Err(RuntimeError::config("max_batch must be at least 1"));
        }
        let shared = Arc::new(Shared {
            dp,
            config,
            queue: Mutex::new(Queue::default()),
            submitted: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
        });
        let batcher_shared = shared.clone();
        let batcher = std::thread::Builder::new()
            .name("epim-batcher".to_string())
            .spawn(move || {
                // The loop already contains per-batch panic guards; this
                // outer guard covers everything else (e.g. a poisoned
                // stats lock) so an unwinding batcher can never strand
                // parked submitters or accept work it will never serve.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    batcher_loop(&batcher_shared);
                }));
                let mut queue = batcher_shared
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue.shutdown = true;
                for request in queue.pending.drain(..) {
                    request.slot.deliver(Err(RuntimeError::ShuttingDown));
                }
            })
            .expect("spawning batcher thread");
        Ok(Engine { shared, batcher: Some(batcher) })
    }

    /// The data path this engine serves.
    pub fn datapath(&self) -> &DataPath {
        &self.shared.dp
    }

    /// Runs one inference, blocking until its (possibly batched) execution
    /// completes. Safe to call from many threads at once — that is the
    /// point: concurrent submissions coalesce into batches.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShuttingDown`] if the engine is being
    /// dropped, or the data path's execution error for this request.
    pub fn infer(&self, input: Tensor) -> Result<Inference, RuntimeError> {
        let slots = self.enqueue(vec![input])?;
        slots.into_iter().next().expect("one slot per input").wait()
    }

    /// Submits `inputs` together and waits for all results, in order.
    /// Unlike N sequential [`Engine::infer`] calls from one thread (which
    /// serialize into N batches of 1), the whole burst is visible to the
    /// batcher at once, so same-shaped inputs coalesce deterministically
    /// into `max_batch`-sized groups.
    ///
    /// # Errors
    ///
    /// Per-request errors are returned in the corresponding slot of the
    /// result vector; enqueueing after shutdown fails as a whole.
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        let slots = self.enqueue(inputs)?;
        Ok(slots.into_iter().map(|s| s.wait()).collect())
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.lock().expect("stats poisoned").snapshot()
    }

    /// Pushes requests onto the queue under one lock and wakes the batcher.
    fn enqueue(&self, inputs: Vec<Tensor>) -> Result<Vec<Arc<Slot>>, RuntimeError> {
        let now = Instant::now();
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.shutdown {
            return Err(RuntimeError::ShuttingDown);
        }
        let slots: Vec<Arc<Slot>> = inputs
            .into_iter()
            .map(|input| {
                let slot = Arc::new(Slot::default());
                queue.pending.push_back(Request {
                    input,
                    submitted_at: now,
                    slot: slot.clone(),
                });
                slot
            })
            .collect();
        drop(queue);
        self.shared.submitted.notify_all();
        Ok(slots)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.shutdown = true;
        }
        self.shared.submitted.notify_all();
        if let Some(handle) = self.batcher.take() {
            // The batcher drains every queued request before exiting, so
            // no submitter is left parked.
            let _ = handle.join();
        }
    }
}

/// The batcher thread: wait for work, coalesce a same-shape group, execute,
/// deliver. Exits once shutdown is flagged and the queue is drained.
fn batcher_loop(shared: &Shared) {
    loop {
        let Some(group) = next_group(shared) else {
            return;
        };
        execute_group(shared, group);
    }
}

/// Blocks for the next same-shape request group, honoring the batch window.
/// Returns `None` when shut down with an empty queue.
fn next_group(shared: &Shared) -> Option<Vec<Request>> {
    let config = shared.config;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    // Park until there is work (or nothing more will come).
    loop {
        if !queue.pending.is_empty() {
            break;
        }
        if queue.shutdown {
            return None;
        }
        queue = shared.submitted.wait(queue).expect("queue poisoned");
    }

    // Coalesce: hold the batch open for up to `batch_window`, or until
    // `max_batch` requests of the head's shape have arrived. Shutdown
    // flushes immediately.
    let shape: Vec<usize> = queue.pending[0].input.shape().to_vec();
    let deadline = Instant::now() + config.batch_window;
    loop {
        let same = queue.pending.iter().filter(|r| r.input.shape() == shape).count();
        if same >= config.max_batch || queue.shutdown {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (q, timeout) = shared
            .submitted
            .wait_timeout(queue, deadline - now)
            .expect("queue poisoned");
        queue = q;
        if timeout.timed_out() {
            break;
        }
    }

    // Drain the head's shape group in FIFO order; other shapes stay queued
    // for their own group (the shape-divergence fallback).
    let mut group = Vec::new();
    let mut i = 0;
    while i < queue.pending.len() && group.len() < config.max_batch {
        if queue.pending[i].input.shape() == shape {
            group.push(queue.pending.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
    Some(group)
}

/// Runs one group through the batched data path and delivers results.
///
/// Every request in the group is guaranteed a delivery: success, its own
/// error, or [`RuntimeError::ExecutionPanicked`] if the data path
/// panicked — a panicking batch must never strand its submitters.
fn execute_group(shared: &Shared, group: Vec<Request>) {
    let batch_size = group.len();
    let inputs: Vec<&Tensor> = group.iter().map(|r| &r.input).collect();
    let batch_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.dp.execute_batch(&inputs)
    }));
    drop(inputs);
    match batch_result {
        Err(_) => {
            for request in group {
                request.slot.deliver(Err(RuntimeError::ExecutionPanicked));
            }
        }
        Ok(Ok((outputs, dp_stats))) => {
            record_and_deliver(shared, group, outputs, &dp_stats, batch_size);
        }
        Ok(Err(_)) => {
            // Defensive fallback: run the group per-request so one bad
            // request cannot poison its batchmates (each gets its own
            // error or result).
            let mut outputs = Vec::with_capacity(batch_size);
            let mut dp_stats = DataPathStats::default();
            let mut failures: Vec<(usize, RuntimeError)> = Vec::new();
            for (i, request) in group.iter().enumerate() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.dp.execute(&request.input)
                }));
                match outcome {
                    Ok(Ok((out, s))) => {
                        dp_stats.accumulate(&s);
                        outputs.push(out);
                    }
                    Ok(Err(e)) => {
                        failures.push((i, e.into()));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                    Err(_) => {
                        failures.push((i, RuntimeError::ExecutionPanicked));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                }
            }
            if failures.is_empty() {
                record_and_deliver(shared, group, outputs, &dp_stats, batch_size);
            } else {
                // Deliver successes as singletons, failures as errors.
                for (i, request) in group.into_iter().enumerate() {
                    if let Some((_, e)) = failures.iter().find(|(fi, _)| *fi == i) {
                        request.slot.deliver(Err(e.clone()));
                    } else {
                        let latency = request.submitted_at.elapsed();
                        let mut stats = shared.stats.lock().expect("stats poisoned");
                        stats.record_latency(latency);
                        drop(stats);
                        request.slot.deliver(Ok(Inference {
                            output: outputs[i].clone(),
                            batch_size: 1,
                            latency,
                        }));
                    }
                }
            }
        }
    }
}

/// Records batch statistics and hands each request its output.
fn record_and_deliver(
    shared: &Shared,
    group: Vec<Request>,
    outputs: Vec<Tensor>,
    dp_stats: &DataPathStats,
    batch_size: usize,
) {
    {
        let mut stats = shared.stats.lock().expect("stats poisoned");
        stats.record_batch(batch_size, dp_stats);
        for request in &group {
            stats.record_latency(request.submitted_at.elapsed());
        }
    }
    for (request, output) in group.into_iter().zip(outputs) {
        let latency = request.submitted_at.elapsed();
        request.slot.deliver(Ok(Inference { output, batch_size, latency }));
    }
}
