//! The single-layer serving engine: a synchronous-API, internally
//! concurrent micro-batching inference loop around one epitome layer's
//! [`DataPath`].
//!
//! `Engine` is now a thin wrapper over the shared [`scheduler
//! core`](crate::scheduler): it contributes only the executor (a
//! `DataPath` running `execute_batch`) and inherits queueing, shape-grouped
//! coalescing, bounded-queue flow control and failure isolation from the
//! same code that drives [`crate::NetworkEngine`]. See the scheduler
//! module docs for the request flow.

use crate::scheduler::{GroupExecutor, Scheduler};
use crate::stats::StageMeta;
use crate::{
    EngineConfig, InferRequest, InferService, Inference, Pending, PlanCache, RuntimeError,
    RuntimeStats,
};
use epim_core::Epitome;
use epim_obs::trace;
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_tensor::ops::Conv2dCfg;
use epim_tensor::Tensor;
use std::time::Instant;

/// Adapter: one epitome layer's data path as a scheduler executor. The
/// whole layer reports as a single "datapath" stage in the per-stage
/// rollup and trace.
pub(crate) struct DataPathExecutor {
    dp: DataPath,
}

impl GroupExecutor for DataPathExecutor {
    fn execute_batch(
        &self,
        tenant: u32,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats, Vec<u64>), RuntimeError> {
        let started = Instant::now();
        let t_stage = trace::start();
        let (outs, stats) = self.dp.execute_batch(inputs)?;
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        trace::span(
            trace::SpanKind::Stage,
            tenant,
            0,
            t_stage,
            trace::pack_stage_payload(trace::StageOpKind::DataPath, inputs.len() as u64),
            0,
        );
        Ok((outs, stats, vec![ns]))
    }

    fn execute_one(
        &self,
        _tenant: u32,
        input: &Tensor,
    ) -> Result<(Tensor, DataPathStats), RuntimeError> {
        Ok(self.dp.execute(input)?)
    }

    fn stage_meta(&self) -> Vec<StageMeta> {
        vec![StageMeta {
            name: "datapath".to_string(),
            op: trace::StageOpKind::DataPath.as_str(),
        }]
    }
}

/// A batched inference serving engine for one epitome layer.
///
/// Construct with [`Engine::new`] (compiles the plan) or
/// [`Engine::with_cache`] (reuses a [`PlanCache`]). The API is synchronous
/// — [`Engine::infer`] blocks until the result is ready — but concurrent
/// callers are transparently coalesced into data-path batches.
pub struct Engine {
    scheduler: Scheduler<DataPathExecutor>,
    /// Cache handle for stats reporting (zero counters when absent).
    cache: Option<PlanCache>,
}

impl Engine {
    /// Builds an engine around `epitome`, compiling its plan from scratch.
    ///
    /// # Errors
    ///
    /// Propagates data-path construction errors and rejects an invalid
    /// [`EngineConfig`] (zero `max_batch`, `queue_capacity` or `workers`).
    pub fn new(
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let dp = DataPath::with_analog(epitome, conv_cfg, wrapping_enabled, analog)?;
        Self::from_datapath(dp, config)
    }

    /// Builds an engine reusing `cache`'s compiled plan for the epitome's
    /// spec (compiling into the cache on first sight). The engine keeps a
    /// handle to the cache and reports its counters in
    /// [`RuntimeStats::plan_cache`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::new`].
    pub fn with_cache(
        cache: &PlanCache,
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let dp = cache.datapath(epitome, conv_cfg, wrapping_enabled, analog)?;
        let scheduler = Scheduler::single(DataPathExecutor { dp }, config)?;
        Ok(Engine {
            scheduler,
            cache: Some(cache.clone()),
        })
    }

    /// Builds an engine around an existing data path.
    ///
    /// # Errors
    ///
    /// Rejects an invalid [`EngineConfig`].
    pub fn from_datapath(dp: DataPath, config: EngineConfig) -> Result<Self, RuntimeError> {
        let scheduler = Scheduler::single(DataPathExecutor { dp }, config)?;
        Ok(Engine {
            scheduler,
            cache: None,
        })
    }

    /// The data path this engine serves.
    pub fn datapath(&self) -> &DataPath {
        &self.scheduler.executor(0).dp
    }

    /// Runs one inference, blocking until its (possibly batched) execution
    /// completes. Safe to call from many threads at once — that is the
    /// point: concurrent submissions coalesce into batches. When the
    /// bounded queue is full the configured [`crate::FlowControl`]
    /// applies. Accepts a bare [`Tensor`] or a tagged [`InferRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShuttingDown`] if the engine is being
    /// dropped, [`RuntimeError::Overloaded`] if the request was shed, or
    /// the data path's execution error for this request.
    pub fn infer(&self, req: impl Into<InferRequest>) -> Result<Inference, RuntimeError> {
        self.scheduler.submit_wait(0, req.into())
    }

    /// Submits one request without ever blocking on queue space: if the
    /// bounded queue is full the request is shed immediately (regardless
    /// of the configured policy). On success the returned [`Pending`]
    /// waits for the result. This is the [`InferService`] surface;
    /// a bare [`Tensor`] converts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overloaded`] when the queue is full or
    /// [`RuntimeError::ShuttingDown`] during shutdown.
    pub fn try_infer(&self, req: impl Into<InferRequest>) -> Result<Pending, RuntimeError> {
        self.scheduler.try_submit(0, req.into())
    }

    /// Submits `inputs` together and waits for all results, in order.
    /// Unlike N sequential [`Engine::infer`] calls from one thread (which
    /// serialize into N batches of 1), the whole burst is visible to the
    /// batcher at once, so same-shaped inputs coalesce deterministically
    /// into `max_batch`-sized groups.
    ///
    /// # Errors
    ///
    /// Per-request errors are returned in the corresponding slot of the
    /// result vector; enqueueing after shutdown (or a burst larger than
    /// the queue capacity) fails as a whole.
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        self.scheduler.submit_many(0, inputs)
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn stats(&self) -> RuntimeStats {
        let cache_stats = self
            .cache
            .as_ref()
            .map(PlanCache::stats)
            .unwrap_or_default();
        self.scheduler.fleet_stats(cache_stats)
    }
}

impl InferService for Engine {
    fn try_infer(&self, req: InferRequest) -> Result<Pending, RuntimeError> {
        Engine::try_infer(self, req)
    }

    fn stats(&self) -> RuntimeStats {
        Engine::stats(self)
    }
}
