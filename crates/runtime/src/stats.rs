//! Serving-side statistics: latency distributions, batch-size histogram,
//! per-stage time rollups, queue/flow-control counters, and data-path
//! counter rollups — with a Prometheus text exporter.
//!
//! Since the observability PR the latency store is a log-linear
//! [`Histogram`] per distribution (queue wait, service time, end-to-end)
//! instead of the old 64 KiB sorted-sample ring: recording is O(1) with no
//! allocation, quantiles are an O(buckets) walk instead of an O(n log n)
//! sort on every `stats()` call, and the fleet rollup merges **exactly**
//! (bucket-wise addition over the full history) where the old ring could
//! only concatenate its most recent window — so a rare-but-slow tenant's
//! tail stays visible in fleet percentiles no matter how much traffic its
//! neighbours push through the ring.

use crate::PlanCacheStats;
use epim_obs::{Histogram, HistogramSnapshot, PromWriter};
use epim_pim::datapath::DataPathStats;
use serde::Serialize;
use std::time::Duration;

/// Static description of one plan stage, supplied by the executor so the
/// scheduler can pre-size its per-stage rollup (index-aligned with the
/// `stage_ns` slice each batch reports).
#[derive(Debug, Clone)]
pub(crate) struct StageMeta {
    /// The stage's display name (the lowered program's stage name).
    pub name: String,
    /// The stage's op kind (e.g. `"conv2d"`, `"epitome"`).
    pub op: &'static str,
}

/// Per-stage execution-time accumulator.
#[derive(Debug, Clone)]
struct StageAgg {
    name: String,
    op: &'static str,
    calls: u64,
    ns: u64,
}

/// One stage's execution-time rollup in a [`RuntimeStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageRollup {
    /// The stage's display name (the lowered program's stage name).
    pub name: String,
    /// The stage's op kind (e.g. `"conv2d"`, `"epitome"`).
    pub op: String,
    /// Batches this stage has executed.
    pub calls: u64,
    /// Total time spent in this stage, nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time snapshot of an engine's serving statistics.
///
/// Returned by `Engine::stats`; all counters and distributions are totals
/// since engine construction (nothing is windowed or sampled).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeStats {
    /// Requests completed (delivered to their submitters).
    pub requests: u64,
    /// Batches executed on the data path.
    pub batches: u64,
    /// `batch_histogram[i]` = batches that coalesced `i + 1` requests.
    pub batch_histogram: Vec<u64>,
    /// Median request latency (submission to delivery), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Submission-to-execution-start wait, nanoseconds (how long requests
    /// sat in the bounded queue — the autoscaling input signal).
    pub queue_wait: HistogramSnapshot,
    /// Execution time of the batch each request rode in, nanoseconds.
    pub service: HistogramSnapshot,
    /// Submission-to-delivery end-to-end latency, nanoseconds (the
    /// distribution behind `p50_latency_us`/`p99_latency_us`).
    pub e2e: HistogramSnapshot,
    /// Per-stage execution-time rollups for plan-serving engines (empty
    /// for the single-layer engine, which reports one `datapath` stage).
    pub stages: Vec<StageRollup>,
    /// Rollup of every executed batch's [`DataPathStats`] (via
    /// `accumulate`) — equals the sum a sequential `execute` per request
    /// would have produced, because the batched path counts identically.
    pub datapath: DataPathStats,
    /// Requests waiting in the bounded submission queue right now.
    pub queue_depth: usize,
    /// Most requests ever waiting in the queue at once (high-water mark)
    /// — with `queue_wait`, the input signal for worker autoscaling.
    pub queue_depth_high_water: usize,
    /// Requests rejected by flow control (`Shed` timeouts and full-queue
    /// `try_infer` calls) since engine construction.
    pub shed: u64,
    /// Requests shed because their own deadline passed before execution
    /// started (at admission or in the drain loop) — the
    /// [`crate::RuntimeError::DeadlineExceeded`] count.
    pub deadline_exceeded: u64,
    /// Crashed scheduler worker threads respawned by the supervisor.
    /// Fleet-wide (workers are shared by all tenants), so per-tenant
    /// snapshots of a multi-tenant engine all report the same value.
    pub worker_restarts: u64,
    /// Counters of the plan cache this engine was built from (all zero for
    /// engines constructed without a cache). `warm_network` effectiveness
    /// is visible here: a fully warmed engine compiles with zero
    /// additional misses.
    pub plan_cache: PlanCacheStats,
    /// Peak activation-arena bytes for one full `max_batch` group under
    /// the liveness-planned arena (zero for engines without a compiled
    /// network plan).
    pub arena_bytes: u64,
    /// What the pre-arena exact-size buffer pool kept resident for the
    /// same group (every stage activation plus the stacked source) — the
    /// "before" of the arena optimization.
    pub legacy_pool_bytes: u64,
}

impl RuntimeStats {
    /// Mean coalesced batch size (`requests / batches`), 0 when idle.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Total time requests have spent waiting in the submission queue —
    /// the integral the autoscaling signal wants alongside
    /// [`RuntimeStats::queue_depth_high_water`].
    pub fn time_in_queue(&self) -> Duration {
        Duration::from_nanos(self.queue_wait.sum)
    }

    /// Writes this snapshot's serving metrics into `w` under `labels`
    /// (e.g. `[("tenant", name)]`), grouping with samples other snapshots
    /// already wrote for the same metric names. Plan-cache counters are
    /// *not* written here — they are engine-level, so the engine adds
    /// them once (see `render_prometheus`).
    pub fn write_prometheus(&self, w: &mut PromWriter, labels: &[(&str, &str)]) {
        w.counter(
            "epim_requests_total",
            "Requests completed (delivered to their submitters).",
            labels,
            self.requests,
        );
        w.counter(
            "epim_batches_total",
            "Coalesced batches executed.",
            labels,
            self.batches,
        );
        w.counter(
            "epim_shed_total",
            "Requests rejected by flow control.",
            labels,
            self.shed,
        );
        w.counter(
            "epim_deadline_exceeded_total",
            "Requests shed because their deadline passed before execution.",
            labels,
            self.deadline_exceeded,
        );
        w.gauge(
            "epim_queue_depth",
            "Requests waiting in the bounded submission queue.",
            labels,
            self.queue_depth as f64,
        );
        w.gauge(
            "epim_queue_depth_high_water",
            "Most requests ever waiting in the queue at once.",
            labels,
            self.queue_depth_high_water as f64,
        );
        w.counter_f64(
            "epim_time_in_queue_seconds_total",
            "Total time requests have spent waiting in the queue.",
            labels,
            self.queue_wait.sum as f64 * 1e-9,
        );
        w.histogram(
            "epim_queue_wait_seconds",
            "Submission-to-execution-start queue wait.",
            labels,
            &self.queue_wait,
            1e-9,
        );
        w.histogram(
            "epim_service_seconds",
            "Batch execution (service) time per request.",
            labels,
            &self.service,
            1e-9,
        );
        w.histogram(
            "epim_request_seconds",
            "End-to-end submission-to-delivery latency.",
            labels,
            &self.e2e,
            1e-9,
        );
        for (i, &count) in self.batch_histogram.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let size = (i + 1).to_string();
            let mut with_size: Vec<(&str, &str)> = labels.to_vec();
            with_size.push(("size", size.as_str()));
            w.counter(
                "epim_batch_size_total",
                "Batches by coalesced size.",
                &with_size,
                count,
            );
        }
        for stage in &self.stages {
            let mut with_stage: Vec<(&str, &str)> = labels.to_vec();
            with_stage.push(("stage", stage.name.as_str()));
            with_stage.push(("op", stage.op.as_str()));
            w.counter(
                "epim_stage_calls_total",
                "Batches each plan stage has executed.",
                &with_stage,
                stage.calls,
            );
            w.counter_f64(
                "epim_stage_seconds_total",
                "Total execution time per plan stage.",
                &with_stage,
                stage.total_ns as f64 * 1e-9,
            );
        }
        w.gauge(
            "epim_arena_bytes",
            "Peak liveness-planned activation-arena bytes per full group.",
            labels,
            self.arena_bytes as f64,
        );
        w.gauge(
            "epim_legacy_pool_bytes",
            "Resident bytes the pre-arena exact-size pool would have kept.",
            labels,
            self.legacy_pool_bytes as f64,
        );
        w.counter(
            "epim_datapath_rounds_total",
            "Crossbar activation rounds executed.",
            labels,
            self.datapath.rounds,
        );
        w.counter(
            "epim_datapath_word_line_activations_total",
            "Word lines driven across all rounds.",
            labels,
            self.datapath.word_line_activations,
        );
        w.counter(
            "epim_datapath_bit_line_activations_total",
            "Bit lines sensed across all rounds.",
            labels,
            self.datapath.bit_line_activations,
        );
        w.counter(
            "epim_datapath_wrapped_elements_total",
            "Output elements produced by wrapping replication.",
            labels,
            self.datapath.wrapped_elements,
        );
    }

    /// Renders this snapshot alone as Prometheus text exposition
    /// (serving metrics unlabeled, plus the engine's plan-cache
    /// counters). Multi-tenant engines use
    /// [`write_prometheus`](RuntimeStats::write_prometheus) per tenant
    /// instead and add cache metrics once.
    pub fn render_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        self.write_prometheus(&mut w, &[]);
        write_cache_prometheus(&mut w, &self.plan_cache);
        write_supervision_prometheus(&mut w, self.worker_restarts);
        w.render()
    }
}

/// Writes fleet-level supervision counters (once per exposition — worker
/// threads are shared by every tenant, so this is never labeled).
pub(crate) fn write_supervision_prometheus(w: &mut PromWriter, worker_restarts: u64) {
    w.counter(
        "epim_worker_restarts_total",
        "Crashed scheduler workers respawned by the supervisor.",
        &[],
        worker_restarts,
    );
}

/// Writes engine-level plan-cache counters (once per exposition, never
/// per tenant).
pub(crate) fn write_cache_prometheus(w: &mut PromWriter, cache: &PlanCacheStats) {
    w.counter(
        "epim_plan_cache_hits_total",
        "Plan-cache lookups served from memory.",
        &[],
        cache.hits,
    );
    w.counter(
        "epim_plan_cache_misses_total",
        "Plan-cache lookups that compiled a new plan.",
        &[],
        cache.misses,
    );
    w.gauge(
        "epim_plan_cache_entries",
        "Compiled plans resident in the cache.",
        &[],
        cache.entries as f64,
    );
}

/// Mutable accumulator behind the engine's stats mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    requests: u64,
    batches: u64,
    histogram: Vec<u64>,
    queue_wait: Histogram,
    service: Histogram,
    e2e: Histogram,
    stages: Vec<StageAgg>,
    datapath: DataPathStats,
    shed: u64,
    deadline_exceeded: u64,
}

/// Saturating nanoseconds of a `Duration` (latencies never realistically
/// exceed u64 nanoseconds ≈ 584 years, but don't wrap if they do).
fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

impl StatsInner {
    /// An accumulator pre-sized for a plan's stages (index-aligned with
    /// the `stage_ns` slices its executor reports per batch).
    pub fn with_stages(meta: Vec<StageMeta>) -> Self {
        StatsInner {
            stages: meta
                .into_iter()
                .map(|m| StageAgg {
                    name: m.name,
                    op: m.op,
                    calls: 0,
                    ns: 0,
                })
                .collect(),
            ..StatsInner::default()
        }
    }

    /// Records requests rejected by flow control.
    pub fn record_shed(&mut self, count: u64) {
        self.shed += count;
    }

    /// Records requests shed because their deadline expired before
    /// execution started.
    pub fn record_deadline_exceeded(&mut self, count: u64) {
        self.deadline_exceeded += count;
    }

    /// Records one executed batch: size histogram, data-path rollup, and
    /// the per-stage wall times its executor measured (`stage_ns` may be
    /// empty — e.g. the per-request fallback path — or index-aligned with
    /// the stage metadata this accumulator was built with).
    pub fn record_batch(&mut self, batch_size: usize, stats: &DataPathStats, stage_ns: &[u64]) {
        debug_assert!(batch_size > 0);
        self.batches += 1;
        self.requests += batch_size as u64;
        if self.histogram.len() < batch_size {
            self.histogram.resize(batch_size, 0);
        }
        self.histogram[batch_size - 1] += 1;
        self.datapath.accumulate(stats);
        for (agg, &t) in self.stages.iter_mut().zip(stage_ns) {
            agg.calls += 1;
            agg.ns += t;
        }
    }

    /// Records one delivered request's latency decomposition: time queued
    /// before its batch started, the batch's execution (service) time,
    /// and the end-to-end submission-to-delivery latency.
    pub fn record_request(&mut self, queue_wait: Duration, service: Duration, e2e: Duration) {
        self.queue_wait.record(ns(queue_wait));
        self.service.record(ns(service));
        self.e2e.record(ns(e2e));
    }

    /// Merges another accumulator into this one — the fleet-level rollup
    /// across tenants. Counters and data-path rollups sum, the batch and
    /// latency histograms merge **exactly** (bucket-wise addition over
    /// each tenant's full history — no window, so fleet percentiles are
    /// true percentiles of the union), and stage rollups merge by
    /// `(name, op)`.
    pub fn absorb(&mut self, other: &StatsInner) {
        self.requests += other.requests;
        self.batches += other.batches;
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (mine, theirs) in self.histogram.iter_mut().zip(&other.histogram) {
            *mine += theirs;
        }
        self.queue_wait.merge(&other.queue_wait);
        self.service.merge(&other.service);
        self.e2e.merge(&other.e2e);
        for theirs in &other.stages {
            match self
                .stages
                .iter_mut()
                .find(|s| s.name == theirs.name && s.op == theirs.op)
            {
                Some(mine) => {
                    mine.calls += theirs.calls;
                    mine.ns += theirs.ns;
                }
                None => self.stages.push(theirs.clone()),
            }
        }
        self.shed += other.shed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.datapath.accumulate(&other.datapath);
    }

    /// Builds the public snapshot; queue depth, its high-water mark and
    /// the cache counters are sampled by the caller (they live outside
    /// the stats mutex).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_depth_high_water: usize,
        plan_cache: PlanCacheStats,
    ) -> RuntimeStats {
        RuntimeStats {
            requests: self.requests,
            batches: self.batches,
            batch_histogram: self.histogram.clone(),
            p50_latency_us: self.e2e.quantile(0.5) / 1000,
            p99_latency_us: self.e2e.quantile(0.99) / 1000,
            queue_wait: self.queue_wait.snapshot(),
            service: self.service.snapshot(),
            e2e: self.e2e.snapshot(),
            stages: self
                .stages
                .iter()
                .map(|s| StageRollup {
                    name: s.name.clone(),
                    op: s.op.to_string(),
                    calls: s.calls,
                    total_ns: s.ns,
                })
                .collect(),
            datapath: self.datapath,
            queue_depth,
            queue_depth_high_water,
            shed: self.shed,
            deadline_exceeded: self.deadline_exceeded,
            // Fleet-wide, sampled outside the stats mutex: the owning
            // scheduler fills it in (like the engines do arena_bytes).
            worker_restarts: 0,
            plan_cache,
            arena_bytes: 0,
            legacy_pool_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_e2e(inner: &mut StatsInner, us: u64) {
        let d = Duration::from_micros(us);
        inner.record_request(Duration::ZERO, d, d);
    }

    #[test]
    fn histogram_and_rollup_accumulate() {
        let mut inner = StatsInner::default();
        let dp = DataPathStats {
            rounds: 3,
            ..DataPathStats::default()
        };
        inner.record_batch(1, &dp, &[]);
        inner.record_batch(4, &dp, &[]);
        inner.record_batch(4, &dp, &[]);
        record_e2e(&mut inner, 10);
        record_e2e(&mut inner, 30);
        inner.record_shed(3);
        let snap = inner.snapshot(2, 5, PlanCacheStats::default());
        assert_eq!(snap.requests, 9);
        assert_eq!(snap.shed, 3);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_depth_high_water, 5);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batch_histogram, vec![1, 0, 0, 2]);
        assert_eq!(snap.datapath.rounds, 9);
        assert!((snap.mean_batch_size() - 3.0).abs() < 1e-12);
        assert_eq!(snap.p50_latency_us, 10);
        assert_eq!(snap.p99_latency_us, 30);
        assert_eq!(snap.e2e.count, 2);
    }

    #[test]
    fn absorb_rolls_up_counters_histograms_and_latencies() {
        let dp = DataPathStats {
            rounds: 2,
            ..DataPathStats::default()
        };
        let mut a = StatsInner::default();
        a.record_batch(1, &dp, &[]);
        record_e2e(&mut a, 10);
        a.record_shed(1);
        let mut b = StatsInner::default();
        b.record_batch(3, &dp, &[]);
        b.record_batch(3, &dp, &[]);
        record_e2e(&mut b, 30);
        record_e2e(&mut b, 50);

        let mut rollup = StatsInner::default();
        rollup.absorb(&a);
        rollup.absorb(&b);
        let snap = rollup.snapshot(0, 0, PlanCacheStats::default());
        assert_eq!(snap.requests, 7);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.batch_histogram, vec![1, 0, 2]);
        assert_eq!(snap.datapath.rounds, 6);
        // Percentiles cover the union of both sample sets.
        assert_eq!(snap.p50_latency_us, 30);
        assert_eq!(snap.p99_latency_us, 50);
    }

    #[test]
    fn fleet_percentiles_survive_what_a_sample_window_forgets() {
        // Satellite regression test for the old union-of-samples rollup:
        // tenant A pushes far more traffic than the old 2^16-sample ring
        // retained, tenant B contributes a few huge latencies. With raw
        // sample concatenation the rollup's p99 depended on how much of
        // A's history the window had already discarded; histogram merge
        // is exact over the full history, so the fleet p99 is the true
        // 99th percentile of the union — ~10µs, NOT the 10ms that
        // max-of-tenant-p99s (or a B-skewed window) would report.
        let mut a = StatsInner::default();
        for _ in 0..70_000 {
            record_e2e(&mut a, 10);
        }
        let mut b = StatsInner::default();
        for _ in 0..700 {
            record_e2e(&mut b, 10_000);
        }
        let pa = a.snapshot(0, 0, PlanCacheStats::default()).p99_latency_us;
        let pb = b.snapshot(0, 0, PlanCacheStats::default()).p99_latency_us;
        assert_eq!(pa, 10);
        assert_eq!(pb, 10_000);

        let mut fleet = StatsInner::default();
        fleet.absorb(&a);
        fleet.absorb(&b);
        let snap = fleet.snapshot(0, 0, PlanCacheStats::default());
        assert_eq!(snap.e2e.count, 70_700, "no sample was windowed away");
        // B is 700/70700 ≈ 0.99% of traffic, so the 99th percentile of
        // the union still sits in A's 10µs cluster.
        assert_eq!(snap.p50_latency_us, 10);
        assert_eq!(snap.p99_latency_us, 10);
        // The tail is still fully visible past its quantile.
        assert_eq!(snap.e2e.quantile(0.999) / 1000, 10_000);
        assert_ne!(
            snap.p99_latency_us,
            pa.max(pb),
            "fleet p99 must not be the max of tenant p99s"
        );
    }

    #[test]
    fn stage_rollups_record_and_merge() {
        let meta = vec![
            StageMeta {
                name: "conv1".into(),
                op: "conv2d",
            },
            StageMeta {
                name: "fc".into(),
                op: "linear",
            },
        ];
        let dp = DataPathStats::default();
        let mut a = StatsInner::with_stages(meta.clone());
        a.record_batch(2, &dp, &[100, 50]);
        a.record_batch(2, &dp, &[120, 60]);
        // Fallback batches report no stage times; rollup is unaffected.
        a.record_batch(1, &dp, &[]);
        let mut b = StatsInner::with_stages(meta);
        b.record_batch(4, &dp, &[10, 5]);

        let mut fleet = StatsInner::default();
        fleet.absorb(&a);
        fleet.absorb(&b);
        let snap = fleet.snapshot(0, 0, PlanCacheStats::default());
        assert_eq!(snap.stages.len(), 2);
        assert_eq!(snap.stages[0].name, "conv1");
        assert_eq!(snap.stages[0].op, "conv2d");
        assert_eq!(snap.stages[0].calls, 3);
        assert_eq!(snap.stages[0].total_ns, 230);
        assert_eq!(snap.stages[1].calls, 3);
        assert_eq!(snap.stages[1].total_ns, 115);
    }

    #[test]
    fn queue_wait_and_service_distributions_are_separate() {
        let mut inner = StatsInner::default();
        inner.record_request(
            Duration::from_micros(100),
            Duration::from_micros(400),
            Duration::from_micros(500),
        );
        inner.record_request(
            Duration::from_micros(300),
            Duration::from_micros(400),
            Duration::from_micros(700),
        );
        let snap = inner.snapshot(0, 0, PlanCacheStats::default());
        assert_eq!(snap.queue_wait.count, 2);
        assert_eq!(snap.queue_wait.quantile(1.0), 300_000);
        assert_eq!(snap.service.quantile(1.0), 400_000);
        assert_eq!(snap.e2e.quantile(1.0), 700_000);
        assert_eq!(snap.time_in_queue(), Duration::from_micros(400));
    }

    #[test]
    fn prometheus_exposition_contains_serving_metrics() {
        let mut inner = StatsInner::with_stages(vec![StageMeta {
            name: "conv1".into(),
            op: "conv2d",
        }]);
        inner.record_batch(2, &DataPathStats::default(), &[1_000_000]);
        inner.record_request(
            Duration::from_micros(20),
            Duration::from_micros(80),
            Duration::from_micros(100),
        );
        inner.record_request(
            Duration::from_micros(20),
            Duration::from_micros(80),
            Duration::from_micros(100),
        );
        inner.record_shed(1);
        let snap = inner.snapshot(3, 4, PlanCacheStats::default());
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE epim_requests_total counter"));
        assert!(text.contains("epim_requests_total 2"));
        assert!(text.contains("epim_shed_total 1"));
        assert!(text.contains("epim_queue_depth 3"));
        assert!(text.contains("epim_queue_depth_high_water 4"));
        assert!(text.contains("# TYPE epim_queue_wait_seconds histogram"));
        assert!(text.contains("epim_queue_wait_seconds_count 2"));
        assert!(text.contains("epim_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("epim_batch_size_total{size=\"2\"} 1"));
        assert!(text.contains("epim_stage_calls_total{stage=\"conv1\",op=\"conv2d\"} 1"));
        assert!(text.contains("epim_stage_seconds_total{stage=\"conv1\",op=\"conv2d\"} 0.001"));
        assert!(text.contains("epim_plan_cache_entries 0"));
        // Labeled per-tenant form groups under the same headers.
        let mut w = PromWriter::new();
        snap.write_prometheus(&mut w, &[("tenant", "resnet")]);
        let labeled = w.render();
        assert!(labeled.contains("epim_requests_total{tenant=\"resnet\"} 2"));
        assert!(labeled
            .contains("epim_stage_calls_total{tenant=\"resnet\",stage=\"conv1\",op=\"conv2d\"} 1"));
    }

    #[test]
    fn prometheus_exposition_contains_failure_counters() {
        let mut inner = StatsInner::default();
        inner.record_shed(2);
        inner.record_deadline_exceeded(5);
        let mut snap = inner.snapshot(0, 0, PlanCacheStats::default());
        snap.worker_restarts = 3;
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE epim_deadline_exceeded_total counter"));
        assert!(text.contains("epim_deadline_exceeded_total 5"));
        assert!(text.contains("# TYPE epim_worker_restarts_total counter"));
        assert!(text.contains("epim_worker_restarts_total 3"));
        // The restart counter is engine-level: never written per tenant.
        let mut w = PromWriter::new();
        snap.write_prometheus(&mut w, &[("tenant", "resnet")]);
        let labeled = w.render();
        assert!(labeled.contains("epim_deadline_exceeded_total{tenant=\"resnet\"} 5"));
        assert!(!labeled.contains("epim_worker_restarts_total"));
    }

    #[test]
    fn deadline_counter_absorbs_into_fleet_rollup() {
        let mut a = StatsInner::default();
        a.record_deadline_exceeded(1);
        let mut b = StatsInner::default();
        b.record_deadline_exceeded(4);
        let mut fleet = StatsInner::default();
        fleet.absorb(&a);
        fleet.absorb(&b);
        let snap = fleet.snapshot(0, 0, PlanCacheStats::default());
        assert_eq!(snap.deadline_exceeded, 5);
    }
}
