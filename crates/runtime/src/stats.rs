//! Serving-side statistics: request latencies, batch-size distribution,
//! queue/flow-control counters, and data-path counter rollups.

use crate::PlanCacheStats;
use epim_pim::datapath::DataPathStats;
use serde::Serialize;
use std::time::Duration;

/// Cap on retained latency samples; the reservoir is a ring, so the
/// percentiles always describe the most recent window.
const LATENCY_WINDOW: usize = 1 << 16;

/// A point-in-time snapshot of an engine's serving statistics.
///
/// Returned by `Engine::stats`; all counters are totals since engine
/// construction, latency percentiles cover the most recent
/// [`LATENCY_WINDOW`]-request window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeStats {
    /// Requests completed (delivered to their submitters).
    pub requests: u64,
    /// Batches executed on the data path.
    pub batches: u64,
    /// `batch_histogram[i]` = batches that coalesced `i + 1` requests.
    pub batch_histogram: Vec<u64>,
    /// Median request latency (submission to delivery), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Rollup of every executed batch's [`DataPathStats`] (via
    /// `accumulate`) — equals the sum a sequential `execute` per request
    /// would have produced, because the batched path counts identically.
    pub datapath: DataPathStats,
    /// Requests waiting in the bounded submission queue right now.
    pub queue_depth: usize,
    /// Requests rejected by flow control (`Shed` timeouts and full-queue
    /// `try_infer` calls) since engine construction.
    pub shed: u64,
    /// Counters of the plan cache this engine was built from (all zero for
    /// engines constructed without a cache). `warm_network` effectiveness
    /// is visible here: a fully warmed engine compiles with zero
    /// additional misses.
    pub plan_cache: PlanCacheStats,
    /// Peak activation-arena bytes for one full `max_batch` group under
    /// the liveness-planned arena (zero for engines without a compiled
    /// network plan).
    pub arena_bytes: u64,
    /// What the pre-arena exact-size buffer pool kept resident for the
    /// same group (every stage activation plus the stacked source) — the
    /// "before" of the arena optimization.
    pub legacy_pool_bytes: u64,
}

impl RuntimeStats {
    /// Mean coalesced batch size (`requests / batches`), 0 when idle.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Mutable accumulator behind the engine's stats mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    requests: u64,
    batches: u64,
    histogram: Vec<u64>,
    latencies_us: Vec<u64>,
    /// Next ring slot once `latencies_us` reaches the window cap.
    ring_at: usize,
    datapath: DataPathStats,
    shed: u64,
}

impl StatsInner {
    /// Records requests rejected by flow control.
    pub fn record_shed(&mut self, count: u64) {
        self.shed += count;
    }
    /// Records one executed batch and its per-request latencies.
    pub fn record_batch(&mut self, batch_size: usize, stats: &DataPathStats) {
        debug_assert!(batch_size > 0);
        self.batches += 1;
        self.requests += batch_size as u64;
        if self.histogram.len() < batch_size {
            self.histogram.resize(batch_size, 0);
        }
        self.histogram[batch_size - 1] += 1;
        self.datapath.accumulate(stats);
    }

    /// Merges another accumulator into this one — the fleet-level rollup
    /// across tenants. Counters and data-path rollups sum, histograms
    /// merge element-wise, and the raw latency samples concatenate (the
    /// rollup is snapshotted immediately, so the resulting sample list may
    /// exceed [`LATENCY_WINDOW`]; it is never written back through
    /// `record_latency`).
    pub fn absorb(&mut self, other: &StatsInner) {
        self.requests += other.requests;
        self.batches += other.batches;
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (mine, theirs) in self.histogram.iter_mut().zip(&other.histogram) {
            *mine += theirs;
        }
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.shed += other.shed;
        self.datapath.accumulate(&other.datapath);
    }

    /// Records one delivered request's latency.
    pub fn record_latency(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.ring_at] = us;
            self.ring_at = (self.ring_at + 1) % LATENCY_WINDOW;
        }
    }

    /// Builds the public snapshot; the queue depth and cache counters are
    /// sampled by the caller (they live outside the stats mutex).
    pub fn snapshot(&self, queue_depth: usize, plan_cache: PlanCacheStats) -> RuntimeStats {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        RuntimeStats {
            requests: self.requests,
            batches: self.batches,
            batch_histogram: self.histogram.clone(),
            p50_latency_us: percentile(&sorted, 50),
            p99_latency_us: percentile(&sorted, 99),
            datapath: self.datapath,
            queue_depth,
            shed: self.shed,
            plan_cache,
            arena_bytes: 0,
            legacy_pool_bytes: 0,
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&sorted, 100), 100);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn histogram_and_rollup_accumulate() {
        let mut inner = StatsInner::default();
        let dp = DataPathStats {
            rounds: 3,
            ..DataPathStats::default()
        };
        inner.record_batch(1, &dp);
        inner.record_batch(4, &dp);
        inner.record_batch(4, &dp);
        inner.record_latency(Duration::from_micros(10));
        inner.record_latency(Duration::from_micros(30));
        inner.record_shed(3);
        let snap = inner.snapshot(2, PlanCacheStats::default());
        assert_eq!(snap.requests, 9);
        assert_eq!(snap.shed, 3);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batch_histogram, vec![1, 0, 0, 2]);
        assert_eq!(snap.datapath.rounds, 9);
        assert!((snap.mean_batch_size() - 3.0).abs() < 1e-12);
        assert_eq!(snap.p50_latency_us, 10);
        assert_eq!(snap.p99_latency_us, 30);
    }

    #[test]
    fn absorb_rolls_up_counters_histograms_and_latencies() {
        let dp = DataPathStats {
            rounds: 2,
            ..DataPathStats::default()
        };
        let mut a = StatsInner::default();
        a.record_batch(1, &dp);
        a.record_latency(Duration::from_micros(10));
        a.record_shed(1);
        let mut b = StatsInner::default();
        b.record_batch(3, &dp);
        b.record_batch(3, &dp);
        b.record_latency(Duration::from_micros(30));
        b.record_latency(Duration::from_micros(50));

        let mut rollup = StatsInner::default();
        rollup.absorb(&a);
        rollup.absorb(&b);
        let snap = rollup.snapshot(0, PlanCacheStats::default());
        assert_eq!(snap.requests, 7);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.batch_histogram, vec![1, 0, 2]);
        assert_eq!(snap.datapath.rounds, 6);
        // Percentiles cover the union of both sample sets.
        assert_eq!(snap.p50_latency_us, 30);
        assert_eq!(snap.p99_latency_us, 50);
    }

    #[test]
    fn latency_window_wraps() {
        let mut inner = StatsInner::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            inner.record_latency(Duration::from_micros(i as u64));
        }
        let snap = inner.snapshot(0, PlanCacheStats::default());
        // Oldest samples were overwritten; the p99 reflects recent traffic.
        assert!(snap.p99_latency_us as usize >= LATENCY_WINDOW / 2);
    }
}
