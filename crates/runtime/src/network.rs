//! Whole-network serving: a [`NetworkPlan`] compiled from an
//! `epim_models` [`Network`] and the [`NetworkEngine`] that serves it
//! behind one submission queue.
//!
//! The plan is the runtime half of the lowering story: `Network::lower`
//! produces the weight-free [`NetworkProgram`]; [`NetworkPlan::compile`]
//! binds weights to it, resolves **every epitome stage through the
//! [`PlanCache`]** (one compiled plan per distinct spec, shared across
//! layers, networks and engines — warming the cache first via
//! [`PlanCache::warm_network`] makes compilation miss-free), precomputes
//! per-stage activation shapes and the point where each activation dies,
//! and keeps a reusable buffer pool so steady-state serving does not
//! allocate per stage per group.
//!
//! Execution stacks a whole request group into one batch tensor and
//! streams it through the stages: epitome stages run on the batched data
//! path (packed round panels amortized over every image of every
//! request), dense convolutions run the multi-image batched GEMM, and
//! elementwise stages write into pooled buffers. The result is
//! **bit-identical** to executing each request alone through
//! `NetworkProgram::forward_reference` — every stage's per-image
//! arithmetic is independent of the batch around it (the classifier GEMM,
//! whose row dimension *is* the batch, is deliberately executed
//! per-request to keep that true) — with the [`DataPathStats`] rollup
//! equal to the per-request sum.

use crate::scheduler::{GroupExecutor, Scheduler};
use crate::{EngineConfig, Inference, Pending, PlanCache, RuntimeError, RuntimeStats};
use epim_models::lower::{NetworkProgram, NetworkWeights, StageInput, StageOp};
use epim_models::network::Network;
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_tensor::ops::{gemm, global_avg_pool, max_pool2d, Conv2dCfg, PoolCfg};
use epim_tensor::{ops, Tensor};
use std::sync::{Arc, Mutex};

/// One executable stage: the program op with its weights bound.
enum PlannedOp {
    Conv {
        weight: Tensor,
        bias: Option<Tensor>,
        cfg: Conv2dCfg,
    },
    Epitome {
        dp: DataPath,
    },
    Relu,
    MaxPool(PoolCfg),
    GlobalAvgPool,
    Linear {
        weight: Tensor,
        bias: Option<Tensor>,
    },
    Add {
        with: usize,
    },
}

/// A pool of reusable activation buffers (leased per stage execution,
/// returned when the activation dies).
#[derive(Default)]
struct BufferPool {
    free: Mutex<Vec<Vec<f32>>>,
}

/// Buffers retained across groups; beyond this, returns are dropped.
const POOL_RETAIN: usize = 64;

impl BufferPool {
    /// Leases a buffer of exactly `len` elements (contents undefined; the
    /// caller overwrites every element).
    fn lease(&self, len: usize) -> Vec<f32> {
        let mut v = self
            .free
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default();
        v.resize(len, 0.0);
        v
    }

    /// Returns a buffer to the pool.
    fn put(&self, v: Vec<f32>) {
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < POOL_RETAIN {
            free.push(v);
        }
    }
}

/// A whole `Network` compiled for serving: program + bound weights +
/// per-stage data paths, shareable (behind an [`Arc`]) across engines.
pub struct NetworkPlan {
    program: NetworkProgram,
    ops: Vec<PlannedOp>,
    /// `free_after[i]` = producer stages whose activations die once stage
    /// `i` has executed.
    free_after: Vec<Vec<usize>>,
    buffers: BufferPool,
}

impl NetworkPlan {
    /// Lowers `network` for `input_h × input_w` inputs and binds
    /// `weights`, resolving every epitome stage through `cache` (layers
    /// sharing a spec share one compiled plan; a pre-warmed cache
    /// compiles nothing).
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (unroutable inventory), weight-binding
    /// mismatches and plan compilation failures.
    pub fn compile(
        cache: &PlanCache,
        network: &Network,
        weights: &NetworkWeights,
        (input_h, input_w): (usize, usize),
        wrapping_enabled: bool,
        analog: AnalogModel,
    ) -> Result<Self, RuntimeError> {
        let program = network
            .lower(input_h, input_w)
            .map_err(|e| RuntimeError::config(format!("lowering failed: {e}")))?;
        let mut ops = Vec::with_capacity(program.stages().len());
        for stage in program.stages() {
            let op = match &stage.op {
                StageOp::Conv { layer, cfg } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    PlannedOp::Conv {
                        weight: w.clone(),
                        bias: b.cloned(),
                        cfg: *cfg,
                    }
                }
                StageOp::Epitome { layer, spec, cfg } => {
                    let epi = weights.epitome(*layer, spec, &stage.name)?;
                    let dp = cache.datapath(epi, *cfg, wrapping_enabled, analog)?;
                    PlannedOp::Epitome { dp }
                }
                StageOp::Relu => PlannedOp::Relu,
                StageOp::MaxPool(cfg) => PlannedOp::MaxPool(*cfg),
                StageOp::GlobalAvgPool => PlannedOp::GlobalAvgPool,
                StageOp::Linear { layer } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    let wmat = w
                        .reshape(&[w.shape()[0], w.len() / w.shape()[0]])
                        .map_err(|e| RuntimeError::config(format!("fc weight: {e}")))?;
                    PlannedOp::Linear {
                        weight: wmat,
                        bias: b.cloned(),
                    }
                }
                StageOp::Add { with } => PlannedOp::Add { with: *with },
            };
            ops.push(op);
        }

        // Death points: stage j's activation can be freed after its last
        // consumer executes. The final stage is the program output and is
        // never freed here.
        let consumers = program.consumers();
        let last = program.stages().len().saturating_sub(1);
        let mut free_after = vec![Vec::new(); program.stages().len()];
        for (j, readers) in consumers.iter().enumerate() {
            if j == last {
                continue;
            }
            if let Some(&die_at) = readers.iter().max() {
                free_after[die_at].push(j);
            }
        }

        Ok(NetworkPlan {
            program,
            ops,
            free_after,
            buffers: BufferPool::default(),
        })
    }

    /// The lowered program this plan executes.
    pub fn program(&self) -> &NetworkProgram {
        &self.program
    }

    /// Pre-allocates the activation buffer pool for groups of up to
    /// `images` stacked images, so the first served groups do not pay the
    /// allocations either. Called by [`NetworkEngine`] with its
    /// `max_batch`.
    pub fn preallocate(&self, images: usize) {
        let mut lens: Vec<usize> = self
            .program
            .stages()
            .iter()
            .map(|s| images * s.out_shape.iter().product::<usize>())
            .collect();
        lens.push(images * self.program.input_shape().iter().product::<usize>());
        // Lease everything first, then return: putting one back before
        // leasing the next would just resize the same buffer over and
        // over (the pool is a LIFO).
        let bufs: Vec<Vec<f32>> = lens
            .into_iter()
            .map(|len| self.buffers.lease(len))
            .collect();
        for buf in bufs {
            self.buffers.put(buf);
        }
    }

    /// Executes a shape-uniform request group through the whole program,
    /// returning one output per request plus the summed
    /// [`DataPathStats`] of every epitome stage.
    ///
    /// Semantics are exactly `inputs.iter().map(forward_reference)`: the
    /// outputs and stats are bit-identical to sequential per-request
    /// reference execution.
    ///
    /// # Errors
    ///
    /// Returns a geometry error if the inputs' shapes differ from one
    /// another or from the program input shape.
    pub fn execute_batch(
        &self,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats), RuntimeError> {
        let Some(first) = inputs.first() else {
            return Ok((Vec::new(), DataPathStats::default()));
        };
        let in_shape = self.program.input_shape();
        if first.rank() != 4 || first.shape()[1..] != in_shape[..] {
            return Err(RuntimeError::Pim(epim_pim::PimError::geometry(format!(
                "network input must be (N, {}, {}, {}), got {:?}",
                in_shape[0],
                in_shape[1],
                in_shape[2],
                first.shape()
            ))));
        }
        if let Some(bad) = inputs.iter().find(|t| t.shape() != first.shape()) {
            return Err(RuntimeError::Pim(epim_pim::PimError::geometry(format!(
                "network batch requires identical input shapes, got {:?} and {:?}",
                first.shape(),
                bad.shape()
            ))));
        }
        let n_per = first.shape()[0];
        let images = inputs.len() * n_per;

        // Stack the group into one (B, C, H, W) batch tensor (pooled
        // buffer). Per-image results are independent of the stacking, so
        // this is purely a dispatch-amortization move.
        let plane = first.len();
        let mut stacked_buf = self.buffers.lease(inputs.len() * plane);
        for (g, input) in inputs.iter().enumerate() {
            stacked_buf[g * plane..(g + 1) * plane].copy_from_slice(input.data());
        }
        let mut shape = vec![images];
        shape.extend_from_slice(in_shape);
        let source = Tensor::from_vec(stacked_buf, &shape)
            .map_err(|e| RuntimeError::config(format!("stacking failed: {e}")))?;

        let mut stats = DataPathStats::default();
        let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let x = match self.program.stages()[i].input {
                StageInput::Source => &source,
                StageInput::Stage(j) => outputs[j].as_ref().expect("stages execute in order"),
            };
            let y = match op {
                PlannedOp::Conv { weight, bias, cfg } => {
                    ops::conv2d(x, weight, bias.as_ref(), *cfg)
                        .map_err(epim_pim::PimError::Tensor)?
                }
                PlannedOp::Epitome { dp } => {
                    let (mut outs, s) = dp.execute_batch(&[x])?;
                    stats.accumulate(&s);
                    outs.pop().expect("one output per batch input")
                }
                PlannedOp::Relu => {
                    // Pooled elementwise; same scalar op as `ops::relu`.
                    let mut buf = self.buffers.lease(x.len());
                    for (o, &v) in buf.iter_mut().zip(x.data()) {
                        *o = v.max(0.0);
                    }
                    Tensor::from_vec(buf, x.shape()).map_err(epim_pim::PimError::Tensor)?
                }
                PlannedOp::MaxPool(cfg) => {
                    max_pool2d(x, *cfg).map_err(epim_pim::PimError::Tensor)?
                }
                PlannedOp::GlobalAvgPool => {
                    let (n, c) = (x.shape()[0], x.shape()[1]);
                    global_avg_pool(x)
                        .and_then(|t| t.reshape(&[n, c, 1, 1]))
                        .map_err(epim_pim::PimError::Tensor)?
                }
                PlannedOp::Linear { weight, bias } => {
                    // Per-request GEMMs: the row dimension of this product
                    // is the batch itself, so folding requests together
                    // would change each row's kernel path. Request-sized
                    // row blocks run the exact calls `ops::linear` makes —
                    // bit-identical to per-request reference execution —
                    // but read the input and write the pooled output
                    // in place (no staging copies).
                    let feats = x.len() / x.shape()[0].max(1);
                    let out_f = weight.shape()[0];
                    if feats != weight.shape()[1] {
                        return Err(RuntimeError::config(format!(
                            "classifier expects {} features, got {feats}",
                            weight.shape()[1]
                        )));
                    }
                    let mut buf = self.buffers.lease(images * out_f);
                    for g in 0..inputs.len() {
                        let rows = &x.data()[g * n_per * feats..(g + 1) * n_per * feats];
                        let out = &mut buf[g * n_per * out_f..(g + 1) * n_per * out_f];
                        match bias {
                            Some(b) => gemm::gemm_nt_bias_col(
                                n_per,
                                out_f,
                                feats,
                                rows,
                                weight.data(),
                                b.data(),
                                out,
                            ),
                            None => gemm::gemm_nt(n_per, out_f, feats, rows, weight.data(), out),
                        }
                    }
                    Tensor::from_vec(buf, &[images, out_f]).map_err(epim_pim::PimError::Tensor)?
                }
                PlannedOp::Add { with } => {
                    let other = outputs[*with].as_ref().expect("stages execute in order");
                    // Pooled elementwise; same scalar op as `Tensor::add`.
                    let mut buf = self.buffers.lease(x.len());
                    for (o, (&a, &b)) in buf.iter_mut().zip(x.data().iter().zip(other.data())) {
                        *o = a + b;
                    }
                    Tensor::from_vec(buf, x.shape()).map_err(epim_pim::PimError::Tensor)?
                }
            };
            outputs.push(Some(y));
            // Return dead activations to the pool.
            for &j in &self.free_after[i] {
                if let Some(dead) = outputs[j].take() {
                    self.buffers.put(dead.into_vec());
                }
            }
        }

        // The source dies with the first stage in a chain program, but a
        // residual program may read it later; it is safe to recycle here
        // in all cases because every stage has executed.
        self.buffers.put(source.into_vec());

        // Split the stacked output back into per-request tensors.
        let out = outputs.pop().flatten().expect("last stage executed");
        let mut req_shape = out.shape().to_vec();
        req_shape[0] = n_per;
        let req_len = out.len() / inputs.len();
        let od = out.data();
        let outs = (0..inputs.len())
            .map(|g| {
                Tensor::from_vec(od[g * req_len..(g + 1) * req_len].to_vec(), &req_shape)
                    .expect("request shape matches slice")
            })
            .collect();
        Ok((outs, stats))
    }
}

/// Adapter: a shared network plan as a scheduler executor.
pub(crate) struct PlanExecutor {
    pub(crate) plan: Arc<NetworkPlan>,
}

impl GroupExecutor for PlanExecutor {
    fn execute_batch(
        &self,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats), RuntimeError> {
        self.plan.execute_batch(inputs)
    }

    fn execute_one(&self, input: &Tensor) -> Result<(Tensor, DataPathStats), RuntimeError> {
        let (mut outs, stats) = self.plan.execute_batch(&[input])?;
        Ok((outs.pop().expect("one output"), stats))
    }
}

/// A serving engine for a whole epitome-compressed network: one submission
/// queue, shape-grouped micro-batching, and pipelined execution of the
/// compiled [`NetworkPlan`] — built on the same scheduler core as the
/// single-layer [`crate::Engine`].
///
/// # Example
///
/// ```no_run
/// use epim_models::lower::NetworkWeights;
/// use epim_models::network::Network;
/// use epim_models::resnet::resnet50;
/// use epim_pim::datapath::AnalogModel;
/// use epim_runtime::{EngineConfig, NetworkEngine, PlanCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::baseline(resnet50());
/// let weights = NetworkWeights::random(&net, 1)?;
/// let cache = PlanCache::new();
/// cache.warm_network(&net)?; // compile every epitome plan up front
/// let engine = NetworkEngine::new(
///     &cache, &net, &weights, (224, 224), true, AnalogModel::ideal(),
///     EngineConfig::default(),
/// )?;
/// # Ok(())
/// # }
/// ```
pub struct NetworkEngine {
    scheduler: Scheduler<PlanExecutor>,
    cache: PlanCache,
}

impl NetworkEngine {
    /// Compiles `network` (see [`NetworkPlan::compile`]) and spawns the
    /// serving scheduler. The engine keeps a handle to `cache` and
    /// reports its counters in [`RuntimeStats::plan_cache`].
    ///
    /// # Errors
    ///
    /// Propagates compilation errors and rejects an invalid
    /// [`EngineConfig`].
    pub fn new(
        cache: &PlanCache,
        network: &Network,
        weights: &NetworkWeights,
        input_hw: (usize, usize),
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let plan = Arc::new(NetworkPlan::compile(
            cache,
            network,
            weights,
            input_hw,
            wrapping_enabled,
            analog,
        )?);
        Self::from_plan(plan, cache, config)
    }

    /// Spawns a serving engine around an already-compiled (possibly
    /// shared) plan.
    ///
    /// # Errors
    ///
    /// Rejects an invalid [`EngineConfig`].
    pub fn from_plan(
        plan: Arc<NetworkPlan>,
        cache: &PlanCache,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        plan.preallocate(config.max_batch.max(1));
        let scheduler = Scheduler::single(PlanExecutor { plan }, config)?;
        Ok(NetworkEngine {
            scheduler,
            cache: cache.clone(),
        })
    }

    /// The compiled plan this engine serves.
    pub fn plan(&self) -> &Arc<NetworkPlan> {
        &self.scheduler.executor(0).plan
    }

    /// Runs one whole-network inference (input `(N, C, H, W)` matching the
    /// program input shape), blocking until the pipelined execution
    /// completes. Concurrent callers coalesce into stacked groups.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShuttingDown`] during shutdown,
    /// [`RuntimeError::Overloaded`] if the request was shed, or this
    /// request's execution error.
    pub fn infer(&self, input: Tensor) -> Result<Inference, RuntimeError> {
        self.scheduler.submit_wait(0, input)
    }

    /// Submits without ever blocking on queue space (full queue → shed
    /// immediately); the returned [`Pending`] waits for the result.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overloaded`] when the queue is full.
    pub fn try_infer(&self, input: Tensor) -> Result<Pending, RuntimeError> {
        self.scheduler.try_submit(0, input)
    }

    /// Submits a burst atomically and waits for all results, in order.
    ///
    /// # Errors
    ///
    /// Per-request errors land in their result slot; a burst larger than
    /// the queue capacity (or submission during shutdown) fails whole.
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        self.scheduler.submit_many(0, inputs)
    }

    /// A point-in-time snapshot of the serving statistics (including the
    /// plan cache's counters).
    pub fn stats(&self) -> RuntimeStats {
        self.scheduler.fleet_stats(self.cache.stats())
    }
}
