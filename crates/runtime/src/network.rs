//! Whole-network serving: a [`NetworkPlan`] compiled from an
//! `epim_models` [`Network`] and the [`NetworkEngine`] that serves it
//! behind one submission queue.
//!
//! The plan is the runtime half of the compile pipeline: `Network::lower`
//! produces the weight-free [`NetworkProgram`],
//! [`NetworkProgram::optimize`] fuses ReLU epilogues and folds identity
//! stages, and [`NetworkPlan::compile`] binds weights to the result,
//! resolves **every epitome stage through the [`PlanCache`]** (one
//! compiled plan per distinct spec, shared across layers, networks and
//! engines — warming the cache first via [`PlanCache::warm_network`]
//! makes compilation miss-free), and computes the **liveness-planned
//! activation arena** ([`ArenaPlan`]): one static layout assigning every
//! activation (and the im2col scratch of every dense convolution) an
//! offset in a single allocation, with lifetimes-disjoint activations
//! sharing memory. Steady-state serving leases one whole arena per
//! in-flight group — no per-stage allocation, no buffer-pool resize
//! churn, and a peak footprint strictly below the old exact-size pool's
//! high-water mark (both reported in
//! [`RuntimeStats::arena_bytes`] / [`RuntimeStats::legacy_pool_bytes`]).
//!
//! Execution stacks a whole request group into the arena's source slot
//! and streams it through the stages: epitome stages run on the batched
//! data path (packed round panels amortized over every image of every
//! request), dense convolutions run the multi-image batched GEMM with
//! their fused ReLU epilogue, and elementwise stages run the vectorized
//! slice kernels. The result is **bit-identical** to executing each
//! request alone through `NetworkProgram::forward_reference` on the
//! *unoptimized* program — every fused epilogue clamps the exact value
//! the unfused kernel writes, and every stage's per-image arithmetic is
//! independent of the batch around it (the classifier GEMM, whose row
//! dimension *is* the batch, is deliberately executed per-request to
//! keep that true) — with the [`DataPathStats`] rollup equal to the
//! per-request sum.

use crate::scheduler::{GroupExecutor, Scheduler};
use crate::stats::StageMeta;
use crate::{
    EngineConfig, InferRequest, InferService, Inference, Pending, PlanCache, RuntimeError,
    RuntimeStats,
};
use epim_models::lower::{NetworkProgram, NetworkWeights, StageInput, StageOp};
use epim_models::network::Network;
use epim_models::optimize::{ArenaPlan, ArenaSlot};
use epim_obs::trace;
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_tensor::ops::{
    add_relu_slice, add_slice, conv2d_into, gemm, global_avg_pool_into, max_pool2d_into,
    relu_slice, Conv2dCfg, PoolCfg,
};
use epim_tensor::Tensor;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One executable stage: the program op with its weights bound.
enum PlannedOp {
    Conv {
        weight: Tensor,
        bias: Option<Tensor>,
        cfg: Conv2dCfg,
        relu: bool,
    },
    Epitome {
        dp: DataPath,
        relu: bool,
    },
    Relu,
    MaxPool(PoolCfg),
    GlobalAvgPool,
    Linear {
        weight: Tensor,
        bias: Option<Tensor>,
        relu: bool,
    },
    Add {
        with: usize,
        relu: bool,
    },
}

impl PlannedOp {
    /// The op kind packed into stage trace spans.
    fn trace_kind(&self) -> trace::StageOpKind {
        match self {
            PlannedOp::Conv { .. } => trace::StageOpKind::Conv,
            PlannedOp::Epitome { .. } => trace::StageOpKind::Epitome,
            PlannedOp::Relu => trace::StageOpKind::Relu,
            PlannedOp::MaxPool(_) => trace::StageOpKind::MaxPool,
            PlannedOp::GlobalAvgPool => trace::StageOpKind::GlobalAvgPool,
            PlannedOp::Linear { .. } => trace::StageOpKind::Linear,
            PlannedOp::Add { .. } => trace::StageOpKind::Add,
        }
    }

    /// The op name reported in per-stage metric rollups.
    fn op_name(&self) -> &'static str {
        self.trace_kind().as_str()
    }
}

/// Whole arenas retained across groups; beyond this, returns are dropped.
/// One arena serves one in-flight group, so this only needs to cover the
/// scheduler's pipeline depth.
const ARENA_RETAIN: usize = 8;

/// A whole `Network` compiled for serving: optimized program + bound
/// weights + per-stage data paths + the static activation arena,
/// shareable (behind an [`Arc`]) across engines.
pub struct NetworkPlan {
    program: NetworkProgram,
    ops: Vec<PlannedOp>,
    arena: ArenaPlan,
    /// Whole activation arenas leased per group execution.
    arenas: Mutex<Vec<Vec<f32>>>,
    /// Per-image f32 units the pre-arena exact-size buffer pool kept live
    /// (every unoptimized stage activation plus the stacked source) — the
    /// "before" of the arena metric.
    legacy_units: usize,
}

impl NetworkPlan {
    /// Lowers `network` for `input_h × input_w` inputs, runs the
    /// graph-fusion pass when `optimize` is set (fused ReLU epilogues and
    /// identity folds — bit-identity-safe by construction), binds
    /// `weights`, resolves every epitome stage through `cache` (layers
    /// sharing a spec share one compiled plan; a pre-warmed cache
    /// compiles nothing) and plans the activation arena.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (unroutable inventory), weight-binding
    /// mismatches and plan compilation failures.
    pub fn compile(
        cache: &PlanCache,
        network: &Network,
        weights: &NetworkWeights,
        (input_h, input_w): (usize, usize),
        wrapping_enabled: bool,
        analog: AnalogModel,
        optimize: bool,
    ) -> Result<Self, RuntimeError> {
        let raw = network
            .lower(input_h, input_w)
            .map_err(|e| RuntimeError::config(format!("lowering failed: {e}")))?;
        // What the old exact-size pool's high-water mark was: one buffer
        // per (unoptimized) stage plus the stacked source, all resident.
        let legacy_units = raw.input_shape().iter().product::<usize>()
            + raw
                .stages()
                .iter()
                .map(|s| s.out_shape.iter().product::<usize>())
                .sum::<usize>();
        let program = if optimize { raw.optimize() } else { raw };

        let mut ops = Vec::with_capacity(program.stages().len());
        let mut scratch = Vec::with_capacity(program.stages().len());
        for stage in program.stages() {
            let mut stage_scratch = 0usize;
            let op = match &stage.op {
                StageOp::Conv { layer, cfg, relu } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    // Per-image im2col columns: (OH * OW) x (C_in * KH * KW).
                    let ckk = w.len() / w.shape()[0].max(1);
                    stage_scratch = stage.out_shape[1] * stage.out_shape[2] * ckk;
                    PlannedOp::Conv {
                        weight: w.clone(),
                        bias: b.cloned(),
                        cfg: *cfg,
                        relu: *relu,
                    }
                }
                StageOp::Epitome {
                    layer,
                    spec,
                    cfg,
                    relu,
                } => {
                    let epi = weights.epitome(*layer, spec, &stage.name)?;
                    let dp = cache.datapath(epi, *cfg, wrapping_enabled, analog)?;
                    PlannedOp::Epitome { dp, relu: *relu }
                }
                StageOp::Relu => PlannedOp::Relu,
                StageOp::MaxPool(cfg) => PlannedOp::MaxPool(*cfg),
                StageOp::GlobalAvgPool => PlannedOp::GlobalAvgPool,
                StageOp::Linear { layer, relu } => {
                    let (w, b) = weights.dense(*layer, &stage.name)?;
                    let wmat = w
                        .reshape(&[w.shape()[0], w.len() / w.shape()[0]])
                        .map_err(|e| RuntimeError::config(format!("fc weight: {e}")))?;
                    PlannedOp::Linear {
                        weight: wmat,
                        bias: b.cloned(),
                        relu: *relu,
                    }
                }
                StageOp::Add { with, relu } => PlannedOp::Add {
                    with: *with,
                    relu: *relu,
                },
            };
            ops.push(op);
            scratch.push(stage_scratch);
        }
        let arena = program.plan_arena(&scratch);

        Ok(NetworkPlan {
            program,
            ops,
            arena,
            arenas: Mutex::new(Vec::new()),
            legacy_units,
        })
    }

    /// The program this plan executes (post-optimization when the plan
    /// was compiled with the pass enabled).
    pub fn program(&self) -> &NetworkProgram {
        &self.program
    }

    /// The static activation-arena layout this plan executes into.
    pub fn arena_plan(&self) -> &ArenaPlan {
        &self.arena
    }

    /// Peak activation-arena bytes for a group of `images` stacked images.
    pub fn arena_bytes(&self, images: usize) -> u64 {
        (self.arena.total * images * std::mem::size_of::<f32>()) as u64
    }

    /// What the pre-arena exact-size buffer pool kept resident for the
    /// same group — the "before" of the arena optimization.
    pub fn legacy_pool_bytes(&self, images: usize) -> u64 {
        (self.legacy_units * images * std::mem::size_of::<f32>()) as u64
    }

    /// Pre-allocates one arena for groups of up to `images` stacked
    /// images, so the first served groups do not pay the allocation.
    /// Called by the engines with their `max_batch`.
    pub fn warm(&self, images: usize) {
        let arena = self.lease_arena(self.arena.total * images);
        self.return_arena(arena);
    }

    fn lease_arena(&self, len: usize) -> Vec<f32> {
        let mut v = self
            .arenas
            .lock()
            .expect("arena pool poisoned")
            .pop()
            .unwrap_or_default();
        // Contents may be stale: every op overwrites its whole output
        // slot, and the im2col fill zeroes its scratch first.
        v.resize(len, 0.0);
        v
    }

    fn return_arena(&self, v: Vec<f32>) {
        let mut pool = self.arenas.lock().expect("arena pool poisoned");
        if pool.len() < ARENA_RETAIN {
            pool.push(v);
        }
    }

    /// Executes a shape-uniform request group through the whole program,
    /// returning one output per request plus the summed
    /// [`DataPathStats`] of every epitome stage.
    ///
    /// Semantics are exactly `inputs.iter().map(forward_reference)` on
    /// the unoptimized program: the outputs and stats are bit-identical
    /// to sequential per-request reference execution.
    ///
    /// # Errors
    ///
    /// Returns a geometry error if the inputs' shapes differ from one
    /// another or from the program input shape.
    pub fn execute_batch(
        &self,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats), RuntimeError> {
        let (outs, stats, _) = self.run(inputs, trace::TENANT_NONE)?;
        Ok((outs, stats))
    }

    /// Static stage descriptions (name + op kind), index-aligned with the
    /// per-stage wall times [`NetworkPlan::run`] reports.
    pub(crate) fn stage_meta(&self) -> Vec<StageMeta> {
        self.program
            .stages()
            .iter()
            .zip(&self.ops)
            .map(|(stage, op)| StageMeta {
                name: stage.name.clone(),
                op: op.op_name(),
            })
            .collect()
    }

    /// [`NetworkPlan::execute_batch`] plus observability: also returns
    /// each stage's wall time (nanoseconds, index-aligned with
    /// [`NetworkPlan::stage_meta`]) and tags the per-stage trace spans
    /// with `tenant` ([`trace::TENANT_NONE`] for direct calls).
    pub(crate) fn run(
        &self,
        inputs: &[&Tensor],
        tenant: u32,
    ) -> Result<(Vec<Tensor>, DataPathStats, Vec<u64>), RuntimeError> {
        let Some(first) = inputs.first() else {
            return Ok((Vec::new(), DataPathStats::default(), Vec::new()));
        };
        let in_shape = self.program.input_shape();
        if first.rank() != 4 || first.shape()[1..] != in_shape[..] {
            return Err(RuntimeError::Pim(epim_pim::PimError::geometry(format!(
                "network input must be (N, {}, {}, {}), got {:?}",
                in_shape[0],
                in_shape[1],
                in_shape[2],
                first.shape()
            ))));
        }
        if let Some(bad) = inputs.iter().find(|t| t.shape() != first.shape()) {
            return Err(RuntimeError::Pim(epim_pim::PimError::geometry(format!(
                "network batch requires identical input shapes, got {:?} and {:?}",
                first.shape(),
                bad.shape()
            ))));
        }
        let n_per = first.shape()[0];
        let images = inputs.len() * n_per;

        let mut arena_buf = self.lease_arena(self.arena.total * images);
        let arena = &mut arena_buf[..];
        let src = slot_range(self.arena.source, images);

        // Stack the group into the source slot. Per-image results are
        // independent of the stacking, so this is purely a
        // dispatch-amortization move.
        let plane = first.len();
        let dst = &mut arena[src.clone()];
        for (g, input) in inputs.iter().enumerate() {
            dst[g * plane..(g + 1) * plane].copy_from_slice(input.data());
        }

        let mut stats = DataPathStats::default();
        let mut stage_ns = vec![0u64; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            // Fault-injection point: slow this stage down (chaos testing
            // of deadline shedding and batch-window behavior). Disabled
            // (the default) this is one relaxed atomic load.
            if let Some(delay) = epim_faults::fire_delay(epim_faults::FaultPoint::StageDelay) {
                std::thread::sleep(delay);
            }
            let stage = &self.program.stages()[i];
            let (in_range, in_shape) = match stage.input {
                StageInput::Source => (src.clone(), self.program.input_shape()),
                StageInput::Stage(j) => (
                    slot_range(self.arena.values[j], images),
                    self.program.stages()[j].out_shape.as_slice(),
                ),
            };
            let out_range = slot_range(self.arena.values[i], images);
            let out_bytes = ((out_range.end - out_range.start) * std::mem::size_of::<f32>()) as u64;
            let scratch_range = self.arena.scratch[i].map(|s| slot_range(s, images));
            let started = Instant::now();
            let t_stage = trace::start();
            match op {
                PlannedOp::Conv {
                    weight,
                    bias,
                    cfg,
                    relu,
                } => {
                    let (out, scratch, reads) =
                        stage_views(arena, out_range, scratch_range, &[in_range]);
                    conv2d_into(
                        reads[0],
                        (images, in_shape[0], in_shape[1], in_shape[2]),
                        weight,
                        bias.as_ref(),
                        *cfg,
                        *relu,
                        scratch.expect("conv stages plan im2col scratch"),
                        out,
                    )
                    .map_err(epim_pim::PimError::Tensor)?;
                }
                PlannedOp::Epitome { dp, relu } => {
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range]);
                    let s = dp.execute_stacked_into(
                        reads[0],
                        images,
                        in_shape[1],
                        in_shape[2],
                        *relu,
                        out,
                    )?;
                    stats.accumulate(&s);
                }
                PlannedOp::Relu => {
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range]);
                    relu_slice(reads[0], out);
                }
                PlannedOp::MaxPool(cfg) => {
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range]);
                    max_pool2d_into(
                        reads[0],
                        (images, in_shape[0], in_shape[1], in_shape[2]),
                        *cfg,
                        out,
                    )
                    .map_err(epim_pim::PimError::Tensor)?;
                }
                PlannedOp::GlobalAvgPool => {
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range]);
                    global_avg_pool_into(
                        reads[0],
                        (images, in_shape[0], in_shape[1], in_shape[2]),
                        out,
                    )
                    .map_err(epim_pim::PimError::Tensor)?;
                }
                PlannedOp::Linear { weight, bias, relu } => {
                    // Per-request GEMMs: the row dimension of this product
                    // is the batch itself, so folding requests together
                    // would change each row's kernel path. Request-sized
                    // row blocks run the exact calls `ops::linear` makes —
                    // bit-identical to per-request reference execution —
                    // reading and writing the arena in place.
                    let feats: usize = in_shape.iter().product();
                    let out_f = weight.shape()[0];
                    if feats != weight.shape()[1] {
                        return Err(RuntimeError::config(format!(
                            "classifier expects {} features, got {feats}",
                            weight.shape()[1]
                        )));
                    }
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range]);
                    for g in 0..inputs.len() {
                        let rows = &reads[0][g * n_per * feats..(g + 1) * n_per * feats];
                        let dst = &mut out[g * n_per * out_f..(g + 1) * n_per * out_f];
                        match (bias, relu) {
                            (Some(b), false) => gemm::gemm_nt_bias_col(
                                n_per,
                                out_f,
                                feats,
                                rows,
                                weight.data(),
                                b.data(),
                                dst,
                            ),
                            (Some(b), true) => gemm::gemm_nt_bias_col_relu(
                                n_per,
                                out_f,
                                feats,
                                rows,
                                weight.data(),
                                b.data(),
                                dst,
                            ),
                            (None, false) => {
                                gemm::gemm_nt(n_per, out_f, feats, rows, weight.data(), dst)
                            }
                            (None, true) => {
                                gemm::gemm_nt_relu(n_per, out_f, feats, rows, weight.data(), dst)
                            }
                        }
                    }
                }
                PlannedOp::Add { with, relu } => {
                    let other = slot_range(self.arena.values[*with], images);
                    let (out, _, reads) = stage_views(arena, out_range, None, &[in_range, other]);
                    if *relu {
                        add_relu_slice(reads[0], reads[1], out);
                    } else {
                        add_slice(reads[0], reads[1], out);
                    }
                }
            }
            stage_ns[i] = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            trace::span(
                trace::SpanKind::Stage,
                tenant,
                i as u32,
                t_stage,
                trace::pack_stage_payload(op.trace_kind(), images as u64),
                out_bytes,
            );
        }

        // Split the final stage's slot back into per-request tensors.
        let last = self.program.stages().len() - 1;
        let out_slot = &arena[slot_range(self.arena.values[last], images)];
        let mut req_shape = vec![n_per];
        req_shape.extend_from_slice(&self.program.stages()[last].out_shape);
        let req_len = out_slot.len() / inputs.len();
        let outs = (0..inputs.len())
            .map(|g| {
                Tensor::from_vec(
                    out_slot[g * req_len..(g + 1) * req_len].to_vec(),
                    &req_shape,
                )
                .expect("request shape matches slice")
            })
            .collect();

        self.return_arena(arena_buf);
        Ok((outs, stats, stage_ns))
    }
}

/// The arena range of `slot` scaled to a group of `images` images
/// (uniform scaling preserves the plan's disjointness).
fn slot_range(slot: ArenaSlot, images: usize) -> Range<usize> {
    slot.offset * images..(slot.offset + slot.len) * images
}

/// True when two ranges share no index.
fn ranges_disjoint(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.end <= b.start || b.end <= a.start
}

/// Views into disjoint ranges of one arena: the stage's mutable output,
/// its optional mutable scratch, and its shared read slices.
///
/// Reads may overlap each other (a residual add reading one producer
/// twice) but never a mutable range; the [`ArenaPlan`] guarantees this by
/// construction — live slots never share memory, and a stage's inputs
/// are live while it writes its output. The assertions turn a planner
/// bug into a loud panic instead of silent data corruption.
fn stage_views<'a>(
    arena: &'a mut [f32],
    out: Range<usize>,
    scratch: Option<Range<usize>>,
    reads: &[Range<usize>],
) -> (&'a mut [f32], Option<&'a mut [f32]>, Vec<&'a [f32]>) {
    let len = arena.len();
    let in_bounds = |r: &Range<usize>| r.start <= r.end && r.end <= len;
    assert!(in_bounds(&out), "output slot in bounds");
    if let Some(s) = &scratch {
        assert!(in_bounds(s), "scratch slot in bounds");
        assert!(ranges_disjoint(s, &out), "scratch and output disjoint");
    }
    for r in reads {
        assert!(in_bounds(r), "read slot in bounds");
        assert!(ranges_disjoint(r, &out), "reads and output disjoint");
        if let Some(s) = &scratch {
            assert!(ranges_disjoint(r, s), "reads and scratch disjoint");
        }
    }
    let ptr = arena.as_mut_ptr();
    // SAFETY: all ranges are in bounds of `arena`, and both mutable
    // ranges are disjoint from each other and from every read range
    // (asserted above), so no `&mut` aliases any other returned
    // reference; read views alias only each other, as shared `&` may.
    unsafe {
        let o = std::slice::from_raw_parts_mut(ptr.add(out.start), out.end - out.start);
        let s = scratch.map(|s| std::slice::from_raw_parts_mut(ptr.add(s.start), s.end - s.start));
        let rs = reads
            .iter()
            .map(|r| std::slice::from_raw_parts(ptr.add(r.start).cast_const(), r.end - r.start))
            .collect();
        (o, s, rs)
    }
}

/// Adapter: a shared network plan as a scheduler executor.
pub(crate) struct PlanExecutor {
    pub(crate) plan: Arc<NetworkPlan>,
}

impl GroupExecutor for PlanExecutor {
    fn execute_batch(
        &self,
        tenant: u32,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats, Vec<u64>), RuntimeError> {
        self.plan.run(inputs, tenant)
    }

    fn execute_one(
        &self,
        tenant: u32,
        input: &Tensor,
    ) -> Result<(Tensor, DataPathStats), RuntimeError> {
        let (mut outs, stats, _) = self.plan.run(&[input], tenant)?;
        Ok((outs.pop().expect("one output"), stats))
    }

    fn stage_meta(&self) -> Vec<StageMeta> {
        self.plan.stage_meta()
    }
}

/// A serving engine for a whole epitome-compressed network: one submission
/// queue, shape-grouped micro-batching, and pipelined execution of the
/// compiled [`NetworkPlan`] — built on the same scheduler core as the
/// single-layer [`crate::Engine`].
///
/// # Example
///
/// ```no_run
/// use epim_models::lower::NetworkWeights;
/// use epim_models::network::Network;
/// use epim_models::resnet::resnet50;
/// use epim_pim::datapath::AnalogModel;
/// use epim_runtime::{EngineConfig, NetworkEngine, PlanCache};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::baseline(resnet50());
/// let weights = NetworkWeights::random(&net, 1)?;
/// let cache = PlanCache::new();
/// cache.warm_network(&net)?; // compile every epitome plan up front
/// let engine = NetworkEngine::new(
///     &cache, &net, &weights, (224, 224), true, AnalogModel::ideal(),
///     EngineConfig::default(),
/// )?;
/// # Ok(())
/// # }
/// ```
pub struct NetworkEngine {
    scheduler: Scheduler<PlanExecutor>,
    cache: PlanCache,
    /// The group size the arena metrics are reported for.
    max_batch: usize,
}

impl NetworkEngine {
    /// Compiles `network` (see [`NetworkPlan::compile`]; the graph-fusion
    /// pass runs unless [`EngineConfig::optimize_program`] is cleared)
    /// and spawns the serving scheduler. The engine keeps a handle to
    /// `cache` and reports its counters in [`RuntimeStats::plan_cache`].
    ///
    /// # Errors
    ///
    /// Propagates compilation errors and rejects an invalid
    /// [`EngineConfig`].
    pub fn new(
        cache: &PlanCache,
        network: &Network,
        weights: &NetworkWeights,
        input_hw: (usize, usize),
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let plan = Arc::new(NetworkPlan::compile(
            cache,
            network,
            weights,
            input_hw,
            wrapping_enabled,
            analog,
            config.optimize_program,
        )?);
        Self::from_plan(plan, cache, config)
    }

    /// Spawns a serving engine around an already-compiled (possibly
    /// shared) plan.
    ///
    /// # Errors
    ///
    /// Rejects an invalid [`EngineConfig`].
    pub fn from_plan(
        plan: Arc<NetworkPlan>,
        cache: &PlanCache,
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let max_batch = config.max_batch.max(1);
        plan.warm(max_batch);
        let scheduler = Scheduler::single(PlanExecutor { plan }, config)?;
        Ok(NetworkEngine {
            scheduler,
            cache: cache.clone(),
            max_batch,
        })
    }

    /// The compiled plan this engine serves.
    pub fn plan(&self) -> &Arc<NetworkPlan> {
        &self.scheduler.executor(0).plan
    }

    /// Runs one whole-network inference (input `(N, C, H, W)` matching the
    /// program input shape), blocking until the pipelined execution
    /// completes. Concurrent callers coalesce into stacked groups.
    /// Accepts a bare [`Tensor`] or a tagged [`InferRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShuttingDown`] during shutdown,
    /// [`RuntimeError::Overloaded`] if the request was shed, or this
    /// request's execution error.
    pub fn infer(&self, req: impl Into<InferRequest>) -> Result<Inference, RuntimeError> {
        self.scheduler.submit_wait(0, req.into())
    }

    /// Submits without ever blocking on queue space (full queue → shed
    /// immediately); the returned [`Pending`] waits for the result. This
    /// is the [`InferService`] surface; a bare [`Tensor`] converts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overloaded`] when the queue is full.
    pub fn try_infer(&self, req: impl Into<InferRequest>) -> Result<Pending, RuntimeError> {
        self.scheduler.try_submit(0, req.into())
    }

    /// Submits a burst atomically and waits for all results, in order.
    ///
    /// # Errors
    ///
    /// Per-request errors land in their result slot; a burst larger than
    /// the queue capacity (or submission during shutdown) fails whole.
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        self.scheduler.submit_many(0, inputs)
    }

    /// A point-in-time snapshot of the serving statistics (including the
    /// plan cache's counters and the activation-arena footprint at this
    /// engine's `max_batch`).
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = self.scheduler.fleet_stats(self.cache.stats());
        let plan = self.plan();
        stats.arena_bytes = plan.arena_bytes(self.max_batch);
        stats.legacy_pool_bytes = plan.legacy_pool_bytes(self.max_batch);
        stats
    }
}

impl InferService for NetworkEngine {
    fn try_infer(&self, req: InferRequest) -> Result<Pending, RuntimeError> {
        NetworkEngine::try_infer(self, req)
    }

    fn stats(&self) -> RuntimeStats {
        NetworkEngine::stats(self)
    }
}
