//! The reusable multi-tenant scheduler core shared by every serving
//! engine.
//!
//! PR 2's single-layer `Engine` owned its queue, coalescing loop, slot
//! delivery and panic handling directly; PR 3 extracted that machinery
//! into a scheduler generic over *what a batch executes* (the
//! [`GroupExecutor`] trait). This PR generalizes the queue core from one
//! queue to a **fleet of tenants**: each tenant brings its own executor,
//! its own bounded submission queue with its own [`FlowControl`] and
//! micro-batching knobs ([`TenantConfig`]), and its own statistics, while
//! one set of scheduler threads drains all of them under a weighted-fair
//! policy. The single-tenant [`crate::Engine`] and [`crate::NetworkEngine`]
//! are the one-tenant special case ([`Scheduler::single`]); the
//! multi-network [`crate::MultiEngine`] registers one tenant per compiled
//! plan.
//!
//! ## Request flow
//!
//! 1. Submitters push requests onto their tenant's **bounded** queue
//!    ([`TenantConfig::queue_capacity`]). When that queue is full the
//!    tenant's [`FlowControl`] decides: [`FlowControl::Block`] waits for
//!    space (no request is ever dropped), [`FlowControl::Shed`] waits up
//!    to its timeout and then rejects with [`RuntimeError::Overloaded`].
//!    [`Scheduler::try_submit`] never waits. Flow control is strictly
//!    per-tenant: one tenant shedding can never drop (or delay the
//!    admission of) another tenant's requests.
//! 2. The scheduler threads pull from the queues under **weighted-fair
//!    draining**: a round-robin cursor walks the tenants, and a tenant
//!    with [`TenantConfig::weight`] `w` may drain up to `w` request
//!    groups before the cursor must move on. Because every weight is at
//!    least 1 and the cursor visits every backlogged tenant once per
//!    cycle, no tenant can be starved, no matter how heavy its
//!    neighbours' traffic is; tenants within one weight class are served
//!    round-robin.
//! 3. Within its turn a tenant's queue is drained exactly like the
//!    single-queue scheduler always did: the thread takes the queue
//!    head's input shape, coalesces up to [`TenantConfig::max_batch`]
//!    same-shaped requests (holding the batch open up to
//!    [`TenantConfig::batch_window`] — flushing early if any *other*
//!    tenant has work waiting, so one tenant's coalescing knob cannot
//!    inflate its neighbours' latency), drains the group in FIFO order
//!    and runs it through **that tenant's** executor. Groups never mix
//!    tenants, which is what keeps every tenant's outputs bit-identical
//!    to a dedicated single-tenant engine.
//! 4. Results are delivered to per-request slots; every request is
//!    guaranteed a delivery (success, its own error, or
//!    [`RuntimeError::ExecutionPanicked`]), and a failing batch is retried
//!    per-request so one bad request cannot poison its batchmates.

use crate::stats::{StageMeta, StatsInner};
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use crate::{PlanCacheStats, RuntimeError};
use epim_faults as faults;
use epim_obs::trace;
use epim_pim::datapath::DataPathStats;
use epim_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a scheduler executes: one shape-uniform request group at a time.
///
/// Implementations must be deterministic per input (batching is a
/// throughput decision, never a semantic one): `execute_batch` must return
/// outputs bit-identical to `execute_one` per input, with the stats equal
/// to the per-input sum.
pub(crate) trait GroupExecutor: Send + Sync + 'static {
    /// Runs a group of same-shaped inputs, returning one output per input,
    /// the summed execution statistics, and the per-stage wall times
    /// (nanoseconds, index-aligned with [`GroupExecutor::stage_meta`];
    /// may be empty for executors without stage structure). `tenant` is
    /// this group's tenant index, forwarded so per-stage trace spans can
    /// be tenant-tagged ([`trace::TENANT_NONE`] outside a scheduler).
    fn execute_batch(
        &self,
        tenant: u32,
        inputs: &[&Tensor],
    ) -> Result<(Vec<Tensor>, DataPathStats, Vec<u64>), RuntimeError>;

    /// Runs a single input (the per-request fallback used to isolate a
    /// failing batch).
    fn execute_one(
        &self,
        tenant: u32,
        input: &Tensor,
    ) -> Result<(Tensor, DataPathStats), RuntimeError>;

    /// Static stage descriptions for this executor's plan, index-aligned
    /// with the `stage_ns` slice `execute_batch` returns (empty for
    /// executors that report no per-stage times).
    fn stage_meta(&self) -> Vec<StageMeta> {
        Vec::new()
    }
}

/// Flow-control policy applied when a bounded submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControl {
    /// Block the submitter until space frees up. Nothing is ever dropped;
    /// backpressure propagates to the caller.
    Block,
    /// Wait up to `timeout` for space, then reject the submission with
    /// [`RuntimeError::Overloaded`]. `Duration::ZERO` sheds immediately.
    Shed {
        /// How long a submitter may wait for queue space before shedding.
        timeout: Duration,
    },
}

/// Micro-batching and flow-control knobs (shared by [`crate::Engine`] and
/// [`crate::NetworkEngine`]).
///
/// For multi-tenant serving the per-tenant slice of this configuration
/// (everything except `workers`, which is fleet-wide) lives in
/// [`TenantConfig`]; [`EngineConfig::tenant`] converts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Most requests coalesced into one executed batch.
    pub max_batch: usize,
    /// How long a scheduler thread holds a non-full batch open for
    /// stragglers. `Duration::ZERO` disables coalescing-by-time: whatever
    /// is queued when the thread looks is taken.
    pub batch_window: Duration,
    /// Bounded submission-queue capacity (pending requests).
    pub queue_capacity: usize,
    /// What happens to submissions when the queue is full.
    pub flow: FlowControl,
    /// Scheduler threads executing groups concurrently (the pipeline
    /// depth). `1` reproduces the strictly serial group order of the
    /// original engine; more lets a fresh group coalesce and execute while
    /// earlier ones are still in flight.
    pub workers: usize,
    /// Whether network compilation runs the graph-fusion pass
    /// (`NetworkProgram::optimize`: fused ReLU epilogues, identity
    /// folds) before planning. On by default; the pass is
    /// bit-identity-safe, so clearing this is a debugging/benchmarking
    /// knob, not a correctness one. Ignored by the single-layer
    /// [`crate::Engine`], which serves no lowered program.
    pub optimize_program: bool,
    /// How many crashed scheduler worker threads the supervisor may
    /// respawn (with exponential backoff) before declaring a crash loop
    /// and failing the fleet with [`RuntimeError::CrashLoop`]. `0`
    /// disables supervision: the first worker crash shuts the fleet
    /// down.
    pub restart_budget: u32,
}

/// Default [`EngineConfig::restart_budget`]: generous enough to ride out
/// a burst of poisonous requests, small enough that a deterministic
/// crash loop fails fast.
pub const DEFAULT_RESTART_BUDGET: u32 = 8;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            batch_window: Duration::from_micros(200),
            queue_capacity: 256,
            flow: FlowControl::Block,
            workers: 1,
            optimize_program: true,
            restart_budget: DEFAULT_RESTART_BUDGET,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration, returning a typed error instead of
    /// letting a zero knob hang or panic a scheduler thread.
    pub(crate) fn validate(&self) -> Result<(), RuntimeError> {
        if self.workers == 0 {
            return Err(RuntimeError::config("workers must be at least 1"));
        }
        self.tenant().validate()
    }

    /// The per-tenant slice of this configuration: everything except
    /// `workers` (the scheduler threads are shared by all tenants), with
    /// the default weight of 1.
    pub fn tenant(&self) -> TenantConfig {
        TenantConfig {
            max_batch: self.max_batch,
            batch_window: self.batch_window,
            queue_capacity: self.queue_capacity,
            flow: self.flow,
            weight: 1,
        }
    }
}

/// Per-tenant serving knobs: micro-batching, bounded-queue flow control
/// and the tenant's weight in the fair-draining policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Most requests coalesced into one executed batch for this tenant.
    pub max_batch: usize,
    /// How long a scheduler thread holds this tenant's non-full batch open
    /// for stragglers. `Duration::ZERO` disables coalescing-by-time. The
    /// window closes early when any *other* tenant has pending work, so
    /// one tenant's coalescing knob never inflates its neighbours'
    /// latency.
    pub batch_window: Duration,
    /// This tenant's bounded submission-queue capacity (pending requests).
    pub queue_capacity: usize,
    /// What happens to this tenant's submissions when its queue is full.
    /// Strictly per-tenant: a shedding tenant never drops a blocking
    /// tenant's requests.
    pub flow: FlowControl,
    /// Drain weight: how many request groups this tenant may drain per
    /// round-robin turn before the cursor moves to the next backlogged
    /// tenant. Must be at least 1 (every tenant with a nonzero weight is
    /// visited once per cycle, which is what makes draining
    /// starvation-free).
    pub weight: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        EngineConfig::default().tenant()
    }
}

impl TenantConfig {
    /// Validates the configuration, returning a typed error instead of
    /// letting a zero knob hang or panic a scheduler thread.
    pub(crate) fn validate(&self) -> Result<(), RuntimeError> {
        if self.max_batch == 0 {
            return Err(RuntimeError::config("max_batch must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(RuntimeError::config("queue_capacity must be at least 1"));
        }
        if self.weight == 0 {
            return Err(RuntimeError::config(
                "tenant weight must be at least 1 (zero would starve the tenant)",
            ));
        }
        Ok(())
    }

    /// This config with `weight` replaced (builder-style convenience).
    pub fn with_weight(self, weight: u32) -> Self {
        TenantConfig { weight, ..self }
    }
}

/// One completed inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The output for this request's input.
    pub output: Tensor,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Submission-to-delivery latency.
    pub latency: Duration,
}

/// A queued request: the input plus the slot its submitter parks on.
struct Request {
    input: Tensor,
    submitted_at: Instant,
    /// Completion deadline, if the submitter set one. Expired requests
    /// are shed from the drain loop with
    /// [`RuntimeError::DeadlineExceeded`] instead of occupying a batch
    /// slot.
    deadline: Option<Instant>,
    slot: Arc<Slot>,
}

/// What a slot holds between submission and delivery: the eventual
/// result plus the waker of whatever task is polling the [`Pending`] as a
/// future. One mutex covers both so a completion racing a `poll` can
/// never lose a waker (deliver either sees the stored waker, or the
/// poller re-checks the stored result after registering).
#[derive(Default)]
struct SlotState {
    result: Option<Result<Inference, RuntimeError>>,
    waker: Option<std::task::Waker>,
}

/// Rendezvous between a submitter and a scheduler thread. Completion is
/// broadcast two ways: the condvar (for the blocking `wait` /
/// `wait_timeout` paths) and the registered [`std::task::Waker`] (for the
/// future path) — a single slot supports both without busy-polling.
#[derive(Default)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, result: Result<Inference, RuntimeError>) {
        let waker = {
            let mut state = lock_recover(&self.state);
            state.result = Some(result);
            state.waker.take()
        };
        self.ready.notify_one();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    fn wait(&self) -> Result<Inference, RuntimeError> {
        let mut guard = lock_recover(&self.state);
        loop {
            match guard.result.take() {
                Some(result) => return result,
                None => guard = wait_recover(&self.ready, guard),
            }
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Result<Inference, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut guard = lock_recover(&self.state);
        loop {
            if let Some(result) = guard.result.take() {
                return result;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RuntimeError::Timeout);
            }
            guard = wait_timeout_recover(&self.ready, guard, left).0;
        }
    }

    fn poll(
        &self,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Result<Inference, RuntimeError>> {
        let mut state = lock_recover(&self.state);
        match state.result.take() {
            Some(result) => std::task::Poll::Ready(result),
            None => {
                // Replace rather than clone_from: wakers from different
                // executors must not be mixed up across polls.
                state.waker = Some(cx.waker().clone());
                std::task::Poll::Pending
            }
        }
    }
}

/// An accepted-but-unfinished submission (returned by the non-blocking
/// submission paths). Dropping it abandons the result; the request still
/// executes.
///
/// The result can be claimed three ways, all built on one condvar+waker
/// slot filled at completion (never busy-polled):
///
/// - **blocking**: [`Pending::wait`] parks the calling thread;
/// - **bounded**: [`Pending::wait_timeout`] parks up to a deadline and
///   returns [`RuntimeError::Timeout`] if the request is still in flight
///   (the `Pending` stays usable — wait again or poll);
/// - **async**: `Pending` implements [`std::future::Future`], waking the
///   registered [`std::task::Waker`] on completion, so any runtime-free
///   executor (see `epim-serve`'s connection multiplexer) can drive many
///   in-flight requests from one thread.
pub struct Pending {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").finish_non_exhaustive()
    }
}

impl Pending {
    /// Blocks until the inference completes.
    ///
    /// # Errors
    ///
    /// Returns the request's execution error, or
    /// [`RuntimeError::ShuttingDown`] if the engine dropped before serving
    /// it.
    pub fn wait(self) -> Result<Inference, RuntimeError> {
        self.slot.wait()
    }

    /// Blocks until the inference completes or `timeout` expires —
    /// the bound that keeps a wire session from hanging forever on a
    /// stuck plan.
    ///
    /// On [`RuntimeError::Timeout`] the request is **still in flight**
    /// and this handle is still live: call `wait_timeout` again, upgrade
    /// to a blocking [`Pending::wait`], or poll it as a future. Any other
    /// return (success or error) consumes the result; a later call would
    /// block on a slot that will never fill again, which is why this
    /// takes `&mut self` and the result-claiming paths take `self`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] if the deadline passed, otherwise
    /// exactly [`Pending::wait`]'s contract.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Inference, RuntimeError> {
        self.slot.wait_timeout(timeout)
    }

    /// True once a result (or error) has been delivered and not yet
    /// claimed. A `true` here means the next `wait`/poll returns
    /// immediately.
    pub fn is_ready(&self) -> bool {
        lock_recover(&self.slot.state).result.is_some()
    }
}

impl std::future::Future for Pending {
    type Output = Result<Inference, RuntimeError>;

    /// Completes with the inference result; wakes the stored waker when
    /// the scheduler delivers. After returning `Ready` the result is
    /// claimed — polling again would pend forever, as for any future
    /// polled after completion.
    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        self.slot.poll(cx)
    }
}

/// One registered tenant: its executor, serving knobs and statistics.
struct Tenant<E> {
    /// Display label used in per-tenant errors (`None` for the anonymous
    /// single-tenant engines).
    label: Option<String>,
    config: TenantConfig,
    exec: E,
    stats: Mutex<StatsInner>,
}

struct Shared<E: GroupExecutor> {
    tenants: Vec<Tenant<E>>,
    queue: Mutex<QueueSet>,
    /// Signals scheduler threads that some queue changed (new request,
    /// shutdown).
    submitted: Condvar,
    /// Signals blocked submitters that queue space freed up.
    space: Condvar,
    /// Crashed worker threads respawned by the supervisor (fleet-wide;
    /// surfaced as `RuntimeStats::worker_restarts`).
    restarts: AtomicU64,
}

/// Every tenant's pending queue plus the weighted-round-robin drain state,
/// all under one lock so a group drain is atomic against submissions.
struct QueueSet {
    /// `pending[t]` = tenant `t`'s FIFO backlog.
    pending: Vec<VecDeque<Request>>,
    /// `high_water[t]` = most requests ever queued at once for tenant `t`
    /// (the autoscaling signal surfaced via `RuntimeStats`).
    high_water: Vec<usize>,
    /// Most requests ever queued at once across all tenants together.
    fleet_high_water: usize,
    /// The tenant whose turn it currently is.
    cursor: usize,
    /// Groups the cursor tenant may still drain this turn.
    budget: u64,
    shutdown: bool,
}

impl QueueSet {
    fn any_pending(&self) -> bool {
        self.pending.iter().any(|q| !q.is_empty())
    }

    /// Returns one reserved budget unit after a turn was abandoned to a
    /// multi-worker race (no group was actually drained). Only meaningful
    /// while the turn is still `tenant`'s — if the cursor has moved on,
    /// its budget was refilled from the new tenant's weight anyway —
    /// and capped at `weight` so a stale refund can never mint extra
    /// turns.
    fn refund(&mut self, tenant: usize, weight: u32) {
        if self.cursor == tenant {
            self.budget = (self.budget + 1).min(u64::from(weight));
        }
    }
}

/// The scheduler core: per-tenant bounded queues, weighted-fair draining,
/// shape-grouped micro-batching worker threads under a supervisor that
/// respawns crashed workers, per-request delivery. Engines wrap this
/// around their executor(s).
pub(crate) struct Scheduler<E: GroupExecutor> {
    shared: Arc<Shared<E>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

/// One worker thread's exit report to the supervisor. Every spawned
/// worker sends exactly one of these as its last act.
enum WorkerExit {
    /// Clean return (shutdown drain finished).
    Clean(usize),
    /// The worker's loop unwound — a panic escaped the per-batch guards
    /// (injected worker kill, poisoned-lock cascade, executor bug).
    Crashed(usize),
}

impl<E: GroupExecutor> Scheduler<E> {
    /// Spawns a scheduler serving exactly one anonymous tenant — the
    /// single-network engines' configuration.
    pub fn single(exec: E, config: EngineConfig) -> Result<Self, RuntimeError> {
        config.validate()?;
        Self::multi(
            vec![(None, exec, config.tenant())],
            config.workers,
            config.restart_budget,
        )
    }

    /// Validates every tenant's config and spawns `workers` scheduler
    /// threads draining all of them under the weighted-fair policy, plus
    /// a supervisor thread that respawns crashed workers until
    /// `restart_budget` is exhausted.
    pub fn multi(
        tenants: Vec<(Option<String>, E, TenantConfig)>,
        workers: usize,
        restart_budget: u32,
    ) -> Result<Self, RuntimeError> {
        if tenants.is_empty() {
            return Err(RuntimeError::config(
                "a scheduler needs at least one tenant",
            ));
        }
        if workers == 0 {
            return Err(RuntimeError::config("workers must be at least 1"));
        }
        for (_, _, config) in &tenants {
            config.validate()?;
        }
        let first_weight = u64::from(tenants[0].2.weight);
        let tenants: Vec<Tenant<E>> = tenants
            .into_iter()
            .map(|(label, exec, config)| {
                let stage_meta = exec.stage_meta();
                Tenant {
                    label,
                    config,
                    exec,
                    stats: Mutex::new(StatsInner::with_stages(stage_meta)),
                }
            })
            .collect();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueSet {
                pending: tenants.iter().map(|_| VecDeque::new()).collect(),
                high_water: vec![0; tenants.len()],
                fleet_high_water: 0,
                cursor: 0,
                budget: first_weight,
                shutdown: false,
            }),
            submitted: Condvar::new(),
            space: Condvar::new(),
            restarts: AtomicU64::new(0),
            tenants,
        });
        let (exit_tx, exit_rx) = mpsc::channel();
        let handles: Vec<Option<std::thread::JoinHandle<()>>> = (0..workers)
            .map(|i| Some(spawn_worker(shared.clone(), i, exit_tx.clone())))
            .collect();
        let supervisor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("epim-supervisor".to_string())
                .spawn(move || supervisor_main(&shared, exit_rx, exit_tx, handles, restart_budget))
                .expect("spawning supervisor thread")
        };
        Ok(Scheduler {
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The executor of tenant `tenant`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index (callers validate via
    /// [`Scheduler::check_tenant`] or hold an index they created).
    pub fn executor(&self, tenant: usize) -> &E {
        &self.shared.tenants[tenant].exec
    }

    /// Returns [`RuntimeError::UnknownTenant`] unless `tenant` is a
    /// registered index.
    pub fn check_tenant(&self, tenant: usize) -> Result<(), RuntimeError> {
        if tenant < self.shared.tenants.len() {
            Ok(())
        } else {
            Err(RuntimeError::UnknownTenant { id: tenant })
        }
    }

    /// Submits one request to `tenant` under its configured flow control
    /// and waits for its result.
    pub fn submit_wait(
        &self,
        tenant: usize,
        req: crate::InferRequest,
    ) -> Result<Inference, RuntimeError> {
        let flow = self.tenant_ref(tenant)?.config.flow;
        let slots = self.enqueue(tenant, vec![req.input], flow, req.client, req.deadline)?;
        slots.into_iter().next().expect("one slot per input").wait()
    }

    /// Submits one request to `tenant` without ever waiting for queue
    /// space.
    pub fn try_submit(
        &self,
        tenant: usize,
        req: crate::InferRequest,
    ) -> Result<Pending, RuntimeError> {
        self.check_tenant(tenant)?;
        let slots = self.enqueue(
            tenant,
            vec![req.input],
            FlowControl::Shed {
                timeout: Duration::ZERO,
            },
            req.client,
            req.deadline,
        )?;
        Ok(Pending {
            slot: slots.into_iter().next().expect("one slot per input"),
        })
    }

    /// Submits a burst to `tenant` atomically (the whole burst is visible
    /// to the coalescers at once) and waits for all results, in order.
    #[allow(clippy::type_complexity)]
    pub fn submit_many(
        &self,
        tenant: usize,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        let flow = self.tenant_ref(tenant)?.config.flow;
        let slots = self.enqueue(tenant, inputs, flow, crate::CLIENT_NONE, None)?;
        Ok(slots.into_iter().map(|s| s.wait()).collect())
    }

    /// A point-in-time statistics snapshot of one tenant; `plan_cache` is
    /// supplied by the wrapping engine (zeroes when it has no cache).
    pub fn tenant_stats(
        &self,
        tenant: usize,
        plan_cache: PlanCacheStats,
    ) -> Result<crate::RuntimeStats, RuntimeError> {
        let ten = self.tenant_ref(tenant)?;
        let (queue_depth, high_water) = {
            let queue = lock_recover(&self.shared.queue);
            (queue.pending[tenant].len(), queue.high_water[tenant])
        };
        let mut stats = lock_recover(&ten.stats).snapshot(queue_depth, high_water, plan_cache);
        stats.worker_restarts = self.shared.restarts.load(Ordering::Relaxed);
        Ok(stats)
    }

    /// The fleet-level rollup across every tenant: counters and data-path
    /// rollups sum, the batch histograms merge element-wise, and the
    /// latency percentiles are computed over the union of every tenant's
    /// retained samples.
    pub fn fleet_stats(&self, plan_cache: PlanCacheStats) -> crate::RuntimeStats {
        let (queue_depth, high_water) = {
            let queue = lock_recover(&self.shared.queue);
            (
                queue.pending.iter().map(VecDeque::len).sum(),
                queue.fleet_high_water,
            )
        };
        let mut rollup = StatsInner::default();
        for tenant in &self.shared.tenants {
            rollup.absorb(&lock_recover(&tenant.stats));
        }
        let mut stats = rollup.snapshot(queue_depth, high_water, plan_cache);
        stats.worker_restarts = self.shared.restarts.load(Ordering::Relaxed);
        stats
    }

    fn tenant_ref(&self, tenant: usize) -> Result<&Tenant<E>, RuntimeError> {
        self.shared
            .tenants
            .get(tenant)
            .ok_or(RuntimeError::UnknownTenant { id: tenant })
    }

    /// Pushes requests onto `tenant`'s bounded queue under one lock (so a
    /// burst coalesces deterministically) and wakes the scheduler threads.
    /// `client` is the submitting connection's tag
    /// ([`crate::CLIENT_NONE`] in-process), packed into the `Enqueue`
    /// trace span so exported traces attribute request flow per
    /// connection. `request_deadline` (uniform across the submission)
    /// bounds the admission wait — under *either* flow policy — and
    /// rides along on every queued request so the drain loop can shed it
    /// if it expires before execution.
    fn enqueue(
        &self,
        tenant: usize,
        inputs: Vec<Tensor>,
        flow: FlowControl,
        client: u64,
        request_deadline: Option<Instant>,
    ) -> Result<Vec<Arc<Slot>>, RuntimeError> {
        let shared = &self.shared;
        let ten = self.tenant_ref(tenant)?;
        let capacity = ten.config.queue_capacity;
        if inputs.len() > capacity {
            return Err(RuntimeError::config(format!(
                "burst of {} exceeds queue_capacity {capacity}",
                inputs.len()
            )));
        }
        let now = Instant::now();
        let deadline_shed = |count: u64| {
            lock_recover(&ten.stats).record_deadline_exceeded(count);
            RuntimeError::DeadlineExceeded
        };
        if request_deadline.is_some_and(|d| d <= now) {
            return Err(deadline_shed(inputs.len() as u64));
        }
        let mut queue = lock_recover(&shared.queue);
        // Backpressure: wait (or shed) until the whole submission fits in
        // this tenant's queue. Other tenants' backlogs are invisible here —
        // flow control is strictly per-tenant. The wait is bounded by the
        // shed timeout (if any) and the request deadline (if any),
        // whichever is tighter.
        let flow_deadline = match flow {
            FlowControl::Block => None,
            FlowControl::Shed { timeout } => Some(now + timeout),
        };
        while !queue.shutdown && queue.pending[tenant].len() + inputs.len() > capacity {
            let now = Instant::now();
            if request_deadline.is_some_and(|d| d <= now) {
                drop(queue);
                return Err(deadline_shed(inputs.len() as u64));
            }
            let bound = match (flow_deadline, request_deadline) {
                (Some(f), Some(r)) => Some(f.min(r)),
                (f, r) => f.or(r),
            };
            match bound {
                None => queue = wait_recover(&shared.space, queue),
                Some(bound) => {
                    // The request deadline was checked above, so an
                    // expired bound here is the flow-control timeout.
                    if bound <= now {
                        drop(queue);
                        lock_recover(&ten.stats).record_shed(inputs.len() as u64);
                        trace::instant(
                            trace::SpanKind::Shed,
                            tenant as u32,
                            inputs.len() as u64,
                            capacity as u64,
                        );
                        return Err(RuntimeError::Overloaded {
                            tenant: ten.label.clone(),
                            capacity,
                        });
                    }
                    queue = wait_timeout_recover(&shared.space, queue, bound - now).0;
                }
            }
        }
        if queue.shutdown {
            return Err(RuntimeError::ShuttingDown);
        }
        let slots: Vec<Arc<Slot>> = inputs
            .into_iter()
            .map(|input| {
                let slot = Arc::new(Slot::default());
                queue.pending[tenant].push_back(Request {
                    input,
                    submitted_at: now,
                    deadline: request_deadline,
                    slot: slot.clone(),
                });
                slot
            })
            .collect();
        let depth = queue.pending[tenant].len();
        queue.high_water[tenant] = queue.high_water[tenant].max(depth);
        let total: usize = queue.pending.iter().map(VecDeque::len).sum();
        queue.fleet_high_water = queue.fleet_high_water.max(total);
        drop(queue);
        // Enqueue payload: `a` = requests admitted, `b` = the originating
        // connection tag in the high 32 bits over the post-admission queue
        // depth (depth is bounded by queue_capacity, well under 2^32).
        trace::instant(
            trace::SpanKind::Enqueue,
            tenant as u32,
            slots.len() as u64,
            ((client & 0xFFFF_FFFF) << 32) | depth as u64,
        );
        shared.submitted.notify_all();
        Ok(slots)
    }
}

impl<E: GroupExecutor> Drop for Scheduler<E> {
    fn drop(&mut self) {
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.submitted.notify_all();
        self.shared.space.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            // The supervisor joins every worker (workers drain every
            // queued request before exiting), so no submitter is left
            // parked.
            let _ = supervisor.join();
        }
    }
}

/// Spawns one scheduler worker thread for lane `lane`. The worker's last
/// act — clean exit or unwinding panic — is reporting to the supervisor
/// over `exit_tx`.
fn spawn_worker<E: GroupExecutor>(
    shared: Arc<Shared<E>>,
    lane: usize,
    exit_tx: mpsc::Sender<WorkerExit>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("epim-sched-{lane}"))
        .spawn(move || {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_main(&shared)));
            let _ = exit_tx.send(match outcome {
                Ok(()) => WorkerExit::Clean(lane),
                Err(_) => WorkerExit::Crashed(lane),
            });
        })
        .expect("spawning scheduler thread")
}

/// One scheduler thread: pick a tenant, coalesce, execute, deliver, until
/// shut down.
///
/// Per-batch panics are caught inside [`execute_group`] and delivered as
/// [`RuntimeError::ExecutionPanicked`]; anything that escapes (an
/// injected worker kill, a panic inside the stats critical section)
/// unwinds this function — every in-hand request still gets a delivery
/// via [`DeliveryGuard`], and the supervisor respawns the thread.
fn worker_main<E: GroupExecutor>(shared: &Shared<E>) {
    loop {
        let Some((tenant, group)) = next_group(shared) else {
            return;
        };
        execute_group(shared, tenant, group);
        // Injected worker kill: fires *after* the group delivered, so the
        // crash costs a thread (exercising the supervisor), never an
        // answer.
        if faults::fires(faults::FaultPoint::WorkerPanic) {
            panic!("injected fault: worker panic after batch");
        }
    }
}

/// The supervisor loop: joins cleanly-exiting workers, respawns crashed
/// ones (exponential backoff, bounded by `restart_budget`), and fails the
/// whole fleet with [`RuntimeError::CrashLoop`] once the budget is
/// exhausted. Returns when every worker lane has exited.
fn supervisor_main<E: GroupExecutor>(
    shared: &Arc<Shared<E>>,
    exit_rx: mpsc::Receiver<WorkerExit>,
    exit_tx: mpsc::Sender<WorkerExit>,
    mut handles: Vec<Option<std::thread::JoinHandle<()>>>,
    restart_budget: u32,
) {
    let mut alive = handles.len();
    let mut restarts_used: u32 = 0;
    while alive > 0 {
        // Every live worker sends exactly one exit report, and the
        // supervisor holds a sender too, so recv can only fail if the
        // channel logic itself is broken — treat that as fleet failure
        // rather than spinning.
        let Ok(exit) = exit_rx.recv() else {
            fail_fleet(shared, restarts_used);
            return;
        };
        match exit {
            WorkerExit::Clean(lane) => {
                if let Some(handle) = handles[lane].take() {
                    let _ = handle.join();
                }
                alive -= 1;
            }
            WorkerExit::Crashed(lane) => {
                if let Some(handle) = handles[lane].take() {
                    let _ = handle.join();
                }
                if lock_recover(&shared.queue).shutdown {
                    // A crash during shutdown is not worth a respawn: the
                    // remaining workers (or the fail-safe drain on the
                    // way out) finish the drain.
                    alive -= 1;
                    continue;
                }
                if restarts_used >= restart_budget {
                    fail_fleet(shared, restarts_used);
                    alive -= 1;
                    continue;
                }
                restarts_used += 1;
                shared.restarts.fetch_add(1, Ordering::Relaxed);
                // Exponential backoff (2ms, 4ms, … capped at 128ms): a
                // deterministic crash loop burns its budget in well under
                // a second instead of hammering the executor.
                let backoff = Duration::from_millis(1u64 << restarts_used.min(7));
                std::thread::sleep(backoff);
                handles[lane] = Some(spawn_worker(shared.clone(), lane, exit_tx.clone()));
            }
        }
    }
    // Fail-safe: with no worker lanes left, anything still queued (e.g. a
    // submission that raced the shutdown flag) would hang forever. Usually
    // a no-op — clean-exiting workers only return with every queue empty.
    drain_all(shared, RuntimeError::ShuttingDown);
}

/// Marks the fleet shut down and fails every queued request with a typed
/// [`RuntimeError::CrashLoop`] — the crash-loop terminal state: no new
/// work is accepted, nothing hangs.
fn fail_fleet<E: GroupExecutor>(shared: &Shared<E>, restarts: u32) {
    drain_all(shared, RuntimeError::CrashLoop { restarts });
}

/// Sets shutdown and delivers `error` to every queued request, waking all
/// parked submitters and workers.
fn drain_all<E: GroupExecutor>(shared: &Shared<E>, error: RuntimeError) {
    let mut queue = lock_recover(&shared.queue);
    queue.shutdown = true;
    for pending in &mut queue.pending {
        for request in pending.drain(..) {
            request.slot.deliver(Err(error.clone()));
        }
    }
    drop(queue);
    shared.submitted.notify_all();
    shared.space.notify_all();
}

/// Advances the weighted-round-robin drain state to the next tenant that
/// may be served, reserving one group's worth of its budget. Reserving at
/// selection (rather than charging at drain) is what upholds the "at
/// most `weight` groups per turn" guarantee even with several workers
/// picking concurrently; a turn later abandoned to a multi-worker race
/// returns its unit via [`QueueSet::refund`], so races do not burn the
/// tenant's share either.
///
/// The caller must hold the queue lock and guarantee at least one tenant
/// has pending work; because advancing the cursor refills the budget from
/// the new tenant's weight (always ≥ 1), the walk reaches a backlogged
/// tenant within one cycle.
fn pick_tenant<E: GroupExecutor>(queue: &mut QueueSet, shared: &Shared<E>) -> usize {
    let n = shared.tenants.len();
    loop {
        if queue.budget > 0 && !queue.pending[queue.cursor].is_empty() {
            queue.budget -= 1;
            return queue.cursor;
        }
        queue.cursor = (queue.cursor + 1) % n;
        queue.budget = u64::from(shared.tenants[queue.cursor].config.weight);
    }
}

/// True if any tenant other than `tenant` has pending work — the signal
/// for a coalescing thread to flush early instead of sitting on its batch
/// window while neighbours wait.
fn others_pending(queue: &QueueSet, tenant: usize) -> bool {
    queue
        .pending
        .iter()
        .enumerate()
        .any(|(t, q)| t != tenant && !q.is_empty())
}

/// Sheds every queued request whose deadline has already passed,
/// delivering the typed [`RuntimeError::DeadlineExceeded`] and recording
/// per-tenant counters. Returns whether anything was shed (queue space
/// freed). The caller holds the queue lock; slot delivery and the stats
/// mutex are leaf locks (nothing takes the queue lock while holding
/// either), so taking them underneath cannot deadlock.
fn shed_expired<E: GroupExecutor>(queue: &mut QueueSet, shared: &Shared<E>) -> bool {
    let now = Instant::now();
    let mut any = false;
    for (t, pending) in queue.pending.iter_mut().enumerate() {
        let mut expired = 0u64;
        pending.retain(|request| match request.deadline {
            Some(d) if d <= now => {
                request.slot.deliver(Err(RuntimeError::DeadlineExceeded));
                expired += 1;
                false
            }
            _ => true,
        });
        if expired > 0 {
            lock_recover(&shared.tenants[t].stats).record_deadline_exceeded(expired);
            any = true;
        }
    }
    any
}

/// Blocks for the next same-shape request group of some tenant, honoring
/// the fair-drain policy and the tenant's batch window. Returns `None`
/// when shut down with every queue empty.
fn next_group<E: GroupExecutor>(shared: &Shared<E>) -> Option<(usize, Vec<Request>)> {
    let mut queue = lock_recover(&shared.queue);
    // With several workers a queue head can change (or vanish) under us
    // while we wait; every such race restarts this loop — iteration, not
    // recursion, so sustained churn cannot grow the stack.
    'regroup: loop {
        // Park until there is work somewhere (or nothing more will come).
        loop {
            if queue.any_pending() {
                break;
            }
            if queue.shutdown {
                return None;
            }
            queue = wait_recover(&shared.submitted, queue);
        }

        // Expired requests are shed before a tenant is picked: a batch
        // slot must never be spent on an answer nobody is waiting for.
        // Shedding may empty every queue, so re-enter the park loop.
        if shed_expired(&mut queue, shared) {
            shared.space.notify_all();
            continue 'regroup;
        }

        // Weighted-fair tenant selection, then coalesce within that
        // tenant: hold the batch open for up to its `batch_window`, or
        // until `max_batch` requests of the head's shape have arrived.
        // Shutdown flushes immediately, and so does a backlog on any
        // *other* tenant — one tenant's coalescing knob must not inflate
        // its neighbours' latency while they have runnable work.
        let tenant = pick_tenant(&mut queue, shared);
        let t_coalesce = trace::start();
        let config = shared.tenants[tenant].config;
        let shape: Vec<usize> = queue.pending[tenant][0].input.shape().to_vec();
        let deadline = Instant::now() + config.batch_window;
        loop {
            let same = queue.pending[tenant]
                .iter()
                .filter(|r| r.input.shape() == shape)
                .count();
            if same >= config.max_batch || queue.shutdown || others_pending(&queue, tenant) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (q, timeout) = wait_timeout_recover(&shared.submitted, queue, deadline - now);
            queue = q;
            if timeout.timed_out() {
                break;
            }
            // Another worker may have drained this tenant (or its head
            // shape) while we waited; return the reserved budget unit and
            // restart the fair-drain walk.
            if queue.pending[tenant].is_empty() || queue.pending[tenant][0].input.shape() != shape {
                queue.refund(tenant, config.weight);
                continue 'regroup;
            }
        }
        // Requests may have expired while the batch window held them
        // open; shed them now rather than batching them.
        if shed_expired(&mut queue, shared) {
            shared.space.notify_all();
        }
        if queue.pending[tenant].is_empty() {
            queue.refund(tenant, config.weight);
            continue 'regroup;
        }

        // Drain the head's shape group in FIFO order; other shapes stay
        // queued for their own group (the shape-divergence fallback).
        let mut group = Vec::new();
        let mut i = 0;
        while i < queue.pending[tenant].len() && group.len() < config.max_batch {
            if queue.pending[tenant][i].input.shape() == shape {
                group.push(queue.pending[tenant].remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
        if group.is_empty() {
            queue.refund(tenant, config.weight);
            continue 'regroup;
        }
        drop(queue);
        trace::span(
            trace::SpanKind::Coalesce,
            tenant as u32,
            0,
            t_coalesce,
            group.len() as u64,
            0,
        );
        // Queue space freed: wake blocked submitters.
        shared.space.notify_all();
        return Some((tenant, group));
    }
}

/// Owns a drained group for the duration of its execution. Requests leave
/// the guard one by one as they are delivered; if the executing thread
/// unwinds first — an injected lock-holder panic, a panic escaping the
/// per-batch guard — `Drop` fails every still-undelivered request with
/// [`RuntimeError::ExecutionPanicked`]. The panic still propagates (and
/// kills the worker, exercising the supervisor), but it can never strand
/// a parked submitter.
struct DeliveryGuard {
    requests: Vec<Option<Request>>,
}

impl DeliveryGuard {
    fn new(group: Vec<Request>) -> Self {
        DeliveryGuard {
            requests: group.into_iter().map(Some).collect(),
        }
    }

    /// The `i`th request (must not have been delivered yet).
    fn get(&self, i: usize) -> &Request {
        self.requests[i]
            .as_ref()
            .expect("request already delivered")
    }

    /// Delivers `result` to the `i`th request, removing it from the
    /// guard's custody.
    fn deliver(&mut self, i: usize, result: Result<Inference, RuntimeError>) {
        if let Some(request) = self.requests[i].take() {
            request.slot.deliver(result);
        }
    }
}

impl Drop for DeliveryGuard {
    fn drop(&mut self) {
        for request in self.requests.iter_mut().filter_map(Option::take) {
            request.slot.deliver(Err(RuntimeError::ExecutionPanicked));
        }
    }
}

/// Runs one group through its tenant's executor and delivers results.
///
/// Every request in the group is guaranteed a delivery: success, its own
/// error, or [`RuntimeError::ExecutionPanicked`] if the executor panicked
/// — a panicking batch must never strand its submitters. The guarantee
/// holds even if this function itself unwinds: the [`DeliveryGuard`]
/// fails whatever it still holds.
fn execute_group<E: GroupExecutor>(shared: &Shared<E>, tenant: usize, group: Vec<Request>) {
    let ten = &shared.tenants[tenant];
    let batch_size = group.len();
    let mut guard = DeliveryGuard::new(group);
    let inputs: Vec<&Tensor> = (0..batch_size).map(|i| &guard.get(i).input).collect();
    let exec_started = Instant::now();
    let t_group = trace::start();
    let batch_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ten.exec.execute_batch(tenant as u32, &inputs)
    }));
    drop(inputs);
    trace::span(
        trace::SpanKind::Group,
        tenant as u32,
        0,
        t_group,
        batch_size as u64,
        0,
    );
    match batch_result {
        Err(_) => {
            for i in 0..batch_size {
                guard.deliver(i, Err(RuntimeError::ExecutionPanicked));
            }
        }
        Ok(Ok((outputs, dp_stats, stage_ns))) => {
            let service = exec_started.elapsed();
            record_and_deliver(
                ten,
                &mut guard,
                outputs,
                &dp_stats,
                &stage_ns,
                batch_size,
                exec_started,
                &[service],
            );
        }
        Ok(Err(_)) => {
            // Defensive fallback: run the group per-request so one bad
            // request cannot poison its batchmates (each gets its own
            // error or result).
            let mut outputs = Vec::with_capacity(batch_size);
            let mut services = Vec::with_capacity(batch_size);
            let mut dp_stats = DataPathStats::default();
            let mut failures: Vec<(usize, RuntimeError)> = Vec::new();
            for i in 0..batch_size {
                let started = Instant::now();
                let input = &guard.get(i).input;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    ten.exec.execute_one(tenant as u32, input)
                }));
                services.push(started.elapsed());
                match outcome {
                    Ok(Ok((out, s))) => {
                        dp_stats.accumulate(&s);
                        outputs.push(out);
                    }
                    Ok(Err(e)) => {
                        failures.push((i, e));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                    Err(_) => {
                        failures.push((i, RuntimeError::ExecutionPanicked));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                }
            }
            if failures.is_empty() {
                record_and_deliver(
                    ten,
                    &mut guard,
                    outputs,
                    &dp_stats,
                    &[],
                    batch_size,
                    exec_started,
                    &services,
                );
            } else {
                // Deliver successes as singletons, failures as errors.
                for i in 0..batch_size {
                    if let Some((_, e)) = failures.iter().find(|(fi, _)| *fi == i) {
                        guard.deliver(i, Err(e.clone()));
                    } else {
                        let submitted_at = guard.get(i).submitted_at;
                        let latency = submitted_at.elapsed();
                        let mut stats = lock_recover(&ten.stats);
                        stats.record_request(
                            exec_started.saturating_duration_since(submitted_at),
                            services[i],
                            latency,
                        );
                        drop(stats);
                        guard.deliver(
                            i,
                            Ok(Inference {
                                output: outputs[i].clone(),
                                batch_size: 1,
                                latency,
                            }),
                        );
                    }
                }
            }
        }
    }
}

/// Records batch statistics into the tenant's accumulator and hands each
/// request its output. `services` is either one duration shared by the
/// whole batch or one per request (the fallback path), and `exec_started`
/// marks the end of each request's queue wait.
#[allow(clippy::too_many_arguments)]
fn record_and_deliver<E>(
    tenant: &Tenant<E>,
    guard: &mut DeliveryGuard,
    outputs: Vec<Tensor>,
    dp_stats: &DataPathStats,
    stage_ns: &[u64],
    batch_size: usize,
    exec_started: Instant,
    services: &[Duration],
) {
    {
        let mut stats = lock_recover(&tenant.stats);
        // Injected lock-holder panic: unwinds while holding the stats
        // mutex (poisoning it) with the batch outputs in hand — the
        // delivery guard fails the requests, lock recovery un-poisons the
        // mutex for the respawned worker.
        if faults::fires(faults::FaultPoint::LockPanic) {
            panic!("injected fault: panic while holding the stats lock");
        }
        stats.record_batch(batch_size, dp_stats, stage_ns);
        for i in 0..batch_size {
            let request = guard.get(i);
            let service = if services.len() == 1 {
                services[0]
            } else {
                services[i]
            };
            stats.record_request(
                exec_started.saturating_duration_since(request.submitted_at),
                service,
                request.submitted_at.elapsed(),
            );
        }
    }
    for (i, output) in outputs.into_iter().enumerate() {
        let latency = guard.get(i).submitted_at.elapsed();
        guard.deliver(
            i,
            Ok(Inference {
                output,
                batch_size,
                latency,
            }),
        );
    }
}
