//! The reusable scheduler core shared by every serving engine.
//!
//! PR 2's single-layer `Engine` owned its queue, coalescing loop, slot
//! delivery and panic handling directly; serving whole networks would have
//! meant duplicating all of it. This module extracts that machinery into a
//! [`Scheduler`] that is generic over *what a batch executes* (the
//! [`GroupExecutor`] trait): the single-layer [`crate::Engine`] plugs in a
//! `DataPath`, the [`crate::NetworkEngine`] a whole
//! [`crate::NetworkPlan`], and both get identical queueing, coalescing,
//! flow-control and failure semantics from one implementation.
//!
//! ## Request flow
//!
//! 1. Submitters push requests onto one **bounded** MPSC queue
//!    ([`EngineConfig::queue_capacity`]). When the queue is full the
//!    configured [`FlowControl`] decides: [`FlowControl::Block`] waits for
//!    space (no request is ever dropped), [`FlowControl::Shed`] waits up
//!    to its timeout and then rejects with
//!    [`RuntimeError::Overloaded`]. [`Scheduler::try_submit`] never waits.
//! 2. [`EngineConfig::workers`] scheduler threads pull from the queue.
//!    Each takes the queue head's input shape, coalesces up to
//!    [`EngineConfig::max_batch`] same-shaped requests (holding the batch
//!    open up to [`EngineConfig::batch_window`]), drains the group in FIFO
//!    order and runs it through the executor. With more than one worker,
//!    group `k + 1` is being coalesced and executed while group `k` is
//!    still in flight — the pipeline that keeps a slow shape group from
//!    stalling the queue behind it.
//! 3. Results are delivered to per-request slots; every request is
//!    guaranteed a delivery (success, its own error, or
//!    [`RuntimeError::ExecutionPanicked`]), and a failing batch is retried
//!    per-request so one bad request cannot poison its batchmates.

use crate::stats::StatsInner;
use crate::{PlanCacheStats, RuntimeError};
use epim_pim::datapath::DataPathStats;
use epim_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a scheduler executes: one shape-uniform request group at a time.
///
/// Implementations must be deterministic per input (batching is a
/// throughput decision, never a semantic one): `execute_batch` must return
/// outputs bit-identical to `execute_one` per input, with the stats equal
/// to the per-input sum.
pub(crate) trait GroupExecutor: Send + Sync + 'static {
    /// Runs a group of same-shaped inputs, returning one output per input
    /// and the summed execution statistics.
    fn execute_batch(&self, inputs: &[&Tensor]) -> Result<(Vec<Tensor>, DataPathStats), RuntimeError>;

    /// Runs a single input (the per-request fallback used to isolate a
    /// failing batch).
    fn execute_one(&self, input: &Tensor) -> Result<(Tensor, DataPathStats), RuntimeError>;
}

/// Flow-control policy applied when the bounded submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControl {
    /// Block the submitter until space frees up. Nothing is ever dropped;
    /// backpressure propagates to the caller.
    Block,
    /// Wait up to `timeout` for space, then reject the submission with
    /// [`RuntimeError::Overloaded`]. `Duration::ZERO` sheds immediately.
    Shed {
        /// How long a submitter may wait for queue space before shedding.
        timeout: Duration,
    },
}

/// Micro-batching and flow-control knobs (shared by [`crate::Engine`] and
/// [`crate::NetworkEngine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Most requests coalesced into one executed batch.
    pub max_batch: usize,
    /// How long a scheduler thread holds a non-full batch open for
    /// stragglers. `Duration::ZERO` disables coalescing-by-time: whatever
    /// is queued when the thread looks is taken.
    pub batch_window: Duration,
    /// Bounded submission-queue capacity (pending requests).
    pub queue_capacity: usize,
    /// What happens to submissions when the queue is full.
    pub flow: FlowControl,
    /// Scheduler threads executing groups concurrently (the pipeline
    /// depth). `1` reproduces the strictly serial group order of the
    /// original engine; more lets a fresh group coalesce and execute while
    /// earlier ones are still in flight.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            batch_window: Duration::from_micros(200),
            queue_capacity: 256,
            flow: FlowControl::Block,
            workers: 1,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration, returning a typed error instead of
    /// letting a zero knob hang or panic a scheduler thread.
    pub(crate) fn validate(&self) -> Result<(), RuntimeError> {
        if self.max_batch == 0 {
            return Err(RuntimeError::config("max_batch must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(RuntimeError::config("queue_capacity must be at least 1"));
        }
        if self.workers == 0 {
            return Err(RuntimeError::config("workers must be at least 1"));
        }
        Ok(())
    }
}

/// One completed inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The output for this request's input.
    pub output: Tensor,
    /// How many requests shared the executed batch.
    pub batch_size: usize,
    /// Submission-to-delivery latency.
    pub latency: Duration,
}

/// A queued request: the input plus the slot its submitter parks on.
struct Request {
    input: Tensor,
    submitted_at: Instant,
    slot: Arc<Slot>,
}

/// Rendezvous between a submitter and a scheduler thread.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Result<Inference, RuntimeError>>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, result: Result<Inference, RuntimeError>) {
        *self.result.lock().expect("slot poisoned") = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Inference, RuntimeError> {
        let mut guard = self.result.lock().expect("slot poisoned");
        loop {
            match guard.take() {
                Some(result) => return result,
                None => guard = self.ready.wait(guard).expect("slot poisoned"),
            }
        }
    }
}

/// An accepted-but-unfinished submission (returned by the non-blocking
/// submission paths). Dropping it abandons the result; the request still
/// executes.
pub struct Pending {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").finish_non_exhaustive()
    }
}

impl Pending {
    /// Blocks until the inference completes.
    ///
    /// # Errors
    ///
    /// Returns the request's execution error, or
    /// [`RuntimeError::ShuttingDown`] if the engine dropped before serving
    /// it.
    pub fn wait(self) -> Result<Inference, RuntimeError> {
        self.slot.wait()
    }
}

struct Shared<E: ?Sized + GroupExecutor> {
    config: EngineConfig,
    queue: Mutex<Queue>,
    /// Signals scheduler threads that the queue changed (new request,
    /// shutdown).
    submitted: Condvar,
    /// Signals blocked submitters that queue space freed up.
    space: Condvar,
    stats: Mutex<StatsInner>,
    exec: E,
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// The scheduler core: bounded queue, shape-grouped micro-batching worker
/// threads, per-request delivery. Engines wrap this around their executor.
pub(crate) struct Scheduler<E: GroupExecutor> {
    shared: Arc<Shared<E>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<E: GroupExecutor> Scheduler<E> {
    /// Validates `config` and spawns the scheduler threads around `exec`.
    pub fn new(exec: E, config: EngineConfig) -> Result<Self, RuntimeError> {
        config.validate()?;
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(Queue::default()),
            submitted: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(StatsInner::default()),
            exec,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("epim-sched-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawning scheduler thread")
            })
            .collect();
        Ok(Scheduler { shared, workers })
    }

    /// The executor this scheduler drives.
    pub fn executor(&self) -> &E {
        &self.shared.exec
    }

    /// Submits one request under the configured flow control and waits for
    /// its result.
    pub fn submit_wait(&self, input: Tensor) -> Result<Inference, RuntimeError> {
        let slots = self.enqueue(vec![input], self.shared.config.flow)?;
        slots.into_iter().next().expect("one slot per input").wait()
    }

    /// Submits one request without ever waiting for queue space.
    pub fn try_submit(&self, input: Tensor) -> Result<Pending, RuntimeError> {
        let slots =
            self.enqueue(vec![input], FlowControl::Shed { timeout: Duration::ZERO })?;
        Ok(Pending { slot: slots.into_iter().next().expect("one slot per input") })
    }

    /// Submits a burst atomically (the whole burst is visible to the
    /// coalescers at once) and waits for all results, in order.
    #[allow(clippy::type_complexity)]
    pub fn submit_many(
        &self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        let slots = self.enqueue(inputs, self.shared.config.flow)?;
        Ok(slots.into_iter().map(|s| s.wait()).collect())
    }

    /// A point-in-time statistics snapshot; `plan_cache` is supplied by
    /// the wrapping engine (zeroes when it has no cache).
    pub fn stats(&self, plan_cache: PlanCacheStats) -> crate::RuntimeStats {
        let queue_depth = self.shared.queue.lock().expect("queue poisoned").pending.len();
        self.shared.stats.lock().expect("stats poisoned").snapshot(queue_depth, plan_cache)
    }

    /// Pushes requests onto the bounded queue under one lock (so a burst
    /// coalesces deterministically) and wakes the scheduler threads.
    fn enqueue(
        &self,
        inputs: Vec<Tensor>,
        flow: FlowControl,
    ) -> Result<Vec<Arc<Slot>>, RuntimeError> {
        let shared = &self.shared;
        let capacity = shared.config.queue_capacity;
        if inputs.len() > capacity {
            return Err(RuntimeError::config(format!(
                "burst of {} exceeds queue_capacity {capacity}",
                inputs.len()
            )));
        }
        let now = Instant::now();
        let mut queue = shared.queue.lock().expect("queue poisoned");
        // Backpressure: wait (or shed) until the whole submission fits.
        let deadline = match flow {
            FlowControl::Block => None,
            FlowControl::Shed { timeout } => Some(now + timeout),
        };
        while !queue.shutdown && queue.pending.len() + inputs.len() > capacity {
            match deadline {
                None => queue = shared.space.wait(queue).expect("queue poisoned"),
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        drop(queue);
                        let mut stats = shared.stats.lock().expect("stats poisoned");
                        stats.record_shed(inputs.len() as u64);
                        return Err(RuntimeError::Overloaded { capacity });
                    }
                    let (q, _) =
                        shared.space.wait_timeout(queue, left).expect("queue poisoned");
                    queue = q;
                }
            }
        }
        if queue.shutdown {
            return Err(RuntimeError::ShuttingDown);
        }
        let slots: Vec<Arc<Slot>> = inputs
            .into_iter()
            .map(|input| {
                let slot = Arc::new(Slot::default());
                queue.pending.push_back(Request {
                    input,
                    submitted_at: now,
                    slot: slot.clone(),
                });
                slot
            })
            .collect();
        drop(queue);
        shared.submitted.notify_all();
        Ok(slots)
    }
}

impl<E: GroupExecutor> Drop for Scheduler<E> {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.shutdown = true;
        }
        self.shared.submitted.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            // Workers drain every queued request before exiting, so no
            // submitter is left parked.
            let _ = handle.join();
        }
    }
}

/// One scheduler thread: coalesce, execute, deliver, until shut down.
fn worker_main<E: ?Sized + GroupExecutor>(shared: &Shared<E>) {
    // The loop contains per-batch panic guards; this outer guard covers
    // everything else (e.g. a poisoned stats lock) so an unwinding worker
    // can never strand parked submitters or accept work it will never
    // serve.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
        let Some(group) = next_group(shared) else {
            return;
        };
        execute_group(shared, group);
    }));
    let mut queue = shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    queue.shutdown = true;
    for request in queue.pending.drain(..) {
        request.slot.deliver(Err(RuntimeError::ShuttingDown));
    }
    drop(queue);
    shared.submitted.notify_all();
    shared.space.notify_all();
}

/// Blocks for the next same-shape request group, honoring the batch
/// window. Returns `None` when shut down with an empty queue.
fn next_group<E: ?Sized + GroupExecutor>(shared: &Shared<E>) -> Option<Vec<Request>> {
    let config = shared.config;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    // With several workers the head can change (or vanish) under us while
    // we wait; every such race restarts this loop — iteration, not
    // recursion, so sustained churn cannot grow the stack.
    'regroup: loop {
        // Park until there is work (or nothing more will come).
        loop {
            if !queue.pending.is_empty() {
                break;
            }
            if queue.shutdown {
                return None;
            }
            queue = shared.submitted.wait(queue).expect("queue poisoned");
        }

        // Coalesce: hold the batch open for up to `batch_window`, or
        // until `max_batch` requests of the head's shape have arrived.
        // Shutdown flushes immediately.
        let shape: Vec<usize> = queue.pending[0].input.shape().to_vec();
        let deadline = Instant::now() + config.batch_window;
        loop {
            let same = queue.pending.iter().filter(|r| r.input.shape() == shape).count();
            if same >= config.max_batch || queue.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (q, timeout) = shared
                .submitted
                .wait_timeout(queue, deadline - now)
                .expect("queue poisoned");
            queue = q;
            if timeout.timed_out() {
                break;
            }
            // Another worker may have drained the queue (or its head
            // shape) while we waited; regroup around the new head.
            if queue.pending.is_empty() || queue.pending[0].input.shape() != shape {
                continue 'regroup;
            }
        }
        if queue.pending.is_empty() {
            continue 'regroup;
        }

        // Drain the head's shape group in FIFO order; other shapes stay
        // queued for their own group (the shape-divergence fallback).
        let mut group = Vec::new();
        let mut i = 0;
        while i < queue.pending.len() && group.len() < config.max_batch {
            if queue.pending[i].input.shape() == shape {
                group.push(queue.pending.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
        if group.is_empty() {
            continue 'regroup;
        }
        drop(queue);
        // Queue space freed: wake blocked submitters.
        shared.space.notify_all();
        return Some(group);
    }
}

/// Runs one group through the executor and delivers results.
///
/// Every request in the group is guaranteed a delivery: success, its own
/// error, or [`RuntimeError::ExecutionPanicked`] if the executor panicked
/// — a panicking batch must never strand its submitters.
fn execute_group<E: ?Sized + GroupExecutor>(shared: &Shared<E>, group: Vec<Request>) {
    let batch_size = group.len();
    let inputs: Vec<&Tensor> = group.iter().map(|r| &r.input).collect();
    let batch_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.exec.execute_batch(&inputs)
    }));
    drop(inputs);
    match batch_result {
        Err(_) => {
            for request in group {
                request.slot.deliver(Err(RuntimeError::ExecutionPanicked));
            }
        }
        Ok(Ok((outputs, dp_stats))) => {
            record_and_deliver(shared, group, outputs, &dp_stats, batch_size);
        }
        Ok(Err(_)) => {
            // Defensive fallback: run the group per-request so one bad
            // request cannot poison its batchmates (each gets its own
            // error or result).
            let mut outputs = Vec::with_capacity(batch_size);
            let mut dp_stats = DataPathStats::default();
            let mut failures: Vec<(usize, RuntimeError)> = Vec::new();
            for (i, request) in group.iter().enumerate() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.exec.execute_one(&request.input)
                }));
                match outcome {
                    Ok(Ok((out, s))) => {
                        dp_stats.accumulate(&s);
                        outputs.push(out);
                    }
                    Ok(Err(e)) => {
                        failures.push((i, e));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                    Err(_) => {
                        failures.push((i, RuntimeError::ExecutionPanicked));
                        outputs.push(Tensor::zeros(&[1]));
                    }
                }
            }
            if failures.is_empty() {
                record_and_deliver(shared, group, outputs, &dp_stats, batch_size);
            } else {
                // Deliver successes as singletons, failures as errors.
                for (i, request) in group.into_iter().enumerate() {
                    if let Some((_, e)) = failures.iter().find(|(fi, _)| *fi == i) {
                        request.slot.deliver(Err(e.clone()));
                    } else {
                        let latency = request.submitted_at.elapsed();
                        let mut stats = shared.stats.lock().expect("stats poisoned");
                        stats.record_latency(latency);
                        drop(stats);
                        request.slot.deliver(Ok(Inference {
                            output: outputs[i].clone(),
                            batch_size: 1,
                            latency,
                        }));
                    }
                }
            }
        }
    }
}

/// Records batch statistics and hands each request its output.
fn record_and_deliver<E: ?Sized + GroupExecutor>(
    shared: &Shared<E>,
    group: Vec<Request>,
    outputs: Vec<Tensor>,
    dp_stats: &DataPathStats,
    batch_size: usize,
) {
    {
        let mut stats = shared.stats.lock().expect("stats poisoned");
        stats.record_batch(batch_size, dp_stats);
        for request in &group {
            stats.record_latency(request.submitted_at.elapsed());
        }
    }
    for (request, output) in group.into_iter().zip(outputs) {
        let latency = request.submitted_at.elapsed();
        request.slot.deliver(Ok(Inference { output, batch_size, latency }));
    }
}
