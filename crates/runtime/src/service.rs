//! The unified submission surface shared by every serving engine.
//!
//! Before this module, the three engines exposed three near-identical but
//! incompatible submission APIs — [`crate::Engine::try_infer`] took a bare
//! tensor, [`crate::MultiEngine::try_infer`] a `(TenantId, Tensor)` pair,
//! and [`crate::TenantHandle::try_infer`] a tensor again — which made it
//! impossible to write a server binary (or a test harness) generic over
//! *what* is serving. [`InferService`] is that missing common surface:
//! one typed request message ([`InferRequest`]), one non-blocking
//! submission returning a [`Pending`], and one statistics snapshot.
//!
//! [`crate::Engine`], [`crate::NetworkEngine`] and [`crate::TenantHandle`]
//! all implement it, so the TCP front-end (`epim-serve`), examples and
//! tests can accept `&dyn InferService` (or be generic over
//! `S: InferService`) and serve any engine. The engines' inherent
//! methods now take `impl Into<InferRequest>` — a bare [`Tensor`] still
//! works everywhere — so the old call sites compile unchanged while new
//! code can attach request metadata (the client/connection tag that the
//! wire path threads into enqueue trace spans).

use crate::{Inference, Pending, RuntimeError, RuntimeStats};
use epim_tensor::Tensor;
use std::time::Instant;

/// A client tag meaning "not attributed to any connection".
pub const CLIENT_NONE: u64 = 0;

/// One typed inference request: the input tensor plus submission
/// metadata. This is the message shared by the in-process path (where it
/// is built from a bare [`Tensor`] via `From`) and the wire path (where
/// `epim-serve` decodes it from a request frame and tags it with the
/// originating connection).
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The input tensor, shaped as the serving plan expects.
    pub input: Tensor,
    /// Originating client/connection tag ([`CLIENT_NONE`] when the
    /// request was submitted in-process). Carried into the scheduler's
    /// `Enqueue` trace span payload so per-connection request flow is
    /// visible in exported traces; never affects execution.
    pub client: u64,
    /// Optional completion deadline. A request whose deadline passes
    /// before its batch starts executing is shed with
    /// [`RuntimeError::DeadlineExceeded`] instead of wasting a batch
    /// slot; admission waits under [`crate::FlowControl::Shed`] and
    /// [`crate::FlowControl::Block`] are bounded by it too. `None` (the
    /// default) keeps the pre-deadline behavior: requests wait as long
    /// as flow control allows.
    pub deadline: Option<Instant>,
}

impl InferRequest {
    /// A request for `input` with no client attribution.
    pub fn new(input: Tensor) -> Self {
        InferRequest {
            input,
            client: CLIENT_NONE,
            deadline: None,
        }
    }

    /// This request tagged as originating from `client` (builder-style).
    pub fn with_client(mut self, client: u64) -> Self {
        self.client = client;
        self
    }

    /// This request bounded by an absolute completion `deadline`
    /// (builder-style). See [`InferRequest::deadline`].
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl From<Tensor> for InferRequest {
    fn from(input: Tensor) -> Self {
        InferRequest::new(input)
    }
}

/// The unified serving surface: anything that can accept an
/// [`InferRequest`] and report its serving statistics.
///
/// Implemented by [`crate::Engine`] (single epitome layer),
/// [`crate::NetworkEngine`] (one compiled network) and
/// [`crate::TenantHandle`] (one tenant of a [`crate::MultiEngine`]
/// fleet), so servers, load generators, examples and tests can be written
/// once, generic over engines:
///
/// ```ignore
/// fn drive(svc: &impl InferService, xs: Vec<Tensor>) -> Vec<Tensor> {
///     xs.into_iter()
///         .map(|x| svc.try_infer(x.into()).unwrap().wait().unwrap().output)
///         .collect()
/// }
/// ```
pub trait InferService {
    /// Submits `req` without ever blocking on queue space: a full
    /// submission queue sheds immediately with
    /// [`RuntimeError::Overloaded`] regardless of the configured flow
    /// control. On success the returned [`Pending`] delivers the result —
    /// via blocking [`Pending::wait`], bounded
    /// [`Pending::wait_timeout`], or `await`/poll (it implements
    /// [`std::future::Future`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Overloaded`] when the queue is full,
    /// [`RuntimeError::ShuttingDown`] during shutdown, or the
    /// implementation's validation errors (e.g.
    /// [`RuntimeError::UnknownTenant`]).
    fn try_infer(&self, req: InferRequest) -> Result<Pending, RuntimeError>;

    /// Submits `req` and blocks for the result — the provided convenience
    /// over [`InferService::try_infer`] + [`Pending::wait`]. Note the
    /// queue-full behavior is the non-blocking path's: a full queue sheds
    /// instead of applying the engine's configured backpressure (use the
    /// engines' inherent `infer` for that).
    ///
    /// # Errors
    ///
    /// Same contract as [`InferService::try_infer`], plus the request's
    /// own execution error.
    fn infer(&self, req: InferRequest) -> Result<Inference, RuntimeError> {
        self.try_infer(req)?.wait()
    }

    /// A point-in-time snapshot of this service's serving statistics.
    fn stats(&self) -> RuntimeStats;
}
