//! Multi-network tenancy: one scheduler serving a fleet of compiled
//! plans.
//!
//! The paper's epitome compression pays off at fleet scale — many small
//! compressed models sharing one accelerator. [`crate::NetworkEngine`]
//! serves exactly one [`NetworkPlan`]; a deployment with several
//! compressed backbones would need one engine (and one worker-pool fight)
//! per model. [`MultiEngine`] closes that gap: several compiled plans
//! register as **tenants** sharing one [`PlanCache`] and one set of
//! scheduler threads, each tenant with its own bounded submission queue,
//! its own [`FlowControl`] and micro-batching knobs, and its own
//! [`RuntimeStats`] — drained under the scheduler core's weighted-fair
//! policy (see [`crate::scheduler`]'s module docs).
//!
//! Because request groups never mix tenants and every tenant executes its
//! own plan, each tenant's outputs and [`DataPathStats`] rollups are
//! **bit-identical** to running that tenant alone on a dedicated
//! [`crate::NetworkEngine`] — tenancy is purely a resource-sharing
//! decision, never a semantic one. Two tenants whose networks share an
//! [`epim_core::EpitomeSpec`] share one compiled plan through the cache
//! (one compile, visible in [`crate::PlanCacheStats`]).
//!
//! [`DataPathStats`]: epim_pim::datapath::DataPathStats
//!
//! # Example
//!
//! ```no_run
//! use epim_models::lower::NetworkWeights;
//! use epim_models::zoo;
//! use epim_pim::datapath::AnalogModel;
//! use epim_runtime::{MultiEngine, PlanCache, TenantConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (small, _) = zoo::tiny_epitome_network(8, 4, 10)?;
//! let (large, _) = zoo::tiny_epitome_network(8, 8, 10)?;
//! let weights_small = NetworkWeights::random(&small, 1)?;
//! let weights_large = NetworkWeights::random(&large, 2)?;
//!
//! let cache = PlanCache::new();
//! let mut builder = MultiEngine::builder(&cache).workers(2);
//! let premium = builder.register(
//!     "premium", &large, &weights_large, (16, 16), true,
//!     AnalogModel::ideal(), TenantConfig::default().with_weight(3),
//! )?;
//! let standard = builder.register(
//!     "standard", &small, &weights_small, (16, 16), true,
//!     AnalogModel::ideal(), TenantConfig::default(),
//! )?;
//! let engine = builder.build()?;
//!
//! // Handles carry their tenant id; per-tenant and fleet stats coexist.
//! let _ = (premium, standard);
//! let fleet = engine.fleet_stats();
//! # let _ = fleet;
//! # Ok(())
//! # }
//! ```

use crate::network::{NetworkPlan, PlanExecutor};
use crate::scheduler::Scheduler;
use crate::{
    InferRequest, InferService, Inference, Pending, PlanCache, RuntimeError, RuntimeStats,
    TenantConfig,
};
use epim_models::lower::NetworkWeights;
use epim_models::network::Network;
use epim_pim::datapath::AnalogModel;
use epim_tensor::Tensor;
use std::sync::Arc;

/// Process-unique fleet tokens: every builder (and the engine built from
/// it) gets one, so a [`TenantId`] can prove which engine issued it.
static NEXT_FLEET: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_fleet() -> u64 {
    NEXT_FLEET.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// An opaque tenant identifier issued at registration. Ids are only valid
/// on the engine whose builder issued them: each id carries its fleet's
/// process-unique token, and using it on any other engine yields a typed
/// [`RuntimeError::UnknownTenant`] instead of silently routing to
/// whatever tenant happens to share the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId {
    fleet: u64,
    index: usize,
}

impl TenantId {
    /// The tenant's index in registration order.
    pub fn index(self) -> usize {
        self.index
    }
}

/// Builder collecting tenants before the serving threads spawn. Obtained
/// from [`MultiEngine::builder`].
pub struct MultiEngineBuilder {
    cache: PlanCache,
    fleet: u64,
    workers: usize,
    restart_budget: u32,
    tenants: Vec<(String, Arc<NetworkPlan>, TenantConfig)>,
}

impl MultiEngineBuilder {
    /// Sets the number of scheduler threads shared by every tenant (the
    /// pipeline depth; defaults to 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets how many crashed scheduler workers the supervisor may respawn
    /// over the fleet's lifetime before giving up and shutting the fleet
    /// down (defaults to [`crate::DEFAULT_RESTART_BUDGET`]; `0` disables
    /// supervision entirely — the first crash fails the fleet).
    pub fn restart_budget(mut self, budget: u32) -> Self {
        self.restart_budget = budget;
        self
    }

    /// Compiles `network` through the builder's shared [`PlanCache`] (two
    /// tenants with the same `EpitomeSpec` hit one compiled plan) and
    /// registers it as a tenant, returning its id.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors and rejects an invalid
    /// [`TenantConfig`] or a duplicate tenant name.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        name: impl Into<String>,
        network: &Network,
        weights: &NetworkWeights,
        input_hw: (usize, usize),
        wrapping_enabled: bool,
        analog: AnalogModel,
        config: TenantConfig,
    ) -> Result<TenantId, RuntimeError> {
        // Validate the registration before paying for compilation (and
        // before the shared cache's counters record any of its work).
        let name = name.into();
        self.check_registration(&name, config)?;
        // Tenants always serve the optimized program: the graph-fusion
        // pass is bit-identity-safe, so there is nothing to opt out of.
        let plan = Arc::new(NetworkPlan::compile(
            &self.cache,
            network,
            weights,
            input_hw,
            wrapping_enabled,
            analog,
            true,
        )?);
        self.register_plan(name, plan, config)
    }

    /// Rejects an invalid [`TenantConfig`], an empty name, or a name
    /// already registered with this builder.
    fn check_registration(&self, name: &str, config: TenantConfig) -> Result<(), RuntimeError> {
        config.validate()?;
        if name.is_empty() {
            return Err(RuntimeError::config("tenant names must be non-empty"));
        }
        if self.tenants.iter().any(|(n, _, _)| n == name) {
            return Err(RuntimeError::config(format!(
                "duplicate tenant name {name:?}"
            )));
        }
        Ok(())
    }

    /// Registers an already-compiled (possibly shared) plan as a tenant,
    /// returning its id. The same `Arc<NetworkPlan>` may back several
    /// tenants — distinct queues and stats over one set of weights.
    ///
    /// # Errors
    ///
    /// Rejects an invalid [`TenantConfig`] or a duplicate tenant name.
    pub fn register_plan(
        &mut self,
        name: impl Into<String>,
        plan: Arc<NetworkPlan>,
        config: TenantConfig,
    ) -> Result<TenantId, RuntimeError> {
        let name = name.into();
        self.check_registration(&name, config)?;
        self.tenants.push((name, plan, config));
        Ok(TenantId {
            fleet: self.fleet,
            index: self.tenants.len() - 1,
        })
    }

    /// Spawns the serving engine over every registered tenant.
    ///
    /// # Errors
    ///
    /// Rejects an empty tenant list or an invalid worker count.
    pub fn build(self) -> Result<MultiEngine, RuntimeError> {
        if self.tenants.is_empty() {
            return Err(RuntimeError::config(
                "register at least one tenant before build",
            ));
        }
        let mut names = Vec::with_capacity(self.tenants.len());
        let mut max_batches = Vec::with_capacity(self.tenants.len());
        let tenants = self
            .tenants
            .into_iter()
            .map(|(name, plan, config)| {
                // Pre-size each tenant's activation arena for its own
                // max_batch, as the dedicated engine would.
                let max_batch = config.max_batch.max(1);
                plan.warm(max_batch);
                max_batches.push(max_batch);
                names.push(name.clone());
                (Some(name), PlanExecutor { plan }, config)
            })
            .collect();
        let scheduler = Scheduler::multi(tenants, self.workers, self.restart_budget)?;
        Ok(MultiEngine {
            scheduler,
            fleet: self.fleet,
            names,
            max_batches,
            cache: self.cache,
        })
    }
}

/// A multi-tenant serving engine: a fleet of compiled [`NetworkPlan`]s
/// behind one weighted-fair scheduler, sharing one [`PlanCache`] and one
/// worker pool. See the [module docs](self) for the guarantees.
pub struct MultiEngine {
    scheduler: Scheduler<PlanExecutor>,
    fleet: u64,
    names: Vec<String>,
    /// Per-tenant group size the arena metrics are reported for.
    max_batches: Vec<usize>,
    cache: PlanCache,
}

impl MultiEngine {
    /// Starts a builder whose tenants compile through (a handle to)
    /// `cache`.
    pub fn builder(cache: &PlanCache) -> MultiEngineBuilder {
        MultiEngineBuilder {
            cache: cache.clone(),
            fleet: next_fleet(),
            workers: 1,
            restart_budget: crate::DEFAULT_RESTART_BUDGET,
            tenants: Vec::new(),
        }
    }

    /// The registered tenant names, in registration (= id) order.
    pub fn tenant_names(&self) -> &[String] {
        &self.names
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|index| TenantId {
                fleet: self.fleet,
                index,
            })
    }

    /// Resolves `id` to a scheduler index, rejecting ids issued by any
    /// other engine's builder (same-index-different-fleet must error, not
    /// route to an unrelated tenant).
    fn index_of(&self, id: TenantId) -> Result<usize, RuntimeError> {
        if id.fleet != self.fleet {
            return Err(RuntimeError::UnknownTenant { id: id.index });
        }
        self.scheduler.check_tenant(id.index)?;
        Ok(id.index)
    }

    /// A borrowing handle binding this engine to one tenant id — the
    /// ergonomic per-tenant submission surface.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an id this engine did
    /// not issue.
    pub fn tenant(&self, id: TenantId) -> Result<TenantHandle<'_>, RuntimeError> {
        self.index_of(id)?;
        Ok(TenantHandle { engine: self, id })
    }

    /// The compiled plan tenant `id` serves.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an id this engine did
    /// not issue.
    pub fn plan(&self, id: TenantId) -> Result<&Arc<NetworkPlan>, RuntimeError> {
        let index = self.index_of(id)?;
        Ok(&self.scheduler.executor(index).plan)
    }

    /// Runs one whole-network inference on tenant `id` (input
    /// `(N, C, H, W)` matching that tenant's program input shape),
    /// blocking until the execution completes. Concurrent callers of the
    /// same tenant coalesce into stacked groups; other tenants' traffic
    /// shares only the scheduler threads, never a batch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for a foreign id,
    /// [`RuntimeError::ShuttingDown`] during shutdown,
    /// [`RuntimeError::Overloaded`] if this tenant's queue shed the
    /// request, or this request's execution error.
    pub fn infer(
        &self,
        id: TenantId,
        req: impl Into<InferRequest>,
    ) -> Result<Inference, RuntimeError> {
        self.scheduler.submit_wait(self.index_of(id)?, req.into())
    }

    /// Submits to tenant `id` without ever blocking on queue space (full
    /// queue → shed immediately); the returned [`Pending`] waits for the
    /// result. Accepts a bare [`Tensor`] or a tagged [`InferRequest`];
    /// [`MultiEngine::tenant`] yields the per-tenant [`InferService`]
    /// form of this call.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Overloaded`] when this tenant's queue is
    /// full, or [`RuntimeError::UnknownTenant`] for a foreign id.
    pub fn try_infer(
        &self,
        id: TenantId,
        req: impl Into<InferRequest>,
    ) -> Result<Pending, RuntimeError> {
        self.scheduler.try_submit(self.index_of(id)?, req.into())
    }

    /// Submits a burst to tenant `id` atomically and waits for all
    /// results, in order.
    ///
    /// # Errors
    ///
    /// Per-request errors land in their result slot; a burst larger than
    /// the tenant's queue capacity (or submission during shutdown) fails
    /// whole.
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        &self,
        id: TenantId,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        self.scheduler.submit_many(self.index_of(id)?, inputs)
    }

    /// A point-in-time snapshot of one tenant's serving statistics
    /// (queue-wait / service / end-to-end latency histograms, per-stage
    /// time rollups, batch histogram, queue depth with its high-water
    /// mark, shed counter, data-path rollup). The `plan_cache` counters
    /// are those of the shared cache — compilation work is a fleet-level
    /// resource.
    ///
    /// [`RuntimeStats::queue_depth_high_water`] and
    /// [`RuntimeStats::time_in_queue`] are the autoscaling input signal:
    /// a tenant whose high-water mark rides its queue capacity while
    /// queue-wait time grows needs more scheduler workers (or a bigger
    /// share), independent of how its service time behaves.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an id this engine did
    /// not issue.
    pub fn tenant_stats(&self, id: TenantId) -> Result<RuntimeStats, RuntimeError> {
        let index = self.index_of(id)?;
        let mut stats = self.scheduler.tenant_stats(index, self.cache.stats())?;
        let plan = &self.scheduler.executor(index).plan;
        stats.arena_bytes = plan.arena_bytes(self.max_batches[index]);
        stats.legacy_pool_bytes = plan.legacy_pool_bytes(self.max_batches[index]);
        Ok(stats)
    }

    /// The fleet-level rollup across every tenant: counters and data-path
    /// rollups sum, histograms merge, latency percentiles cover the union
    /// of every tenant's retained samples, `queue_depth` is the total
    /// backlog, and the arena byte metrics sum across tenants.
    pub fn fleet_stats(&self) -> RuntimeStats {
        let mut stats = self.scheduler.fleet_stats(self.cache.stats());
        for (index, &max_batch) in self.max_batches.iter().enumerate() {
            let plan = &self.scheduler.executor(index).plan;
            stats.arena_bytes += plan.arena_bytes(max_batch);
            stats.legacy_pool_bytes += plan.legacy_pool_bytes(max_batch);
        }
        stats
    }

    /// Renders the whole fleet as Prometheus text exposition: every
    /// serving metric once per tenant under a `tenant="<name>"` label
    /// (samples grouped under one `# HELP`/`# TYPE` header per metric),
    /// plus the shared plan cache's counters once, unlabeled. No network
    /// dependency — print it, write it to a file, or serve it from any
    /// HTTP handler.
    pub fn render_prometheus(&self) -> String {
        let mut w = epim_obs::PromWriter::new();
        for index in 0..self.names.len() {
            let id = TenantId {
                fleet: self.fleet,
                index,
            };
            let stats = self.tenant_stats(id).expect("own tenant id is valid");
            stats.write_prometheus(&mut w, &[("tenant", self.names[index].as_str())]);
        }
        crate::stats::write_cache_prometheus(&mut w, &self.cache.stats());
        // Worker restarts are a fleet-level resource (the worker pool is
        // shared), so the counter is written once, unlabeled.
        crate::stats::write_supervision_prometheus(&mut w, self.fleet_stats().worker_restarts);
        w.render()
    }
}

/// A cheap borrowing handle binding a [`MultiEngine`] to one tenant id,
/// so call sites read like the single-tenant engines'.
#[derive(Clone, Copy)]
pub struct TenantHandle<'a> {
    engine: &'a MultiEngine,
    id: TenantId,
}

impl<'a> TenantHandle<'a> {
    /// The id this handle carries.
    pub fn id(self) -> TenantId {
        self.id
    }

    /// The tenant's registered name.
    pub fn name(self) -> &'a str {
        &self.engine.tenant_names()[self.id.index]
    }

    /// See [`MultiEngine::infer`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiEngine::infer`].
    pub fn infer(self, req: impl Into<InferRequest>) -> Result<Inference, RuntimeError> {
        self.engine.infer(self.id, req)
    }

    /// See [`MultiEngine::try_infer`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiEngine::try_infer`].
    pub fn try_infer(self, req: impl Into<InferRequest>) -> Result<Pending, RuntimeError> {
        self.engine.try_infer(self.id, req)
    }

    /// See [`MultiEngine::infer_many`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiEngine::infer_many`].
    #[allow(clippy::type_complexity)]
    pub fn infer_many(
        self,
        inputs: Vec<Tensor>,
    ) -> Result<Vec<Result<Inference, RuntimeError>>, RuntimeError> {
        self.engine.infer_many(self.id, inputs)
    }

    /// See [`MultiEngine::tenant_stats`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiEngine::tenant_stats`].
    pub fn stats(self) -> Result<RuntimeStats, RuntimeError> {
        self.engine.tenant_stats(self.id)
    }
}

/// The per-tenant [`InferService`]: a handle is only constructed through
/// [`MultiEngine::tenant`], which validates the id, so the trait's
/// infallible `stats` cannot actually fail.
impl InferService for TenantHandle<'_> {
    fn try_infer(&self, req: InferRequest) -> Result<Pending, RuntimeError> {
        TenantHandle::try_infer(*self, req)
    }

    fn stats(&self) -> RuntimeStats {
        TenantHandle::stats(*self).expect("handle ids are validated at construction")
    }
}
