//! The compiled-plan cache.
//!
//! `DataPath` construction has two parts: compiling the IFAT/IFRT/OFAT
//! tables and per-round word-line lists (a function of the
//! [`EpitomeSpec`] alone), and programming the crossbar matrix (a function
//! of the epitome's tensor values and the [`AnalogModel`]). The seed redid
//! both on every `DataPath::new`. [`PlanCache`] memoizes the first part —
//! one [`CompiledPlan`] per spec, shared behind an [`Arc`] — so rebuilding
//! an engine, serving the same layer shape in several networks, or
//! re-programming a layer with new weights/noise only pays for the matrix.
//!
//! The cache key is the spec itself (serialized: the vendored `serde`
//! stand-in has no `Hash` derive, and the canonical JSON doubles as a
//! stable, collision-free identity for `(conv, epitome shape, sampling
//! plan)`). The analog model is deliberately *not* part of the key: it
//! never influences the tables, and keying on it would only manufacture
//! misses — it parameterizes `DataPath::with_plan` instead.

use crate::RuntimeError;
use epim_core::{Epitome, EpitomeSpec};
use epim_models::network::Network;
use epim_pim::datapath::{AnalogModel, CompiledPlan, DataPath};
use epim_tensor::ops::Conv2dCfg;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hit/miss counters and current size of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// A thread-safe memo table `EpitomeSpec -> Arc<CompiledPlan>`.
///
/// `PlanCache` is a cheaply cloneable *handle*: clones share one
/// underlying table (and its hit/miss counters), which is how engines keep
/// a view of the cache they were built from and surface its counters in
/// their `RuntimeStats`.
///
/// # Example
///
/// ```
/// use epim_core::{ConvShape, EpitomeShape, EpitomeSpec};
/// use epim_runtime::PlanCache;
///
/// let cache = PlanCache::new();
/// let spec = EpitomeSpec::new(ConvShape::new(8, 4, 3, 3), EpitomeShape::new(4, 4, 2, 2))?;
/// let a = cache.get_or_compile(&spec)?;
/// let b = cache.clone().get_or_compile(&spec)?; // clones share the table
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    plans: HashMap<String, Arc<CompiledPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the compiled plan for `spec`, compiling and caching it on
    /// first sight.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Pim`] if plan compilation fails (the spec's
    /// sampling plan does not verify).
    pub fn get_or_compile(&self, spec: &EpitomeSpec) -> Result<Arc<CompiledPlan>, RuntimeError> {
        let key = serde_json::to_string(spec)
            .map_err(|e| RuntimeError::config(format!("unserializable spec key: {e}")))?;
        // Fast path under the lock; compilation happens outside it so a
        // slow compile doesn't serialize unrelated lookups.
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            if let Some(plan) = inner.plans.get(&key) {
                let plan = plan.clone();
                inner.hits += 1;
                return Ok(plan);
            }
        }
        let compiled = Arc::new(CompiledPlan::compile(spec)?);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        // A racing thread may have compiled the same spec; keep the first.
        let plan = inner.plans.entry(key).or_insert_with(|| compiled).clone();
        inner.misses += 1;
        Ok(plan)
    }

    /// Builds a [`DataPath`] for `epitome`, reusing the cached plan for its
    /// spec — the cache-aware replacement for `DataPath::with_analog`.
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation and data-path construction errors.
    pub fn datapath(
        &self,
        epitome: &Epitome,
        conv_cfg: Conv2dCfg,
        wrapping_enabled: bool,
        analog: AnalogModel,
    ) -> Result<DataPath, RuntimeError> {
        let plan = self.get_or_compile(epitome.spec())?;
        Ok(DataPath::with_plan(
            plan,
            epitome,
            conv_cfg,
            wrapping_enabled,
            analog,
        )?)
    }

    /// Compiles (or re-uses) the plan of every epitome choice in `network`,
    /// returning one `(layer index, plan)` pair per epitome layer. Layers
    /// sharing a spec share one plan allocation.
    ///
    /// # Errors
    ///
    /// Propagates the first compilation failure.
    pub fn warm_network(
        &self,
        network: &Network,
    ) -> Result<Vec<(usize, Arc<CompiledPlan>)>, RuntimeError> {
        network
            .epitome_specs()
            .map(|(i, spec)| Ok((i, self.get_or_compile(spec)?)))
            .collect()
    }

    /// Current hit/miss counters and entry count.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.plans.len(),
        }
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("plan cache poisoned")
            .plans
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, EpitomeShape};

    fn spec(cout_e: usize) -> EpitomeSpec {
        EpitomeSpec::new(
            ConvShape::new(8, 4, 3, 3),
            EpitomeShape::new(cout_e, 4, 2, 2),
        )
        .unwrap()
    }

    #[test]
    fn caches_by_spec_identity() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&spec(4)).unwrap();
        let b = cache.get_or_compile(&spec(4)).unwrap();
        let c = cache.get_or_compile(&spec(8)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = PlanCache::new();
        cache.get_or_compile(&spec(4)).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
        // Recompiling after clear is a miss again.
        cache.get_or_compile(&spec(4)).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }
}
