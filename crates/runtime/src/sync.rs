//! Poison-recovering lock primitives for the scheduler's shared state.
//!
//! A panicking lock holder poisons a `std::sync::Mutex`; before this
//! module every scheduler lock site said `.lock().expect("… poisoned")`,
//! so one injected (or real) panic inside a critical section cascaded:
//! the next thread touching the same lock panicked too, and a recoverable
//! single-batch failure became a fleet outage. All of the scheduler's
//! critical sections leave their data structurally valid at every await
//! of a panic (counters may undercount the moment of the crash, queues
//! and slots are always consistent), so the right response to poison is
//! to *take the data and keep serving* — the panicking thread itself is
//! handled by worker supervision, and its batch by the delivery guard.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that survives lock poisoning.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that survives lock poisoning.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7, "data survives the poison");
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn condvar_waits_survive_poisoning() {
        let m = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let m2 = Arc::clone(&m);
            let _ = std::thread::spawn(move || {
                let _guard = m2.0.lock().unwrap();
                panic!("poison it");
            })
            .join();
        }
        let waiter = {
            let m2 = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut guard = lock_recover(&m2.0);
                while !*guard {
                    guard = wait_recover(&m2.1, guard);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        *lock_recover(&m.0) = true;
        m.1.notify_all();
        waiter.join().unwrap();

        let guard = lock_recover(&m.0);
        let (guard, timed_out) = wait_timeout_recover(&m.1, guard, Duration::from_millis(1));
        assert!(timed_out.timed_out());
        assert!(*guard);
    }
}
