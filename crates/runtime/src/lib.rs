//! # epim-runtime
//!
//! A batched inference **serving engine** for epitome layers running on
//! the functional PIM data path — the first step from "simulator you call
//! in a loop" toward the production serving system the roadmap aims at.
//!
//! Layered bottom-up:
//!
//! 1. **Persistent worker pool** (lives in `epim-parallel`): every
//!    fork-join region in the workspace now dispatches onto
//!    `num_threads() - 1` parked workers instead of spawning scoped
//!    threads per call. `EPIM_THREADS` pins the width.
//! 2. **Scheduler core** (shared by both engines): a **bounded** MPSC
//!    submission queue with configurable [`FlowControl`]
//!    ([`FlowControl::Block`] backpressure or [`FlowControl::Shed`] with a
//!    timeout, plus non-blocking `try_infer`), shape-grouped coalescing
//!    bounded by [`EngineConfig::max_batch`] / [`EngineConfig::batch_window`],
//!    and [`EngineConfig::workers`] pipelined group executors.
//! 3. **Single-layer engine** ([`Engine`]): concurrent [`Engine::infer`]
//!    calls coalesce into `DataPath::execute_batch` calls, which build the
//!    im2col-style receptive-field matrix once per pixel tile and amortize
//!    per-round table walks and DAC/ADC sweeps across the whole batch.
//!    Batched execution is **bit-identical** to per-request execution, so
//!    batching is purely a throughput decision.
//! 4. **Network serving** ([`NetworkEngine`]): `Network::lower()` compiles
//!    a whole epitome-compressed network into an executable program;
//!    [`NetworkPlan`] binds weights, resolves every epitome stage through
//!    the plan cache and pre-allocates activation buffers; the engine
//!    serves the pipeline behind one queue, bit-identically to sequential
//!    per-stage reference execution.
//! 5. **Multi-network tenancy** ([`MultiEngine`]): a fleet of compiled
//!    plans registered as tenants behind one scheduler — per-tenant
//!    bounded queues, [`FlowControl`] and [`RuntimeStats`], weighted-fair
//!    starvation-free draining ([`TenantConfig::weight`]), one shared
//!    [`PlanCache`] and worker pool. Every tenant's outputs and stats are
//!    bit-identical to a dedicated [`NetworkEngine`].
//! 6. **Compiled-plan cache** ([`PlanCache`]): the IFAT/IFRT/OFAT tables
//!    and per-round word-line lists depend only on the `EpitomeSpec`, so
//!    they are compiled once and shared across engines, networks and
//!    re-programmed weights ([`PlanCache::warm_network`] precompiles every
//!    epitome choice of an `epim_models::Network`).
//! 7. **Unified submission surface** ([`InferService`]): [`Engine`],
//!    [`NetworkEngine`] and [`TenantHandle`] all accept the same typed
//!    [`InferRequest`] and return a [`Pending`] that supports blocking
//!    [`Pending::wait`], bounded [`Pending::wait_timeout`] and
//!    `await` (it implements [`std::future::Future`]), so servers —
//!    notably the `epim-serve` TCP front-end — and tests are generic
//!    over engines.
//!
//! Serving health is observable through [`RuntimeStats`]: per-tenant
//! queue-wait / service / end-to-end latency histograms (log-linear, exact
//! merge — see `epim-obs`), per-stage time rollups ([`StageRollup`]), the
//! batch-size histogram, queue depth with its high-water mark, shed
//! counters, the plan cache's hit/miss counters, and a rollup of the data
//! path's hardware counters — renderable as Prometheus text exposition
//! ([`RuntimeStats::render_prometheus`],
//! [`MultiEngine::render_prometheus`]). The scheduler and every network
//! plan stage are additionally span-traced into `epim-obs`'s process-wide
//! ring when tracing is enabled (`EPIM_TRACE=1` or
//! `epim_obs::set_enabled(true)`), exportable as chrome://tracing JSON.
//!
//! ## Example
//!
//! ```
//! use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
//! use epim_pim::datapath::AnalogModel;
//! use epim_runtime::{Engine, EngineConfig, PlanCache};
//! use epim_tensor::ops::Conv2dCfg;
//! use epim_tensor::{init, rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = EpitomeSpec::new(ConvShape::new(8, 4, 3, 3), EpitomeShape::new(4, 4, 2, 2))?;
//! let mut r = rng::seeded(1);
//! let epi = Epitome::from_tensor(spec, init::uniform(&[4, 4, 2, 2], -1.0, 1.0, &mut r))?;
//!
//! let cache = PlanCache::new();
//! let cfg = Conv2dCfg { stride: 1, padding: 1 };
//! let engine = Engine::with_cache(
//!     &cache, &epi, cfg, true, AnalogModel::ideal(), EngineConfig::default())?;
//!
//! let x = init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r);
//! let inference = engine.infer(x)?;
//! assert_eq!(inference.output.shape(), &[1, 8, 8, 8]);
//! assert_eq!(engine.stats().requests, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cache;
mod engine;
mod error;
mod network;
mod scheduler;
mod service;
mod stats;
mod sync;
mod tenancy;

pub use cache::{PlanCache, PlanCacheStats};
pub use engine::Engine;
pub use error::RuntimeError;
pub use network::{NetworkEngine, NetworkPlan};
pub use scheduler::{
    EngineConfig, FlowControl, Inference, Pending, TenantConfig, DEFAULT_RESTART_BUDGET,
};
pub use service::{InferRequest, InferService, CLIENT_NONE};
pub use stats::{RuntimeStats, StageRollup};
pub use tenancy::{MultiEngine, MultiEngineBuilder, TenantHandle, TenantId};
