use std::error::Error;
use std::fmt;
use std::sync::Arc;

use epim_pim::PimError;

/// Error type for the serving runtime and its network front-end.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A runtime configuration value was invalid (zero batch size).
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// The request's batch execution panicked; the engine survives and the
    /// request is reported failed rather than left hanging.
    ExecutionPanicked,
    /// The bounded submission queue was full and the flow-control policy
    /// shed the request instead of blocking. Queues (and therefore
    /// overloads) are per-tenant: only the named tenant's traffic was
    /// affected.
    Overloaded {
        /// The overloaded tenant's name (`None` for the anonymous
        /// single-tenant engines).
        tenant: Option<String>,
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// A request referenced a tenant index that is not registered with the
    /// engine (e.g. a `TenantId` from a different engine).
    UnknownTenant {
        /// The unregistered tenant index.
        id: usize,
    },
    /// A bounded wait on a [`crate::Pending`] expired before the request
    /// completed. The request is still in flight: waiting again (or
    /// polling the `Pending` as a future) can still deliver its result.
    Timeout,
    /// The request's own deadline ([`crate::InferRequest::deadline`])
    /// passed before execution started. Unlike [`RuntimeError::Timeout`]
    /// this is terminal: the scheduler shed the request instead of
    /// spending a batch slot on an answer nobody is waiting for.
    DeadlineExceeded,
    /// Scheduler workers crashed more times than the restart budget
    /// allows; the fleet shut itself down rather than limp on with a
    /// panic loop. Every queued request is failed with this error.
    CrashLoop {
        /// Worker restarts performed before giving up.
        restarts: u32,
    },
    /// An I/O failure on the serving transport (socket read/write, bind,
    /// accept). Wrapped in an [`Arc`] so the error type stays cheaply
    /// cloneable across per-request delivery slots.
    Io(Arc<std::io::Error>),
    /// The peer violated the wire protocol (bad magic, unsupported
    /// version, malformed or oversized frame). Protocol errors are
    /// connection-fatal: the server replies with a typed error frame and
    /// closes.
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// Error from the PIM simulation layer (plan compilation or execution).
    Pim(PimError),
}

/// Structural equality; [`RuntimeError::Io`] compares by
/// [`std::io::ErrorKind`] (the payload `std::io::Error` itself is not
/// comparable).
impl PartialEq for RuntimeError {
    fn eq(&self, other: &Self) -> bool {
        use RuntimeError::*;
        match (self, other) {
            (ShuttingDown, ShuttingDown) => true,
            (ExecutionPanicked, ExecutionPanicked) => true,
            (Timeout, Timeout) => true,
            (DeadlineExceeded, DeadlineExceeded) => true,
            (CrashLoop { restarts: a }, CrashLoop { restarts: b }) => a == b,
            (InvalidConfig { what: a }, InvalidConfig { what: b }) => a == b,
            (
                Overloaded {
                    tenant: ta,
                    capacity: ca,
                },
                Overloaded {
                    tenant: tb,
                    capacity: cb,
                },
            ) => ta == tb && ca == cb,
            (UnknownTenant { id: a }, UnknownTenant { id: b }) => a == b,
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (Protocol { reason: a }, Protocol { reason: b }) => a == b,
            (Pim(a), Pim(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for RuntimeError {}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ShuttingDown => write!(f, "engine is shutting down"),
            RuntimeError::InvalidConfig { what } => {
                write!(f, "invalid runtime configuration: {what}")
            }
            RuntimeError::ExecutionPanicked => {
                write!(f, "batch execution panicked; request not completed")
            }
            RuntimeError::Overloaded { tenant, capacity } => match tenant {
                Some(name) => write!(
                    f,
                    "request shed: tenant {name:?} submission queue full ({capacity} pending)"
                ),
                None => write!(
                    f,
                    "request shed: submission queue full ({capacity} pending)"
                ),
            },
            RuntimeError::UnknownTenant { id } => {
                write!(
                    f,
                    "unknown tenant index {id}: not registered with this engine"
                )
            }
            RuntimeError::Timeout => {
                write!(f, "timed out waiting for the inference to complete")
            }
            RuntimeError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before execution started")
            }
            RuntimeError::CrashLoop { restarts } => {
                write!(
                    f,
                    "scheduler workers crash-looped ({restarts} restarts used); fleet shut down"
                )
            }
            RuntimeError::Io(e) => write!(f, "serving i/o error: {e}"),
            RuntimeError::Protocol { reason } => {
                write!(f, "wire protocol violation: {reason}")
            }
            RuntimeError::Pim(e) => write!(f, "pim error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> Self {
        RuntimeError::Pim(e)
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(Arc::new(e))
    }
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::InvalidConfig`].
    pub fn config(what: impl Into<String>) -> Self {
        RuntimeError::InvalidConfig { what: what.into() }
    }

    /// Convenience constructor for [`RuntimeError::Protocol`].
    pub fn protocol(reason: impl Into<String>) -> Self {
        RuntimeError::Protocol {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(RuntimeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = RuntimeError::Overloaded {
            tenant: Some("resnet-a".into()),
            capacity: 4,
        };
        assert!(e.to_string().contains("resnet-a"));
        let e = RuntimeError::Overloaded {
            tenant: None,
            capacity: 4,
        };
        assert!(e.to_string().contains("queue full"));
        assert!(RuntimeError::UnknownTenant { id: 7 }
            .to_string()
            .contains('7'));
        let e = RuntimeError::config("bad");
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: RuntimeError = PimError::config("x").into();
        assert!(e.source().is_some());
    }

    #[test]
    fn io_and_protocol_variants() {
        let e: RuntimeError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer gone").into();
        assert!(e.to_string().contains("peer gone"));
        assert!(e.source().is_some(), "Io exposes the underlying error");
        // Io equality is by kind: the payload error is not comparable.
        let same_kind: RuntimeError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "other text").into();
        let other_kind: RuntimeError =
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone").into();
        assert_eq!(e, same_kind);
        assert_ne!(e, other_kind);

        let p = RuntimeError::protocol("bad magic");
        assert!(p.to_string().contains("bad magic"));
        assert_eq!(p, RuntimeError::protocol("bad magic"));
        assert_ne!(p, RuntimeError::protocol("bad version"));
        assert!(RuntimeError::Timeout.to_string().contains("timed out"));
        assert_eq!(RuntimeError::Timeout, RuntimeError::Timeout);
        assert_ne!(RuntimeError::Timeout, RuntimeError::ShuttingDown);
    }

    #[test]
    fn deadline_and_crash_loop_variants() {
        let d = RuntimeError::DeadlineExceeded;
        assert!(d.to_string().contains("deadline"));
        assert_eq!(d, RuntimeError::DeadlineExceeded);
        assert_ne!(
            d,
            RuntimeError::Timeout,
            "deadline expiry is terminal, a wait timeout is not"
        );

        let c = RuntimeError::CrashLoop { restarts: 8 };
        assert!(c.to_string().contains("8 restarts"));
        assert_eq!(c, RuntimeError::CrashLoop { restarts: 8 });
        assert_ne!(c, RuntimeError::CrashLoop { restarts: 7 });
        assert!(c.source().is_none());
    }
}
