use std::error::Error;
use std::fmt;

use epim_pim::PimError;

/// Error type for the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A runtime configuration value was invalid (zero batch size).
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// The request's batch execution panicked; the engine survives and the
    /// request is reported failed rather than left hanging.
    ExecutionPanicked,
    /// The bounded submission queue was full and the flow-control policy
    /// shed the request instead of blocking. Queues (and therefore
    /// overloads) are per-tenant: only the named tenant's traffic was
    /// affected.
    Overloaded {
        /// The overloaded tenant's name (`None` for the anonymous
        /// single-tenant engines).
        tenant: Option<String>,
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// A request referenced a tenant index that is not registered with the
    /// engine (e.g. a `TenantId` from a different engine).
    UnknownTenant {
        /// The unregistered tenant index.
        id: usize,
    },
    /// Error from the PIM simulation layer (plan compilation or execution).
    Pim(PimError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ShuttingDown => write!(f, "engine is shutting down"),
            RuntimeError::InvalidConfig { what } => {
                write!(f, "invalid runtime configuration: {what}")
            }
            RuntimeError::ExecutionPanicked => {
                write!(f, "batch execution panicked; request not completed")
            }
            RuntimeError::Overloaded { tenant, capacity } => match tenant {
                Some(name) => write!(
                    f,
                    "request shed: tenant {name:?} submission queue full ({capacity} pending)"
                ),
                None => write!(
                    f,
                    "request shed: submission queue full ({capacity} pending)"
                ),
            },
            RuntimeError::UnknownTenant { id } => {
                write!(
                    f,
                    "unknown tenant index {id}: not registered with this engine"
                )
            }
            RuntimeError::Pim(e) => write!(f, "pim error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> Self {
        RuntimeError::Pim(e)
    }
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::InvalidConfig`].
    pub fn config(what: impl Into<String>) -> Self {
        RuntimeError::InvalidConfig { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(RuntimeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = RuntimeError::Overloaded {
            tenant: Some("resnet-a".into()),
            capacity: 4,
        };
        assert!(e.to_string().contains("resnet-a"));
        let e = RuntimeError::Overloaded {
            tenant: None,
            capacity: 4,
        };
        assert!(e.to_string().contains("queue full"));
        assert!(RuntimeError::UnknownTenant { id: 7 }
            .to_string()
            .contains('7'));
        let e = RuntimeError::config("bad");
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: RuntimeError = PimError::config("x").into();
        assert!(e.source().is_some());
    }
}
