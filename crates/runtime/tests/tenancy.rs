//! Integration tests for multi-network tenancy: a fleet of compiled
//! plans behind one weighted-fair scheduler must serve every tenant
//! **bit-identically** to a dedicated single-tenant `NetworkEngine`
//! (outputs and `DataPathStats` rollups), drain fairly (a heavy tenant
//! cannot starve a light one), isolate flow control per tenant (one
//! tenant shedding never drops a blocking tenant's requests), and share
//! compiled plans across tenants with equal `EpitomeSpec`s.

use epim_models::lower::NetworkWeights;
use epim_models::network::Network;
use epim_models::zoo;
use epim_pim::datapath::AnalogModel;
use epim_runtime::{
    EngineConfig, FlowControl, MultiEngine, NetworkEngine, PlanCache, RuntimeError, TenantConfig,
};
use epim_tensor::{init, rng, Tensor};
use std::time::Duration;

fn requests(n: usize, seed: u64) -> Vec<Tensor> {
    let mut r = rng::seeded(seed);
    (0..n)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect()
}

/// The acceptance-criterion invariant: serving two tenants through one
/// `MultiEngine` produces, for each tenant, exactly the outputs and
/// `DataPathStats` rollup of running that tenant alone on a dedicated
/// `NetworkEngine` (itself verified against sequential reference
/// execution). Runs serially and, via the CI matrix, with
/// `EPIM_THREADS=4`.
#[test]
fn two_tenant_serving_is_bit_identical_to_dedicated_engines() {
    let (net_a, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let (net_b, _) = zoo::tiny_epitome_network(8, 8, 12).unwrap();
    let weights_a = NetworkWeights::random(&net_a, 11).unwrap();
    let weights_b = NetworkWeights::random(&net_b, 22).unwrap();
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let reqs_a = requests(6, 101);
    let reqs_b = requests(6, 202);

    // Dedicated single-tenant runs: the ground truth for each tenant.
    let dedicated = |net: &Network, weights: &NetworkWeights, reqs: &[Tensor]| {
        let cache = PlanCache::new();
        let engine = NetworkEngine::new(
            &cache,
            net,
            weights,
            (16, 16),
            true,
            analog,
            EngineConfig {
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let outs: Vec<Tensor> = engine
            .infer_many(reqs.to_vec())
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().output)
            .collect();
        (outs, engine.stats())
    };
    let (want_a, dedicated_a) = dedicated(&net_a, &weights_a, &reqs_a);
    let (want_b, dedicated_b) = dedicated(&net_b, &weights_b, &reqs_b);

    // The shared engine, with concurrent traffic on both tenants.
    let cache = PlanCache::new();
    let mut builder = MultiEngine::builder(&cache).workers(2);
    let tenant_cfg = TenantConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(5),
        ..TenantConfig::default()
    };
    let id_a = builder
        .register("a", &net_a, &weights_a, (16, 16), true, analog, tenant_cfg)
        .unwrap();
    let id_b = builder
        .register(
            "b",
            &net_b,
            &weights_b,
            (16, 16),
            true,
            analog,
            tenant_cfg.with_weight(3),
        )
        .unwrap();
    let engine = builder.build().unwrap();

    let (got_a, got_b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| engine.infer_many(id_a, reqs_a.clone()).unwrap());
        let hb = scope.spawn(|| engine.infer_many(id_b, reqs_b.clone()).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    for (i, (res, want)) in got_a.iter().zip(&want_a).enumerate() {
        assert_eq!(
            res.as_ref().unwrap().output,
            *want,
            "tenant a request {i} diverged"
        );
    }
    for (i, (res, want)) in got_b.iter().zip(&want_b).enumerate() {
        assert_eq!(
            res.as_ref().unwrap().output,
            *want,
            "tenant b request {i} diverged"
        );
    }

    // Per-tenant stats rollups equal the dedicated engines' rollups.
    let stats_a = engine.tenant_stats(id_a).unwrap();
    let stats_b = engine.tenant_stats(id_b).unwrap();
    assert_eq!(stats_a.requests, dedicated_a.requests);
    assert_eq!(stats_b.requests, dedicated_b.requests);
    assert_eq!(
        stats_a.datapath, dedicated_a.datapath,
        "tenant a stats rollup diverged"
    );
    assert_eq!(
        stats_b.datapath, dedicated_b.datapath,
        "tenant b stats rollup diverged"
    );

    // The fleet rollup is the per-tenant sum.
    let fleet = engine.fleet_stats();
    assert_eq!(fleet.requests, stats_a.requests + stats_b.requests);
    let mut want_dp = stats_a.datapath;
    want_dp.accumulate(&stats_b.datapath);
    assert_eq!(fleet.datapath, want_dp);
    assert_eq!(fleet.queue_depth, 0);

    // Handles carry the ids and reach the same tenants.
    let handle = engine.tenant(id_a).unwrap();
    assert_eq!(handle.name(), "a");
    assert_eq!(handle.stats().unwrap().requests, stats_a.requests);
    assert_eq!(engine.tenant_id("b"), Some(id_b));
}

/// Starvation-freedom: with a heavy tenant's backlog queued ahead, a
/// light tenant with nonzero weight still gets served long before the
/// heavy backlog drains.
#[test]
fn light_tenant_is_not_starved_by_heavy_backlog() {
    const HEAVY_BACKLOG: usize = 300;
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 33).unwrap();
    let cache = PlanCache::new();
    let mut builder = MultiEngine::builder(&cache);
    let heavy = builder
        .register(
            "heavy",
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig {
                max_batch: 4,
                batch_window: Duration::ZERO,
                queue_capacity: 512,
                flow: FlowControl::Block,
                weight: 4,
            },
        )
        .unwrap();
    // The light tenant shares the same compiled plan via the cache but
    // has its own queue and stats.
    let light = builder
        .register(
            "light",
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig {
                max_batch: 4,
                batch_window: Duration::ZERO,
                queue_capacity: 16,
                flow: FlowControl::Block,
                weight: 1,
            },
        )
        .unwrap();
    let engine = builder.build().unwrap();

    // Queue the heavy backlog without waiting on it (Pending handles),
    // then submit one light request from this thread.
    let mut r = rng::seeded(44);
    let pendings: Vec<_> = (0..HEAVY_BACKLOG)
        .map(|_| {
            let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
            engine
                .try_infer(heavy, x)
                .expect("heavy queue has capacity")
        })
        .collect();
    let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
    engine.infer(light, x).expect("light tenant must be served");

    // Fair draining: the light request completed while the heavy
    // backlog was still being worked through.
    let heavy_done = engine.tenant_stats(heavy).unwrap().requests;
    assert!(
        heavy_done < HEAVY_BACKLOG as u64,
        "light tenant waited out the whole heavy backlog ({heavy_done} done)"
    );

    // Nothing is lost: the heavy backlog fully drains afterwards.
    for p in pendings {
        p.wait().expect("heavy requests all complete");
    }
    let heavy_stats = engine.tenant_stats(heavy).unwrap();
    assert_eq!(heavy_stats.requests, HEAVY_BACKLOG as u64);
    assert_eq!(heavy_stats.shed, 0);
}

/// Flow-control isolation: a tenant under `Shed` pressure rejects its own
/// overflow, while a `Block` tenant's requests are all served — shedding
/// on one tenant never drops (or sheds) another tenant's traffic.
#[test]
fn shed_tenant_never_drops_block_tenant_requests() {
    const BLOCK_REQUESTS: usize = 12;
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 55).unwrap();
    let cache = PlanCache::new();
    let mut builder = MultiEngine::builder(&cache);
    let shedding = builder
        .register(
            "shedding",
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig {
                max_batch: 2,
                // A long window parks requests in the tiny queue so the
                // flood reliably overflows it.
                batch_window: Duration::from_millis(50),
                queue_capacity: 2,
                flow: FlowControl::Shed {
                    timeout: Duration::ZERO,
                },
                weight: 1,
            },
        )
        .unwrap();
    let blocking = builder
        .register(
            "blocking",
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig {
                max_batch: 2,
                batch_window: Duration::ZERO,
                queue_capacity: 4,
                flow: FlowControl::Block,
                weight: 1,
            },
        )
        .unwrap();
    let engine = builder.build().unwrap();

    std::thread::scope(|scope| {
        // Block-tenant clients: every request must complete.
        let blockers: Vec<_> = (0..3)
            .map(|c| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut r = rng::seeded(70 + c as u64);
                    for _ in 0..BLOCK_REQUESTS / 3 {
                        let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
                        engine.infer(blocking, x).expect("Block tenant never sheds");
                    }
                })
            })
            .collect();
        // Shed-tenant flood: overflow is rejected with the tenant's name.
        let mut r = rng::seeded(80);
        let mut pending = Vec::new();
        let mut shed_seen = 0usize;
        for _ in 0..32 {
            let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
            match engine.try_infer(shedding, x) {
                Ok(p) => pending.push(p),
                Err(RuntimeError::Overloaded { tenant, capacity }) => {
                    assert_eq!(tenant.as_deref(), Some("shedding"));
                    assert_eq!(capacity, 2);
                    shed_seen += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed_seen > 0, "the flood must overflow the tiny queue");
        for p in pending {
            let _ = p.wait();
        }
        for h in blockers {
            h.join().unwrap();
        }
    });

    let block_stats = engine.tenant_stats(blocking).unwrap();
    assert_eq!(block_stats.requests, BLOCK_REQUESTS as u64);
    assert_eq!(block_stats.shed, 0, "Block tenant must never shed");
    let shed_stats = engine.tenant_stats(shedding).unwrap();
    assert!(
        shed_stats.shed > 0,
        "shed counter records the tenant's own rejections"
    );
    // The fleet rollup attributes the sheds without inflating requests.
    let fleet = engine.fleet_stats();
    assert_eq!(fleet.shed, shed_stats.shed);
    assert_eq!(fleet.requests, block_stats.requests + shed_stats.requests);
}

/// Cross-tenant plan sharing: two tenants whose networks use the same
/// `EpitomeSpec` compile exactly one plan through the shared cache.
#[test]
fn equal_spec_tenants_compile_one_plan() {
    // Same inner width (= same spec), different classifier widths
    // (= distinct networks and weights).
    let (net_a, spec_a) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let (net_b, spec_b) = zoo::tiny_epitome_network(8, 4, 16).unwrap();
    assert_eq!(spec_a, spec_b);
    let weights_a = NetworkWeights::random(&net_a, 1).unwrap();
    let weights_b = NetworkWeights::random(&net_b, 2).unwrap();

    let cache = PlanCache::new();
    let mut builder = MultiEngine::builder(&cache);
    let a = builder
        .register(
            "a",
            &net_a,
            &weights_a,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig::default(),
        )
        .unwrap();
    let b = builder
        .register(
            "b",
            &net_b,
            &weights_b,
            (16, 16),
            true,
            AnalogModel::ideal(),
            TenantConfig::default(),
        )
        .unwrap();
    let engine = builder.build().unwrap();

    // One compile total: tenant a's two epitome layers share the spec,
    // and tenant b's two layers hit the cached plan again.
    let stats = engine.fleet_stats();
    assert_eq!(
        stats.plan_cache.misses, 1,
        "identical specs must compile once"
    );
    assert_eq!(stats.plan_cache.entries, 1);
    assert!(stats.plan_cache.hits >= 3);
    assert_eq!(engine.tenant_stats(a).unwrap().plan_cache, stats.plan_cache);

    // Both tenants actually serve through the shared plan.
    let mut r = rng::seeded(5);
    let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
    assert_eq!(engine.infer(a, x.clone()).unwrap().output.shape(), &[1, 10]);
    assert_eq!(engine.infer(b, x).unwrap().output.shape(), &[1, 16]);
}

/// Registration and submission reject bad input with typed errors:
/// foreign tenant ids, duplicate or empty names, zero weights, empty
/// fleets.
#[test]
fn tenancy_misuse_yields_typed_errors() {
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 9).unwrap();
    let cache = PlanCache::new();

    // An empty fleet refuses to build.
    assert!(matches!(
        MultiEngine::builder(&cache).build(),
        Err(RuntimeError::InvalidConfig { .. })
    ));

    let register =
        |builder: &mut epim_runtime::MultiEngineBuilder, name: &str, config: TenantConfig| {
            builder.register(
                name,
                &net,
                &weights,
                (16, 16),
                true,
                AnalogModel::ideal(),
                config,
            )
        };

    let mut builder = MultiEngine::builder(&cache);
    let id_a = register(&mut builder, "a", TenantConfig::default()).unwrap();
    let id_b = register(&mut builder, "b", TenantConfig::default()).unwrap();
    assert_ne!(id_a, id_b);
    // Duplicate and empty names, and zero knobs, are rejected.
    assert!(matches!(
        register(&mut builder, "a", TenantConfig::default()),
        Err(RuntimeError::InvalidConfig { .. })
    ));
    assert!(matches!(
        register(&mut builder, "", TenantConfig::default()),
        Err(RuntimeError::InvalidConfig { .. })
    ));
    assert!(matches!(
        register(&mut builder, "w0", TenantConfig::default().with_weight(0)),
        Err(RuntimeError::InvalidConfig { .. })
    ));
    assert!(matches!(
        register(
            &mut builder,
            "q0",
            TenantConfig {
                queue_capacity: 0,
                ..TenantConfig::default()
            }
        ),
        Err(RuntimeError::InvalidConfig { .. })
    ));
    let two_tenants = builder.build().unwrap();

    // A one-tenant engine rejects the two-tenant engine's second id.
    let mut builder = MultiEngine::builder(&cache);
    register(&mut builder, "solo", TenantConfig::default()).unwrap();
    let solo = builder.build().unwrap();
    let mut r = rng::seeded(10);
    let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
    assert!(matches!(
        solo.infer(id_b, x.clone()),
        Err(RuntimeError::UnknownTenant { id: 1 })
    ));
    // Even an id whose *index* exists here is foreign: it must error, not
    // silently route to whichever tenant shares the index.
    assert!(matches!(
        solo.infer(id_a, x.clone()),
        Err(RuntimeError::UnknownTenant { id: 0 })
    ));
    assert!(matches!(
        solo.tenant(id_b),
        Err(RuntimeError::UnknownTenant { .. })
    ));
    assert!(matches!(
        solo.tenant_stats(id_b),
        Err(RuntimeError::UnknownTenant { .. })
    ));
    assert!(solo.plan(id_b).is_err());
    assert_eq!(solo.tenant_id("nope"), None);

    // The ids remain valid on their own engine.
    assert!(two_tenants.infer(id_b, x).is_ok());
}
