//! Integration tests for the serving engine: batching must be invisible
//! to callers (bit-identical outputs, additive stats) under concurrency,
//! shape divergence, bursts and shutdown.

use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
use epim_pim::datapath::{AnalogModel, DataPath, DataPathStats};
use epim_runtime::{Engine, EngineConfig, PlanCache, RuntimeError};
use epim_tensor::ops::Conv2dCfg;
use epim_tensor::{init, rng, Tensor};
use std::time::Duration;

fn test_epitome(seed: u64) -> Epitome {
    let spec = EpitomeSpec::new(ConvShape::new(8, 4, 3, 3), EpitomeShape::new(4, 4, 2, 2)).unwrap();
    let mut r = rng::seeded(seed);
    let data = init::uniform(&[4, 4, 2, 2], -1.0, 1.0, &mut r);
    Epitome::from_tensor(spec, data).unwrap()
}

fn test_engine(seed: u64, config: EngineConfig) -> (Engine, DataPath) {
    let epi = test_epitome(seed);
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let dp = DataPath::with_analog(&epi, cfg, true, analog).unwrap();
    let engine = Engine::new(&epi, cfg, true, analog, config).unwrap();
    (engine, dp)
}

/// The tentpole invariant: N concurrent submissions through the
/// micro-batcher produce exactly the outputs and (rolled-up) stats of N
/// sequential `DataPath::execute` calls, regardless of how the batcher
/// happened to group them.
#[test]
fn concurrent_submissions_match_sequential_execute() {
    let (engine, dp) = test_engine(
        1,
        EngineConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(5),
            ..EngineConfig::default()
        },
    );
    let mut r = rng::seeded(2);
    const N: usize = 24;
    let inputs: Vec<Tensor> = (0..N)
        .map(|_| init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r))
        .collect();

    // Sequential ground truth.
    let mut want_stats = DataPathStats::default();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| {
            let (out, s) = dp.execute(x).unwrap();
            want_stats.accumulate(&s);
            out
        })
        .collect();

    // Concurrent serving.
    let got: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|x| {
                let engine = &engine;
                scope.spawn(move || engine.infer(x.clone()).unwrap().output)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "batched serving changed an output");
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, N as u64);
    assert_eq!(
        stats.datapath, want_stats,
        "stats rollup diverged from sequential execution"
    );
    assert!(stats.batches <= N as u64);
    let histogram_total: u64 = stats
        .batch_histogram
        .iter()
        .enumerate()
        .map(|(i, &count)| (i as u64 + 1) * count)
        .sum();
    assert_eq!(histogram_total, N as u64);
}

/// A single-threaded burst through `infer_many` coalesces deterministically
/// into `max_batch`-sized groups and matches sequential execution.
#[test]
fn burst_coalesces_into_full_batches() {
    let (engine, dp) = test_engine(
        3,
        EngineConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(50),
            ..EngineConfig::default()
        },
    );
    let mut r = rng::seeded(4);
    let inputs: Vec<Tensor> = (0..16)
        .map(|_| init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r))
        .collect();
    let results = engine.infer_many(inputs.clone()).unwrap();
    for (x, res) in inputs.iter().zip(&results) {
        let inference = res.as_ref().unwrap();
        let (want, _) = dp.execute(x).unwrap();
        assert_eq!(inference.output, want);
        assert_eq!(inference.batch_size, 8, "burst should fill max_batch");
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, 16);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.batch_histogram.get(7), Some(&2));
    assert!((stats.mean_batch_size() - 8.0).abs() < 1e-12);
    assert!(stats.p99_latency_us >= stats.p50_latency_us);
}

/// Mixed shapes in one burst: the batcher groups by shape (the
/// per-request fallback when shapes diverge) and every result is still
/// bit-identical to per-request execution.
#[test]
fn diverging_shapes_group_separately() {
    let (engine, dp) = test_engine(
        5,
        EngineConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(20),
            ..EngineConfig::default()
        },
    );
    let mut r = rng::seeded(6);
    let inputs: Vec<Tensor> = (0..12)
        .map(|i| {
            let hw = 5 + (i % 3); // three distinct shapes interleaved
            init::uniform(&[1, 4, hw, hw], -1.0, 1.0, &mut r)
        })
        .collect();
    let results = engine.infer_many(inputs.clone()).unwrap();
    for (x, res) in inputs.iter().zip(&results) {
        let inference = res.as_ref().unwrap();
        let (want, _) = dp.execute(x).unwrap();
        assert_eq!(inference.output, want);
        // A shape group can only coalesce its own four requests.
        assert!(inference.batch_size <= 4);
    }
    assert_eq!(engine.stats().requests, 12);
}

/// Invalid requests get their own error without poisoning batchmates.
#[test]
fn bad_request_fails_alone() {
    let (engine, dp) = test_engine(
        7,
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(20),
            ..EngineConfig::default()
        },
    );
    let mut r = rng::seeded(8);
    let good = init::uniform(&[1, 4, 6, 6], -1.0, 1.0, &mut r);
    let bad = Tensor::zeros(&[1, 3, 6, 6]); // wrong channel count
    let results = engine.infer_many(vec![good.clone(), bad]).unwrap();
    let (want, _) = dp.execute(&good).unwrap();
    assert_eq!(results[0].as_ref().unwrap().output, want);
    assert!(matches!(results[1], Err(RuntimeError::Pim(_))));
}

/// The plan cache is shared across engines: the second engine for the same
/// spec reuses the compiled plan.
#[test]
fn engines_share_cached_plans() {
    let cache = PlanCache::new();
    let epi = test_epitome(9);
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    let make = || {
        Engine::with_cache(
            &cache,
            &epi,
            cfg,
            true,
            AnalogModel::ideal(),
            EngineConfig::default(),
        )
        .unwrap()
    };
    let a = make();
    let b = make();
    assert!(std::sync::Arc::ptr_eq(
        a.datapath().compiled_plan(),
        b.datapath().compiled_plan()
    ));
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 1);

    // Warming a network whose choices repeat a spec hits the cache: three
    // epitome layers, one conv layer, one distinct plan allocation.
    use epim_models::network::{Network, OperatorChoice};
    use epim_models::resnet::{Backbone, LayerInfo};
    let spec = epi.spec().clone();
    let layer = |name: &str| LayerInfo {
        name: name.to_string(),
        conv: spec.conv(),
        out_h: 8,
        out_w: 8,
    };
    let backbone = Backbone {
        name: "tiny".to_string(),
        layers: vec![layer("l0"), layer("l1"), layer("l2"), layer("l3")],
    };
    let mut net = Network::baseline(backbone);
    for i in 0..3 {
        net.set_choice(i, OperatorChoice::Epitome(spec.clone()))
            .unwrap();
    }
    let plans = cache.warm_network(&net).unwrap();
    assert_eq!(plans.len(), 3);
    assert_eq!(
        plans.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    // All warmed layers share the single cached allocation — and it is the
    // same plan the engines above already compiled for this spec.
    for (_, plan) in &plans {
        assert!(std::sync::Arc::ptr_eq(plan, a.datapath().compiled_plan()));
    }
    assert_eq!(cache.stats().entries, 1);
}

/// Dropping the engine drains in-flight work and later submissions fail
/// cleanly (exercised via a second engine handle is impossible — infer
/// borrows &self — so this just checks drop doesn't hang or panic).
#[test]
fn drop_joins_batcher() {
    let (engine, _) = test_engine(
        10,
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );
    let mut r = rng::seeded(11);
    for _ in 0..3 {
        let x = init::uniform(&[1, 4, 5, 5], -1.0, 1.0, &mut r);
        engine.infer(x).unwrap();
    }
    drop(engine); // must not deadlock
}
