//! Integration test for the observability layer: the trace ring must see
//! well-nested per-stage spans whose durations sum to (at most, and most
//! of) the measured wall time, the serving engine must label scheduler
//! worker lanes, and the Prometheus / chrome-trace exporters must emit
//! well-formed documents for a real served burst.
//!
//! Tracing is process-global state, so everything runs as **one** `#[test]`
//! with sequential phases — the default test harness would otherwise
//! interleave enable/disable across threads.

use epim_models::lower::NetworkWeights;
use epim_models::zoo;
use epim_obs::{self as obs, SpanKind, TENANT_NONE};
use epim_pim::datapath::AnalogModel;
use epim_runtime::{EngineConfig, NetworkEngine, NetworkPlan, PlanCache};
use epim_tensor::{init, rng, Tensor};
use std::time::Duration;

fn burst(n: usize, seed: u64) -> Vec<Tensor> {
    let mut r = rng::seeded(seed);
    (0..n)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect()
}

#[test]
fn traced_serving_produces_nested_spans_and_valid_exports() {
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 7).unwrap();
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let cache = PlanCache::new();

    // --- Phase 1: direct plan execution on this thread. The per-stage
    // spans land on this thread's lane and their durations must sum to no
    // more than — and the bulk of — the measured wall time of the call.
    let plan = NetworkPlan::compile(&cache, &net, &weights, (16, 16), true, analog, true).unwrap();
    let inputs = burst(4, 11);
    let refs: Vec<&Tensor> = inputs.iter().collect();
    obs::set_enabled(true);
    obs::global().clear();
    let t0 = obs::now_ns();
    plan.execute_batch(&refs).unwrap();
    let t1 = obs::now_ns();
    let stages: Vec<_> = obs::global()
        .all_events()
        .into_iter()
        .filter(|e| e.kind == SpanKind::Stage && e.tenant == TENANT_NONE)
        .collect();
    assert_eq!(
        stages.len(),
        plan.program().stages().len(),
        "one stage span per executed plan stage"
    );
    for s in &stages {
        assert!(
            s.start_ns >= t0 && s.end_ns() <= t1,
            "stage span inside the call window"
        );
        let (_, images) = obs::unpack_stage_payload(s.a);
        assert_eq!(images, 4, "stage spans carry the batch size");
    }
    let span_sum: u64 = stages.iter().map(|s| s.dur_ns).sum();
    let wall = t1 - t0;
    assert!(span_sum <= wall, "stage spans cannot exceed the wall time");
    assert!(
        span_sum * 4 >= wall,
        "stage spans must cover the bulk of execution ({span_sum} of {wall} ns)"
    );

    // --- Phase 2: a served burst. Scheduler workers occupy labeled
    // lanes; every stage span nests inside a group span on its lane.
    obs::global().clear();
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog,
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::ZERO,
            workers: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for res in engine.infer_many(burst(8, 13)).unwrap() {
        res.unwrap();
    }
    obs::set_enabled(false);

    let ring = obs::global();
    let mut sched_lanes = 0usize;
    let mut nested_stages = 0usize;
    for lane in 0..ring.lanes() {
        let events = ring.events(lane);
        if events.is_empty() {
            continue;
        }
        let groups: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanKind::Group)
            .collect();
        if !groups.is_empty() {
            assert!(
                ring.label(lane).starts_with("epim-sched-"),
                "group spans are recorded by scheduler workers, got lane {:?}",
                ring.label(lane)
            );
            sched_lanes += 1;
        }
        for stage in events.iter().filter(|e| e.kind == SpanKind::Stage) {
            assert!(
                groups
                    .iter()
                    .any(|g| g.start_ns <= stage.start_ns && stage.end_ns() <= g.end_ns()),
                "every stage span nests inside a group span on its lane"
            );
            nested_stages += 1;
        }
    }
    assert!(
        sched_lanes >= 1,
        "at least one scheduler worker lane active"
    );
    assert!(nested_stages > 0, "served stages were span-traced");
    let all = ring.all_events();
    assert!(
        all.iter().any(|e| e.kind == SpanKind::Enqueue),
        "request arrivals leave enqueue instants"
    );
    assert!(
        all.iter().any(|e| e.kind == SpanKind::Coalesce),
        "batch formation leaves coalesce spans"
    );

    // --- Phase 3: exporters. The chrome trace parses back through the
    // vendored serde_json; the Prometheus exposition carries the serving
    // histograms and per-stage rollups.
    let json = ring.export_chrome_trace();
    let doc: serde::Value = serde_json::from_str(&json).expect("chrome trace parses");
    let serde::Value::Object(fields) = &doc else {
        panic!("chrome trace must be an object");
    };
    let Some((_, serde::Value::Array(events))) = fields.iter().find(|(k, _)| k == "traceEvents")
    else {
        panic!("traceEvents array present");
    };
    assert!(events.len() >= all.len(), "every ring event exports");

    let stats = engine.stats();
    assert!(
        stats.queue_depth_high_water >= 1,
        "burst left a high-water mark"
    );
    assert!(!stats.stages.is_empty(), "per-stage rollup populated");
    assert!(stats.time_in_queue() > Duration::ZERO);
    let text = stats.render_prometheus();
    for needle in [
        "# TYPE epim_request_seconds histogram",
        "epim_request_seconds_bucket",
        "le=\"+Inf\"",
        "epim_requests_total 8",
        "epim_queue_depth_high_water",
        "epim_stage_seconds_total",
    ] {
        assert!(
            text.contains(needle),
            "exposition missing {needle:?}:\n{text}"
        );
    }
}
