//! Integration tests for the unified submission surface: the
//! [`InferService`] trait must behave identically across all three engine
//! kinds, and [`Pending`] must deliver results through every one of its
//! three consumption modes — blocking `wait()`, bounded `wait_timeout()`
//! and `await` under a runtime-free hand-rolled executor.

use epim_core::{ConvShape, Epitome, EpitomeShape, EpitomeSpec};
use epim_models::lower::NetworkWeights;
use epim_models::zoo;
use epim_pim::datapath::AnalogModel;
use epim_runtime::{
    Engine, EngineConfig, InferRequest, InferService, MultiEngine, NetworkEngine, Pending,
    PlanCache, RuntimeError, TenantConfig,
};
use epim_tensor::ops::Conv2dCfg;
use epim_tensor::{init, rng, Tensor};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

fn analog() -> AnalogModel {
    AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    }
}

fn layer_engine(config: EngineConfig) -> Engine {
    let spec = EpitomeSpec::new(ConvShape::new(8, 4, 3, 3), EpitomeShape::new(4, 4, 2, 2)).unwrap();
    let mut r = rng::seeded(5);
    let epi = Epitome::from_tensor(spec, init::uniform(&[4, 4, 2, 2], -1.0, 1.0, &mut r)).unwrap();
    let cfg = Conv2dCfg {
        stride: 1,
        padding: 1,
    };
    Engine::new(&epi, cfg, true, analog(), config).unwrap()
}

/// A minimal single-future executor built only on std: parks on a
/// condvar, woken by the `Waker` the future registers. This is the
/// acceptance check that `Pending` integrates with *any* runtime, not
/// that it happens to work with a specific one.
struct Parker {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        let mut woken = self.woken.lock().unwrap();
        *woken = true;
        self.cv.notify_one();
    }
}

fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let parker = Arc::new(Parker {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                let mut woken = parker.woken.lock().unwrap();
                while !*woken {
                    woken = parker.cv.wait(woken).unwrap();
                }
                *woken = false;
            }
        }
    }
}

/// Generic driver: the point of `InferService` is that this compiles
/// once and serves any engine.
fn drive(svc: &dyn InferService, inputs: &[Tensor]) -> Vec<Tensor> {
    let pendings: Vec<Pending> = inputs
        .iter()
        .map(|x| svc.try_infer(InferRequest::new(x.clone())).unwrap())
        .collect();
    pendings
        .into_iter()
        .map(|p| p.wait().unwrap().output)
        .collect()
}

/// All three `InferService` implementations produce bit-identical
/// outputs to their engine's inherent blocking path, through the same
/// generic driver.
#[test]
fn infer_service_is_uniform_across_engines() {
    // Single-layer engine.
    let engine = layer_engine(EngineConfig::default());
    let mut r = rng::seeded(6);
    let layer_inputs: Vec<Tensor> = (0..3)
        .map(|_| init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r))
        .collect();
    let want: Vec<Tensor> = layer_inputs
        .iter()
        .map(|x| engine.infer(x.clone()).unwrap().output)
        .collect();
    assert_eq!(drive(&engine, &layer_inputs), want);
    assert!(InferService::stats(&engine).requests >= 3);

    // Network engine and a tenant handle over the same network: all
    // three must agree bitwise.
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 11).unwrap();
    let net_inputs: Vec<Tensor> = (0..3)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();

    let cache = PlanCache::new();
    let net_engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        analog(),
        EngineConfig::default(),
    )
    .unwrap();
    let net_want: Vec<Tensor> = net_inputs
        .iter()
        .map(|x| net_engine.infer(x.clone()).unwrap().output)
        .collect();
    assert_eq!(drive(&net_engine, &net_inputs), net_want);

    let mut builder = MultiEngine::builder(&cache);
    let solo = builder
        .register(
            "solo",
            &net,
            &weights,
            (16, 16),
            true,
            analog(),
            TenantConfig::default(),
        )
        .unwrap();
    let fleet = builder.build().unwrap();
    let handle = fleet.tenant(solo).unwrap();
    assert_eq!(drive(&handle, &net_inputs), net_want);
    assert_eq!(InferService::stats(&handle).requests, 3);

    // The provided blocking convenience agrees with try_infer + wait.
    let one = InferService::infer(&handle, InferRequest::new(net_inputs[0].clone()))
        .unwrap()
        .output;
    assert_eq!(one, net_want[0]);
}

/// `Pending` as a `Future`: awaiting results under a minimal hand-rolled
/// executor (no async runtime anywhere in the workspace) matches the
/// blocking path bitwise, and the waker fires without busy-polling.
#[test]
fn pending_resolves_as_future_under_handrolled_executor() {
    let engine = layer_engine(EngineConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(2),
        ..EngineConfig::default()
    });
    let mut r = rng::seeded(7);
    let inputs: Vec<Tensor> = (0..6)
        .map(|_| init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r))
        .collect();
    let want: Vec<Tensor> = inputs
        .iter()
        .map(|x| engine.infer(x.clone()).unwrap().output)
        .collect();

    // Await them one at a time (single-future executor), but submit all
    // up front so the batcher still coalesces.
    let pendings: Vec<Pending> = inputs
        .iter()
        .map(|x| engine.try_infer(x.clone()).unwrap())
        .collect();
    let got: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| block_on(p).unwrap().output)
        .collect();
    assert_eq!(got, want);

    // A joined pair through one future: poll-driven multiplexing.
    let p1 = engine.try_infer(inputs[0].clone()).unwrap();
    let p2 = engine.try_infer(inputs[1].clone()).unwrap();
    let joined = block_on(Join2 {
        a: Some(p1),
        b: Some(p2),
        out_a: None,
        out_b: None,
    });
    assert_eq!(joined.0.unwrap().unwrap().output, want[0]);
    assert_eq!(joined.1.unwrap().unwrap().output, want[1]);
}

/// A tiny join combinator so the executor test exercises re-polling with
/// one result ready and the other still pending.
struct Join2 {
    a: Option<Pending>,
    b: Option<Pending>,
    out_a: Option<Result<epim_runtime::Inference, RuntimeError>>,
    out_b: Option<Result<epim_runtime::Inference, RuntimeError>>,
}

impl Future for Join2 {
    #[allow(clippy::type_complexity)]
    type Output = (
        Option<Result<epim_runtime::Inference, RuntimeError>>,
        Option<Result<epim_runtime::Inference, RuntimeError>>,
    );

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.out_a.is_none() {
            if let Some(p) = this.a.as_mut() {
                if let Poll::Ready(r) = Pin::new(p).poll(cx) {
                    this.out_a = Some(r);
                    this.a = None;
                }
            }
        }
        if this.out_b.is_none() {
            if let Some(p) = this.b.as_mut() {
                if let Poll::Ready(r) = Pin::new(p).poll(cx) {
                    this.out_b = Some(r);
                    this.b = None;
                }
            }
        }
        if this.out_a.is_some() && this.out_b.is_some() {
            Poll::Ready((this.out_a.take(), this.out_b.take()))
        } else {
            Poll::Pending
        }
    }
}

/// `wait_timeout` against a deliberately stalled worker: a lone request
/// held open by a long coalescing window times out with
/// `RuntimeError::Timeout`, leaves the request in flight (the handle
/// stays usable), and a later unbounded `wait` still delivers the result.
#[test]
fn wait_timeout_returns_timeout_then_result_survives() {
    // max_batch 8 with a single submission: the batcher holds the
    // request for the whole window hoping for peers, stalling delivery.
    let engine = layer_engine(EngineConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(400),
        ..EngineConfig::default()
    });
    let mut r = rng::seeded(8);
    let x = init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r);
    let want = {
        // Ground truth from a second engine with no stall window.
        let fast = layer_engine(EngineConfig::default());
        fast.infer(x.clone()).unwrap().output
    };

    let mut pending = engine.try_infer(x).unwrap();
    assert!(!pending.is_ready());
    let err = pending
        .wait_timeout(Duration::from_millis(30))
        .expect_err("stalled worker must not deliver within 30ms");
    assert_eq!(err, RuntimeError::Timeout);

    // The request is still in flight; an unbounded wait gets the result.
    let out = pending.wait().unwrap().output;
    assert_eq!(out, want);

    // A fresh request against the same engine resolves within a bounded
    // wait longer than the window: timeout is a deadline, not a poison.
    let y = init::uniform(&[1, 4, 8, 8], -1.0, 1.0, &mut r);
    let mut p2 = engine.try_infer(y).unwrap();
    let inf = p2.wait_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(inf.output.shape(), &[1, 8, 8, 8]);
}
