//! Chaos tests for the runtime's self-healing scheduler, driven by the
//! deterministic `epim-faults` injection harness.
//!
//! The contract under fault injection is the serving invariant with one
//! word changed: every submitted request gets **a bit-identical answer or
//! a typed error** — never a hang, never a wrong bit. These tests kill
//! scheduler workers, panic inside the stats critical section (poisoning
//! the mutex), and expire request deadlines, then assert the engine
//! recovers and keeps serving outputs bitwise equal to a fault-free
//! engine's.
//!
//! Fault state is process-global (`epim_faults::install`/`clear`), so
//! every test serializes on a static mutex — the same pattern the faults
//! crate uses for its own tests.

use epim_faults::{FaultPlan, FaultPoint, FaultRule};
use epim_models::lower::NetworkWeights;
use epim_models::zoo;
use epim_pim::datapath::AnalogModel;
use epim_runtime::{
    EngineConfig, InferRequest, NetworkEngine, PlanCache, RuntimeError, RuntimeStats,
};
use epim_tensor::{init, rng, Tensor};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Serializes tests that install process-global fault plans. Recovers
/// from poisoning so one failed chaos test does not cascade.
static GATE: Mutex<()> = Mutex::new(());

fn requests(n: usize, seed: u64) -> Vec<Tensor> {
    let mut r = rng::seeded(seed);
    (0..n)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect()
}

/// A single-worker engine over the tiny epitome network: one scheduler
/// lane makes crash/respawn sequencing deterministic.
fn build_engine(config: EngineConfig) -> NetworkEngine {
    let (net, _) = zoo::tiny_epitome_network(8, 4, 10).unwrap();
    let weights = NetworkWeights::random(&net, 7).unwrap();
    let cache = PlanCache::new();
    NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        AnalogModel::ideal(),
        config,
    )
    .unwrap()
}

fn serial_config() -> EngineConfig {
    EngineConfig {
        max_batch: 1,
        batch_window: Duration::ZERO,
        workers: 1,
        ..EngineConfig::default()
    }
}

/// Polls until the submission queue drains (the worker took the head
/// request into execution), so a follow-up submission cannot coalesce
/// into the same batch.
fn wait_queue_empty(engine: &NetworkEngine) -> RuntimeStats {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = engine.stats();
        if stats.queue_depth == 0 {
            return stats;
        }
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// An injected worker kill after the first batch must cost a thread, not
/// an answer: every request (including the one whose batch triggered the
/// kill) completes, the supervisor respawns the lane, and the
/// post-restart burst is bitwise equal to a fault-free engine's outputs.
#[test]
fn worker_kill_is_survived_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let reqs = requests(5, 33);

    // Ground truth from a fault-free engine over the same plan + inputs.
    let healthy = build_engine(serial_config());
    let want: Vec<Tensor> = reqs
        .iter()
        .map(|r| healthy.infer(r.clone()).unwrap().output)
        .collect();
    drop(healthy);

    let engine = build_engine(serial_config());
    epim_faults::install(
        FaultPlan::new(42).with_rule(FaultPoint::WorkerPanic, FaultRule::once_at(1)),
    );
    // Serial submission: request 0 rides the batch that kills the worker
    // (delivery happens before the injected panic), requests 1.. are
    // served by the respawned lane.
    let got: Vec<Tensor> = reqs
        .iter()
        .map(|r| engine.infer(r.clone()).unwrap().output)
        .collect();
    let fired = epim_faults::fire_count(FaultPoint::WorkerPanic);
    epim_faults::clear();

    assert_eq!(got, want, "post-restart outputs diverged from reference");
    assert_eq!(fired, 1, "worker-kill fault fired {fired} times, not once");
    let stats = engine.stats();
    assert!(
        stats.worker_restarts >= 1,
        "supervisor recorded no restart: {stats:?}"
    );
}

/// With the restart budget exhausted (`restart_budget: 0`), a worker
/// crash fails the fleet: queued and subsequent submissions resolve to
/// the typed [`RuntimeError::CrashLoop`] / [`RuntimeError::ShuttingDown`]
/// — they never hang and never return a wrong answer.
#[test]
fn crash_loop_fails_typed_instead_of_hanging() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let reqs = requests(2, 44);
    let engine = build_engine(EngineConfig {
        restart_budget: 0,
        ..serial_config()
    });
    epim_faults::install(
        FaultPlan::new(42).with_rule(FaultPoint::WorkerPanic, FaultRule::once_at(1)),
    );

    // The batch that triggers the kill still answers.
    let first = engine.infer(reqs[0].clone());
    assert!(first.is_ok(), "pre-crash request failed: {first:?}");

    // The lone worker is dead and the supervisor may not respawn it; the
    // next submission must resolve to a typed terminal error. (It may
    // block briefly until the supervisor sweeps the queue — that bounded
    // wait is the test: a hang here is the bug.)
    let second = engine.infer(reqs[1].clone());
    match second {
        Err(RuntimeError::CrashLoop { .. }) | Err(RuntimeError::ShuttingDown) => {}
        other => panic!("expected CrashLoop/ShuttingDown, got {other:?}"),
    }
    epim_faults::clear();
}

/// A panic while *holding the stats mutex* poisons it with a batch in
/// flight. The delivery guard must fail that batch with the typed
/// [`RuntimeError::ExecutionPanicked`], the supervisor respawns the
/// worker, lock recovery un-poisons the mutex — and the engine then
/// serves bit-identical answers and readable statistics.
#[test]
fn stats_lock_poisoning_recovers() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let reqs = requests(3, 55);
    let healthy = build_engine(serial_config());
    let want: Vec<Tensor> = reqs
        .iter()
        .map(|r| healthy.infer(r.clone()).unwrap().output)
        .collect();
    drop(healthy);

    let engine = build_engine(serial_config());
    epim_faults::install(
        FaultPlan::new(42).with_rule(FaultPoint::LockPanic, FaultRule::once_at(1)),
    );

    // The batch that panics under the lock fails typed, not silently.
    match engine.infer(reqs[0].clone()) {
        Err(RuntimeError::ExecutionPanicked) => {}
        other => panic!("expected ExecutionPanicked, got {other:?}"),
    }
    // Subsequent requests are served by the respawned worker through the
    // recovered (formerly poisoned) stats mutex, bit-identically.
    for (i, req) in reqs.iter().enumerate().skip(1) {
        let out = engine.infer(req.clone()).unwrap().output;
        assert_eq!(out, want[i], "request {i} diverged after lock recovery");
    }
    epim_faults::clear();

    // The poisoned mutex is readable again and the books balance.
    let stats = engine.stats();
    assert!(stats.worker_restarts >= 1, "no restart recorded: {stats:?}");
    assert!(
        stats.requests >= 2,
        "post-recovery requests missing from stats"
    );
}

/// A request whose deadline has already passed at submission is shed at
/// admission with the typed error — it never spends a batch slot.
#[test]
fn expired_deadline_is_shed_at_admission() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let engine = build_engine(serial_config());
    let input = requests(1, 66).pop().unwrap();
    let already_expired = Instant::now();
    std::thread::sleep(Duration::from_millis(2));

    match engine.infer(InferRequest::new(input).with_deadline(already_expired)) {
        Err(RuntimeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.stats();
    assert!(
        stats.deadline_exceeded >= 1,
        "admission shed not counted: {stats:?}"
    );
}

/// A request that expires *while queued behind a slow batch* is shed by
/// the scheduler's drain-loop sweep: the slow request still answers, the
/// expired one gets the typed error, and the counter records it.
#[test]
fn queued_request_expiring_behind_slow_batch_is_shed() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let engine = build_engine(serial_config());
    let mut reqs = requests(2, 77);
    let slow_input = reqs.remove(0);
    let doomed_input = reqs.remove(0);

    // Stall the first batch's execution for 250ms on the lone worker.
    epim_faults::install(FaultPlan::new(42).with_rule(
        FaultPoint::StageDelay,
        FaultRule {
            delay_ms: 250,
            ..FaultRule::once_at(1)
        },
    ));

    let slow = engine.try_infer(InferRequest::new(slow_input)).unwrap();
    // Wait until the worker has taken the slow request into execution so
    // the doomed one queues behind it instead of coalescing with it.
    wait_queue_empty(&engine);
    let doomed = engine
        .try_infer(
            InferRequest::new(doomed_input)
                .with_deadline(Instant::now() + Duration::from_millis(30)),
        )
        .unwrap();

    let slow_result = slow.wait();
    assert!(slow_result.is_ok(), "stalled batch failed: {slow_result:?}");
    match doomed.wait() {
        Err(RuntimeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    epim_faults::clear();

    let stats = engine.stats();
    assert!(
        stats.deadline_exceeded >= 1,
        "drain-loop shed not counted: {stats:?}"
    );
}

/// Installing a plan whose rules never fire must not change served bits —
/// the "armed but silent" mode the overhead bench runs in.
#[test]
fn armed_but_silent_faults_change_no_bits() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    epim_faults::clear();

    let reqs = requests(4, 88);
    let healthy = build_engine(serial_config());
    let want: Vec<Tensor> = reqs
        .iter()
        .map(|r| healthy.infer(r.clone()).unwrap().output)
        .collect();
    drop(healthy);

    let mut plan = FaultPlan::new(42);
    for point in epim_faults::ALL_POINTS {
        plan = plan.with_rule(point, FaultRule::never());
    }
    epim_faults::install(plan);

    let engine = build_engine(serial_config());
    let got: Vec<Tensor> = reqs
        .iter()
        .map(|r| engine.infer(r.clone()).unwrap().output)
        .collect();
    epim_faults::clear();

    assert_eq!(got, want, "armed-but-silent fault plan changed served bits");
    assert_eq!(engine.stats().worker_restarts, 0);
}
