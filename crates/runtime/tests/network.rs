//! Integration tests for whole-network serving: the pipelined
//! `NetworkEngine` must be **bit-identical** to sequential per-stage
//! reference execution (outputs and `DataPathStats` rollup), the bounded
//! queue must shed or block per policy, and plan-cache warming must make
//! compilation miss-free.

use epim_core::{ConvShape, EpitomeDesigner, EpitomeSpec};
use epim_models::lower::NetworkWeights;
use epim_models::network::{Network, OperatorChoice};
use epim_models::resnet::{Backbone, LayerInfo};
use epim_models::zoo;
use epim_pim::datapath::{AnalogModel, DataPathStats};
use epim_runtime::{
    EngineConfig, FlowControl, NetworkEngine, NetworkPlan, PlanCache, RuntimeError,
};
use epim_tensor::{init, rng, Tensor};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn layer(name: &str, conv: ConvShape, res: usize) -> LayerInfo {
    LayerInfo {
        name: name.to_string(),
        conv,
        out_h: res,
        out_w: res,
    }
}

/// The zoo's tiny ResNet (stem 8, inner width 4, 10 classes) with its two
/// 3×3 convolutions replaced by a shared epitome spec (so the plan cache
/// can pay off across layers).
fn tiny_resnet_network() -> (Network, EpitomeSpec) {
    zoo::tiny_epitome_network(8, 4, 10).unwrap()
}

/// Serves `requests` through a fresh engine and checks outputs and stats
/// against sequential per-request reference execution, bit for bit.
fn assert_serves_like_reference(
    net: &Network,
    weights: &NetworkWeights,
    input_hw: (usize, usize),
    analog: AnalogModel,
    config: EngineConfig,
    requests: Vec<Tensor>,
) {
    let prog = net.lower(input_hw.0, input_hw.1).unwrap();
    let mut want_stats = DataPathStats::default();
    let want: Vec<Tensor> = requests
        .iter()
        .map(|x| {
            let (y, s) = prog.forward_reference(weights, true, analog, x).unwrap();
            want_stats.accumulate(&s);
            y
        })
        .collect();

    let cache = PlanCache::new();
    let engine = NetworkEngine::new(&cache, net, weights, input_hw, true, analog, config).unwrap();
    let results = engine.infer_many(requests).unwrap();
    for (i, (res, w)) in results.iter().zip(&want).enumerate() {
        let inference = res.as_ref().expect("inference succeeds");
        assert_eq!(inference.output, *w, "request {i} diverged from reference");
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, want.len() as u64);
    assert_eq!(
        stats.datapath, want_stats,
        "stats rollup diverged from sequential reference"
    );
}

/// The tentpole invariant on the ResNet-style network: a burst served
/// through the pipelined engine equals per-request reference execution.
#[test]
fn resnet_style_network_serves_bit_identically() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 11).unwrap();
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let mut r = rng::seeded(12);
    let requests: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    assert_serves_like_reference(
        &net,
        &weights,
        (16, 16),
        analog,
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(20),
            ..EngineConfig::default()
        },
        requests,
    );
}

/// Same invariant with pipelined workers and mixed request sizes (N=1 and
/// N=2 requests form their own shape groups).
#[test]
fn pipelined_workers_and_mixed_batch_sizes_stay_bit_identical() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 21).unwrap();
    let mut r = rng::seeded(22);
    let requests: Vec<Tensor> = (0..10)
        .map(|i| init::uniform(&[1 + (i % 2), 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    assert_serves_like_reference(
        &net,
        &weights,
        (16, 16),
        AnalogModel::ideal(),
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(10),
            workers: 3,
            ..EngineConfig::default()
        },
        requests,
    );
}

// Random small chain networks with random epitome choices: the property
// form of the tentpole invariant.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn network_engine_matches_reference_on_random_networks(
        c0 in 2usize..=6,
        c1 in 2usize..=6,
        classes in 2usize..=8,
        epi0 in any::<bool>(),
        epi1 in any::<bool>(),
        quantized in any::<bool>(),
        workers in 1usize..=3,
        seed in 0u64..10_000,
    ) {
        let bb = Backbone {
            name: "chain".to_string(),
            layers: vec![
                layer("l0", ConvShape::new(c0, 3, 3, 3), 8),
                layer("l1", ConvShape::new(c1, c0, 3, 3), 4),
                layer("head", ConvShape::new(classes, c1, 1, 1), 1),
            ],
        };
        let designer = EpitomeDesigner::new(16, 16);
        let mut net = Network::baseline(bb.clone());
        if epi0 {
            let conv = bb.layers[0].conv;
            let spec = designer.design(conv, conv.matrix_rows() / 2, c0).unwrap();
            net.set_choice(0, OperatorChoice::Epitome(spec)).unwrap();
        }
        if epi1 {
            let conv = bb.layers[1].conv;
            let spec =
                designer.design(conv, conv.matrix_rows() / 2, (c1 / 2).max(1)).unwrap();
            net.set_choice(1, OperatorChoice::Epitome(spec)).unwrap();
        }
        let weights = NetworkWeights::random(&net, seed).unwrap();
        let analog = if quantized {
            AnalogModel {
                weight_noise_std: 0.02,
                adc_bits: Some(8),
                dac_bits: Some(9),
                noise_seed: seed,
                ..AnalogModel::ideal()
            }
        } else {
            AnalogModel::ideal()
        };
        let mut r = rng::seeded(seed ^ 0x9e37);
        let requests: Vec<Tensor> =
            (0..5).map(|_| init::uniform(&[1, 3, 8, 8], -1.0, 1.0, &mut r)).collect();
        assert_serves_like_reference(
            &net,
            &weights,
            (8, 8),
            analog,
            EngineConfig {
                max_batch: 3,
                batch_window: Duration::from_millis(10),
                workers,
                ..EngineConfig::default()
            },
            requests,
        );
    }
}

/// Warming the cache with the network's specs makes plan compilation
/// miss-free, and the engine surfaces the cache counters in its stats.
#[test]
fn warmed_cache_compiles_with_zero_misses() {
    let (net, spec) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 31).unwrap();
    let cache = PlanCache::new();
    let plans = cache.warm_network(&net).unwrap();
    assert_eq!(plans.len(), 2, "two epitome layers");
    assert_eq!(cache.stats().entries, 1, "shared spec compiles once");
    let misses_after_warm = cache.stats().misses;
    assert_eq!(misses_after_warm, 1);

    let plan = Arc::new(
        NetworkPlan::compile(
            &cache,
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            true,
        )
        .unwrap(),
    );
    assert_eq!(
        cache.stats().misses,
        misses_after_warm,
        "warm compilation must not miss"
    );
    assert_eq!(plan.program().epitome_specs(), vec![&spec]);

    // The engine reports the shared cache's counters.
    let engine = NetworkEngine::from_plan(plan, &cache, EngineConfig::default()).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_cache.misses, misses_after_warm);
    assert_eq!(stats.plan_cache.entries, 1);
    assert!(stats.plan_cache.hits >= 2);
}

/// `Shed` rejects when the bounded queue is full; nothing hangs.
#[test]
fn shed_policy_rejects_under_load() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 41).unwrap();
    let cache = PlanCache::new();
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        AnalogModel::ideal(),
        EngineConfig {
            max_batch: 4,
            // A long window parks the queued requests in the queue while
            // the scheduler waits for the batch to fill.
            batch_window: Duration::from_millis(400),
            queue_capacity: 2,
            flow: FlowControl::Shed {
                timeout: Duration::from_millis(10),
            },
            workers: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let x = || init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut rng::seeded(43));

    std::thread::scope(|scope| {
        // Two requests fill the queue and sit in the coalescing window.
        let h1 = scope.spawn({
            let engine = &engine;
            let x = x();
            move || engine.infer(x)
        });
        let h2 = scope.spawn({
            let engine = &engine;
            let x = x();
            move || engine.infer(x)
        });
        std::thread::sleep(Duration::from_millis(100));
        // The queue is full: try_infer sheds immediately...
        let shed = engine.try_infer(x());
        assert!(
            matches!(shed, Err(RuntimeError::Overloaded { capacity: 2, .. })),
            "{shed:?}"
        );
        // ...and a blocking infer under the Shed policy gives up after its
        // timeout instead of waiting forever.
        let shed = engine.infer(x());
        assert!(
            matches!(shed, Err(RuntimeError::Overloaded { .. })),
            "{shed:?}"
        );
        // The queued requests still complete once the window expires.
        assert!(h1.join().unwrap().is_ok());
        assert!(h2.join().unwrap().is_ok());
    });
    let stats = engine.stats();
    assert!(
        stats.shed >= 2,
        "shed counter must record rejections, got {}",
        stats.shed
    );
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.queue_depth, 0);
}

/// `Block` applies backpressure but never drops: every submission beyond
/// the queue capacity completes.
#[test]
fn block_policy_never_drops() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 51).unwrap();
    let cache = PlanCache::new();
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        AnalogModel::ideal(),
        EngineConfig {
            max_batch: 2,
            batch_window: Duration::ZERO,
            queue_capacity: 2,
            flow: FlowControl::Block,
            workers: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 4;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                let mut r = rng::seeded(60 + c as u64);
                for _ in 0..PER_CLIENT {
                    let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
                    engine.infer(x).expect("Block policy never sheds");
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.requests, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.queue_depth, 0);
}

/// Invalid configurations and oversized bursts fail with typed errors
/// instead of hanging or panicking a scheduler thread.
#[test]
fn invalid_configs_rejected_with_typed_errors() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 61).unwrap();
    let cache = PlanCache::new();
    let make = |config: EngineConfig| {
        NetworkEngine::new(
            &cache,
            &net,
            &weights,
            (16, 16),
            true,
            AnalogModel::ideal(),
            config,
        )
    };
    for bad in [
        EngineConfig {
            max_batch: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            queue_capacity: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            workers: 0,
            ..EngineConfig::default()
        },
    ] {
        assert!(
            matches!(make(bad), Err(RuntimeError::InvalidConfig { .. })),
            "{bad:?}"
        );
    }

    // A burst larger than the queue can ever hold fails whole.
    let engine = make(EngineConfig {
        queue_capacity: 2,
        ..EngineConfig::default()
    })
    .unwrap();
    let mut r = rng::seeded(62);
    let burst: Vec<Tensor> = (0..3)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    assert!(matches!(
        engine.infer_many(burst),
        Err(RuntimeError::InvalidConfig { .. })
    ));

    // Bad requests fail alone without poisoning the engine.
    let wrong_channels = Tensor::zeros(&[1, 5, 16, 16]);
    assert!(matches!(
        engine.infer(wrong_channels),
        Err(RuntimeError::Pim(_))
    ));
    let good = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
    assert!(engine.infer(good).is_ok());
}

/// The graph-fusion pass is invisible to callers: a fused engine and an
/// unfused engine serve bitwise-identical outputs and stats, while the
/// fused plan runs fewer stages and its liveness-planned arena stays
/// strictly below the old exact-size pool's high-water mark.
#[test]
fn fused_engine_matches_unfused_and_shrinks_the_arena() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 81).unwrap();
    let analog = AnalogModel {
        adc_bits: Some(8),
        dac_bits: Some(9),
        ..AnalogModel::ideal()
    };
    let mut r = rng::seeded(82);
    let requests: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r))
        .collect();
    let config = EngineConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(10),
        ..EngineConfig::default()
    };
    let serve = |optimize_program: bool| {
        let cache = PlanCache::new();
        let engine = NetworkEngine::new(
            &cache,
            &net,
            &weights,
            (16, 16),
            true,
            analog,
            EngineConfig {
                optimize_program,
                ..config
            },
        )
        .unwrap();
        let outs: Vec<Tensor> = engine
            .infer_many(requests.clone())
            .unwrap()
            .into_iter()
            .map(|res| res.unwrap().output)
            .collect();
        let stages = engine.plan().program().stages().len();
        (outs, engine.stats(), stages)
    };
    let (fused_outs, fused_stats, fused_stages) = serve(true);
    let (raw_outs, raw_stats, raw_stages) = serve(false);
    assert_eq!(fused_outs, raw_outs, "fusion must be bitwise invisible");
    assert_eq!(fused_stats.datapath, raw_stats.datapath);
    assert!(fused_stages < raw_stages, "relu stages must fold away");
    // The arena metric: strictly below the old pool's high-water mark,
    // for both the fused and the unfused program.
    assert!(fused_stats.arena_bytes > 0);
    assert!(fused_stats.arena_bytes < fused_stats.legacy_pool_bytes);
    assert!(raw_stats.arena_bytes < raw_stats.legacy_pool_bytes);
    assert!(
        fused_stats.arena_bytes <= raw_stats.arena_bytes,
        "fusion must never grow the arena"
    );
}

/// `try_infer`'s `Pending` handle delivers the same result as `infer`.
#[test]
fn try_infer_pending_delivers() {
    let (net, _) = tiny_resnet_network();
    let weights = NetworkWeights::random(&net, 71).unwrap();
    let cache = PlanCache::new();
    let engine = NetworkEngine::new(
        &cache,
        &net,
        &weights,
        (16, 16),
        true,
        AnalogModel::ideal(),
        EngineConfig {
            batch_window: Duration::ZERO,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut r = rng::seeded(72);
    let x = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut r);
    let prog = net.lower(16, 16).unwrap();
    let (want, _) = prog
        .forward_reference(&weights, true, AnalogModel::ideal(), &x)
        .unwrap();
    let pending = engine.try_infer(x).unwrap();
    assert_eq!(pending.wait().unwrap().output, want);
}
