//! # EPIM — Efficient Processing-In-Memory Accelerators based on Epitome
//!
//! A from-scratch Rust reproduction of the DAC 2024 paper
//! *EPIM: Efficient Processing-In-Memory Accelerators based on Epitome*
//! (Wang, Dong, Zhou, Zhu, Wang, Feng, Keutzer — arXiv:2311.07620).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `epim-core` | the epitome operator, sampling plans, designer, channel wrapping |
//! | [`pim`] | `epim-pim` | behavior-level crossbar simulator, IFAT/IFRT/OFAT data path, cost model |
//! | [`quant`] | `epim-quant` | Eq. 2–5 quantization: per-crossbar scales, overlap-weighted ranges, mixed precision |
//! | [`search`] | `epim-search` | Algorithm 1 evolutionary layer-wise design |
//! | [`models`] | `epim-models` | ResNet-50/101 inventories, network simulation, lowering to executable programs, accuracy surrogate, small-scale training |
//! | [`prune`] | `epim-prune` | the PIM-Prune baseline |
//! | [`runtime`] | `epim-runtime` | batched inference serving: scheduler core with bounded queues/flow control, single-layer and whole-network engines, plan cache, runtime stats, the unified `InferService` surface |
//! | [`serve`] | `epim-serve` | network serving: TCP wire protocol, session threads, fleet config, pipelining client, load generator |
//! | [`obs`] | `epim-obs` | observability: lock-free trace ring with chrome://tracing export, log-linear latency histograms, Prometheus text exposition |
//! | [`tensor`] | `epim-tensor` | the ND tensor / NN substrate everything is built on |
//!
//! ## Quickstart
//!
//! ```
//! use epim::core::{ConvShape, EpitomeDesigner};
//! use epim::pim::{AcceleratorConfig, CostModel, Precision};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Replace a ResNet-50 conv with the paper's uniform 1024x256 epitome.
//! let conv = ConvShape::new(512, 256, 3, 3);
//! let spec = EpitomeDesigner::new(128, 128).design(conv, 1024, 256)?;
//! println!("compression: {:.2}x", spec.param_compression());
//!
//! // Simulate it on a 128x128-crossbar PIM accelerator at W9A9.
//! let model = CostModel::new(AcceleratorConfig::default().with_channel_wrapping(true));
//! let costs = model.epitome_layer(&spec, 14 * 14, Precision::new(9, 9));
//! println!("latency: {:.3} ms, energy: {:.3} mJ, crossbars: {}",
//!          costs.latency_ms(), costs.energy_mj(), costs.crossbars);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

/// The epitome operator (re-export of `epim-core`).
pub mod core {
    pub use epim_core::*;
}

/// The PIM simulator (re-export of `epim-pim`).
pub mod pim {
    pub use epim_pim::*;
}

/// Quantization (re-export of `epim-quant`).
pub mod quant {
    pub use epim_quant::*;
}

/// Evolutionary design search (re-export of `epim-search`).
pub mod search {
    pub use epim_search::*;
}

/// Models, networks, accuracy surrogate, training (re-export of
/// `epim-models`).
pub mod models {
    pub use epim_models::*;
}

/// The PIM-Prune baseline (re-export of `epim-prune`).
pub mod prune {
    pub use epim_prune::*;
}

/// The batched inference serving runtime (re-export of `epim-runtime`).
pub mod runtime {
    pub use epim_runtime::*;
}

/// Network serving over TCP: wire protocol, server, client, fleet
/// config (re-export of `epim-serve`), plus the runtime's unified
/// submission surface ([`serve::InferService`], [`serve::InferRequest`],
/// [`serve::Pending`]) so server-facing code imports one module.
pub mod serve {
    pub use epim_runtime::{InferRequest, InferService, Inference, Pending, CLIENT_NONE};
    pub use epim_serve::*;
}

/// Observability: tracing, histograms, exporters (re-export of
/// `epim-obs`).
pub mod obs {
    pub use epim_obs::*;
}

/// Deterministic fault injection for chaos testing (re-export of
/// `epim-faults`).
pub mod faults {
    pub use epim_faults::*;
}

/// The tensor/NN substrate (re-export of `epim-tensor`).
pub mod tensor {
    pub use epim_tensor::*;
}
