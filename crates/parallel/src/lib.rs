//! # epim-parallel
//!
//! Minimal data-parallel primitives for the EPIM workspace — no external
//! dependencies (rayon is not fetchable in this build environment; these
//! helpers cover the fork-join patterns the kernels need and can be swapped
//! for rayon later without changing call sites much).
//!
//! Since the runtime PR, the helpers run on a **persistent worker pool**
//! ([`pool`]): `num_threads() - 1` workers are spawned once, park on a
//! condvar between jobs, and are woken for each fork-join region. The seed
//! spawned scoped threads per call, whose creation cost kept small kernels
//! below the parallel threshold; with parked workers a dispatch costs two
//! lock/notify round trips, so much smaller ops can profitably go parallel.
//! The facades below are unchanged from the scoped-thread era — call sites
//! did not have to move.
//!
//! Work is distributed dynamically: workers pull the next chunk from a
//! shared iterator behind a mutex (or an atomic counter), so uneven chunks
//! still balance. On a single-core machine (or when `EPIM_THREADS=1`)
//! every helper runs the serial path with zero thread overhead — the
//! kernels in `epim-tensor` are designed to be fast serially first, with
//! threads as a multiplier. Nested parallel regions (and concurrent
//! regions from independent application threads, e.g. the `epim-runtime`
//! micro-batcher) are safe: whoever finds the pool busy runs inline.
//!
//! ## Example
//!
//! ```
//! let mut data = vec![0u64; 1024];
//! epim_parallel::for_each_chunk_mut(&mut data, 128, |chunk_idx, chunk| {
//!     for (i, x) in chunk.iter_mut().enumerate() {
//!         *x = (chunk_idx * 128 + i) as u64;
//!     }
//! });
//! assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
//! ```

#![deny(missing_docs)]

mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
///
/// `EPIM_THREADS` overrides (the canonical knob; `EPIM_NUM_THREADS` is
/// still honored as an alias), clamped to at least 1 so `EPIM_THREADS=0`
/// means "serial" rather than "invalid"; otherwise the machine's available
/// parallelism. Read once and cached — the pool is sized from it.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("EPIM_THREADS")
        .or_else(|_| std::env::var("EPIM_NUM_THREADS"))
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Number of persistent pool workers backing the current process
/// (`num_threads() - 1`; `0` means every helper runs serially).
pub fn pool_workers() -> usize {
    num_threads().saturating_sub(1)
}

/// The calling thread's persistent pool-worker index (`1..num_threads()`),
/// or `None` when called from any thread that is not a pool worker — the
/// hook observability layers use to label per-worker trace lanes.
pub fn current_worker() -> Option<usize> {
    pool::current_worker()
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized mutable chunks of
/// `data`, in parallel when worthwhile.
///
/// Chunk indices match `data.chunks_mut(chunk_len)` order. `f` must be
/// `Sync` (shared across workers) and chunks are disjoint, so no locking is
/// needed inside `f`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    map_chunks_mut(data, chunk_len, |i, c| f(i, c));
}

/// Like [`for_each_chunk_mut`] but collects each chunk's result, in chunk
/// order.
pub fn map_chunks_mut<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = num_threads().min(n_chunks.max(1));
    if threads <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let work = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    pool::run(&|_worker| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let next = work.lock().expect("worker poisoned the queue").next();
            match next {
                Some((i, chunk)) => local.push((i, f(i, chunk))),
                None => break,
            }
        }
        if !local.is_empty() {
            results
                .lock()
                .expect("worker poisoned the results")
                .extend(local);
        }
    });
    let mut tagged = results.into_inner().expect("worker poisoned the results");
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Computes `f(i)` for every `i` in `0..n` in parallel, collecting results
/// in index order.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    pool::run(&|_worker| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        if !local.is_empty() {
            results
                .lock()
                .expect("worker poisoned the results")
                .extend(local);
        }
    });
    let mut tagged = results.into_inner().expect("worker poisoned the results");
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Fold-reduce over `0..n`: each worker folds items into its own
/// accumulator (created by `identity`), and the per-worker accumulators are
/// reduced left-to-right in accumulator-arrival order.
///
/// `fold` and `reduce` must be commutative-compatible: item-to-worker
/// assignment is nondeterministic, so the final result is only deterministic
/// when the reduction is order-insensitive (sums of floats are *almost*
/// order-insensitive; callers needing bit-exact determinism should run with
/// `EPIM_THREADS=1` or design accumulators accordingly).
pub fn fold_reduce<A, Fi, Ff, Fr>(n: usize, identity: Fi, fold: Ff, reduce: Fr) -> A
where
    A: Send,
    Fi: Fn() -> A + Sync,
    Ff: Fn(&mut A, usize) + Sync,
    Fr: Fn(A, A) -> A,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        let mut acc = identity();
        for i in 0..n {
            fold(&mut acc, i);
        }
        return acc;
    }
    let counter = AtomicUsize::new(0);
    let accs: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));
    pool::run(&|_worker| {
        let mut acc = identity();
        loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            fold(&mut acc, i);
        }
        accs.lock()
            .expect("worker poisoned the accumulators")
            .push(acc);
    });
    accs.into_inner()
        .expect("worker poisoned the accumulators")
        .into_iter()
        .reduce(reduce)
        .expect("at least one worker accumulator")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_elements() {
        let mut data = vec![0usize; 1000];
        for_each_chunk_mut(&mut data, 7, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ci * 7 + j + 1;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let mut data = vec![1u32; 100];
        let sums = map_chunks_mut(&mut data, 9, |i, c| (i, c.len()));
        let total: usize = sums.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 100);
        for (k, &(i, _)) in sums.iter().enumerate() {
            assert_eq!(k, i);
        }
    }

    #[test]
    fn map_indexed_in_order() {
        let out = map_indexed(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn fold_reduce_sums() {
        let total = fold_reduce(1000, || 0u64, |acc, i| *acc += i as u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn empty_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        assert!(map_indexed(0, |i| i).is_empty());
        let acc = fold_reduce(0, || 5i32, |_, _| (), |a, _| a);
        assert_eq!(acc, 5);
    }

    #[test]
    fn nested_parallel_regions_complete() {
        // A parallel op whose body itself runs parallel ops must not
        // deadlock the pool (inner regions degrade to inline execution).
        let out = map_indexed(8, |i| {
            let inner = map_indexed(16, |j| (i * 16 + j) as u64);
            inner.iter().sum::<u64>()
        });
        let total: u64 = out.iter().sum();
        assert_eq!(total, (0..128).sum::<u64>());
    }

    #[test]
    fn pool_workers_consistent_with_num_threads() {
        assert_eq!(pool_workers(), num_threads() - 1);
    }
}
