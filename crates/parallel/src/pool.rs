//! The persistent parked-worker pool behind the fork-join facades.
//!
//! The seed spawned scoped threads on every parallel call; thread creation
//! costs tens of microseconds, which kept small kernels below the parallel
//! threshold. This pool spawns `num_threads() - 1` workers once (lazily, on
//! the first parallel call) and parks them on a condvar between jobs, so a
//! fork-join costs two lock/notify round trips instead of thread spawns.
//!
//! ## Job protocol
//!
//! [`run`] publishes one type-erased job — a `&(dyn Fn(usize) + Sync)`
//! invoked with a distinct worker index — bumps the epoch, and wakes every
//! worker. The submitting thread participates as worker 0 and then blocks
//! until all pool workers have finished the epoch, which is what makes the
//! lifetime erasure sound: the job reference cannot outlive `run`'s borrow
//! because `run` does not return (or unwind) before the last worker is done
//! with it.
//!
//! Closures distribute work among themselves dynamically (the facades use a
//! shared atomic counter or a mutexed chunk iterator), so a worker that
//! arrives late simply finds nothing left to do.
//!
//! ## Nesting and contention
//!
//! Only one job can be in flight. If a parallel region is entered while
//! another is running — from a pool worker (nested parallelism) or from a
//! second application thread — the caller runs its job inline on its own
//! thread instead of waiting, so the pool can never deadlock and outer-level
//! parallelism is never serialized behind an inner region.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock, TryLockError};

thread_local! {
    /// The stable pool-worker index of the current thread (`None` on
    /// threads that are not pool workers). Lets observability layers label
    /// per-worker trace lanes without the pool passing its index around.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The current thread's pool-worker index (`1..num_threads()`), or `None`
/// if this thread is not one of the pool's persistent workers.
pub(crate) fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// A type-erased job pointer. Stored as a raw fat pointer so the pool's
/// shared state stays `'static`; validity is guaranteed by the completion
/// barrier in [`run`] (see module docs).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation is safe) and the pool
// only dereferences it between publication and the completion barrier,
// while the submitting thread keeps the referent alive.
unsafe impl Send for Job {}

/// State guarded by the pool mutex.
struct State {
    /// Monotonic job counter; a worker runs a job when it observes an epoch
    /// it has not executed yet.
    epoch: u64,
    /// The published job for the current epoch (`None` while idle).
    job: Option<Job>,
    /// Pool workers that have not yet finished the current epoch.
    pending: usize,
    /// Whether any worker's job invocation panicked this epoch.
    panicked: bool,
}

struct Pool {
    /// Serializes submitters; held for the whole fork-join so `try_lock`
    /// failure doubles as the "pool busy" signal.
    submit: Mutex<()>,
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The submitter parks here waiting for `pending == 0`.
    done_cv: Condvar,
    workers: usize,
}

/// The process-wide pool: `None` when `num_threads() <= 1` (serial builds
/// never pay for the threads).
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let workers = crate::num_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            submit: Mutex::new(()),
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                pending: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers,
        }));
        for idx in 1..=workers {
            std::thread::Builder::new()
                .name(format!("epim-pool-{idx}"))
                .spawn(move || worker_loop(pool, idx))
                .expect("spawning pool worker");
        }
        Some(pool)
    })
}

/// Body of a pool worker: park, run each published epoch exactly once with
/// a stable worker index, repeat forever (workers die with the process).
fn worker_loop(pool: &'static Pool, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool state poisoned");
            loop {
                match st.job {
                    Some(job) if st.epoch != seen_epoch => {
                        seen_epoch = st.epoch;
                        break job;
                    }
                    _ => st = pool.work_cv.wait(st).expect("pool state poisoned"),
                }
            }
        };
        // SAFETY: `run` keeps the referent alive until `pending` drops to
        // zero, which happens only after this call returns.
        let f = unsafe { &*job.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(index)));
        let mut st = pool.state.lock().expect("pool state poisoned");
        if outcome.is_err() {
            st.panicked = true;
        }
        st.pending -= 1;
        if st.pending == 0 {
            pool.done_cv.notify_all();
        }
    }
}

/// Runs `f` concurrently on the pool: the calling thread invokes `f(0)` and
/// every pool worker invokes `f(i)` with a distinct `i in 1..num_threads()`.
/// Returns once every invocation has finished.
///
/// `f` is responsible for splitting the work (all facades pull from a shared
/// queue, so the partition adapts to however many threads actually arrive).
/// When the pool is unavailable — single-core machine, or a parallel region
/// is already running — `f(0)` runs inline on the caller and nothing else.
///
/// # Panics
///
/// Propagates a panic if `f` panicked on any thread (after all threads have
/// finished, so borrows stay sound).
pub(crate) fn run(f: &(dyn Fn(usize) + Sync)) {
    let Some(pool) = pool() else {
        f(0);
        return;
    };
    let guard = match pool.submit.try_lock() {
        Ok(g) => g,
        // Busy (nested region or concurrent submitter) or a previous
        // submitter panicked while holding the lock: degrade to inline.
        Err(TryLockError::WouldBlock) | Err(TryLockError::Poisoned(_)) => {
            f(0);
            return;
        }
    };

    // SAFETY: lifetime erasure only — the completion barrier below keeps
    // `f` alive for every dereference (see module docs).
    let job = Job(unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(f as *const _)
    });
    {
        let mut st = pool.state.lock().expect("pool state poisoned");
        st.epoch += 1;
        st.job = Some(job);
        st.pending = pool.workers;
        st.panicked = false;
        pool.work_cv.notify_all();
    }

    // Participate as worker 0. A panic here must not skip the completion
    // barrier below — workers may still be running off our stack.
    let local = catch_unwind(AssertUnwindSafe(|| f(0)));

    let worker_panicked = {
        let mut st = pool.state.lock().expect("pool state poisoned");
        while st.pending > 0 {
            st = pool.done_cv.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        st.panicked
    };
    drop(guard);

    if let Err(payload) = local {
        resume_unwind(payload);
    }
    if worker_panicked {
        panic!("worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // These tests share one global pool with every other concurrently
    // running test in this binary (the harness runs tests in parallel on
    // multi-core machines). A busy pool legitimately degrades `run` to a
    // single inline invocation, so per-run assertions must accept
    // `1..=num_threads()` participants; full participation is asserted by
    // retrying until an uncontended window is observed.

    #[test]
    fn all_threads_participate_and_rejoin() {
        let threads = crate::num_threads();
        let mut saw_full_participation = false;
        for _ in 0..500 {
            let seen = Mutex::new(Vec::new());
            run(&|idx| {
                seen.lock().unwrap().push(idx);
            });
            let mut ids = seen.into_inner().unwrap();
            ids.sort_unstable();
            // Invariants that hold even under contention: the caller
            // always participates as worker 0, indices are distinct and
            // in range, and the barrier returned only after all of them.
            assert!(
                !ids.is_empty() && ids[0] == 0,
                "caller must run as worker 0"
            );
            assert!(ids.len() <= threads);
            let unique = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), unique, "duplicate worker index");
            if unique == threads {
                saw_full_participation = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(
            saw_full_participation,
            "pool never ran a full fork-join in 500 attempts"
        );
    }

    #[test]
    fn nested_runs_degrade_inline() {
        let threads = crate::num_threads();
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run(&|_| {
            outer.fetch_add(1, Ordering::Relaxed);
            run(&|_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        let outer = outer.load(Ordering::Relaxed);
        let inner = inner.load(Ordering::Relaxed);
        assert!((1..=threads).contains(&outer));
        // Each outer invocation's nested region ran (at minimum inline) and
        // cannot have deadlocked waiting for the already-busy pool.
        assert!(inner >= outer);
        assert!(inner <= threads * threads);
    }

    #[test]
    fn panics_propagate_after_join() {
        let result = std::panic::catch_unwind(|| {
            run(&|_| panic!("boom"));
        });
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        let count = count.load(Ordering::Relaxed);
        assert!((1..=crate::num_threads()).contains(&count));
    }
}
