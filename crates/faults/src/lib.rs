//! Deterministic, seed-reproducible fault injection for the EPIM stack.
//!
//! Production failures — a worker thread panicking mid-batch, a lock
//! holder dying, a TCP peer vanishing between two bytes of a frame —
//! are rare enough that untested recovery code is broken recovery code.
//! This crate turns those events into *inputs*: a [`FaultPlan`] names a
//! set of injection points and, per point, a [`FaultRule`] saying when
//! to fire (Nth hit, every K hits, with probability p, at most M
//! times). The scheduler, the network plan, and the wire server consult
//! the plan at fixed hooks; a chaos test installs a plan, drives
//! traffic, and asserts the stack degrades to *typed errors and
//! bit-identical answers* — never hangs, never wrong bits.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, point, hit_index)`:
//! each point keeps an atomic hit counter, and probabilistic rules hash
//! the triple with splitmix64 instead of consuming a shared RNG stream.
//! Two runs with the same seed and the same per-point hit counts make
//! identical decisions regardless of thread interleaving.
//!
//! # Cost when disabled
//!
//! Exactly the `epim-obs` tracing discipline: the
//! hot-path guard [`active`] is one relaxed atomic load (lazily
//! initialised from `EPIM_FAULTS` on first use). Hooks in the scheduler
//! and server are `if faults::active() { … }` — dead weight of a single
//! predictable branch when chaos is off.
//!
//! # Activation
//!
//! Programmatic: [`install`] / [`clear`]. Environmental:
//! `EPIM_FAULTS="worker_panic:nth=3,max=1;stage_delay:ms=5,every=2"`
//! with `EPIM_FAULT_SEED=42`. Clause grammar per point:
//! `name[:key=value,…]` with keys `nth`, `every`, `prob`, `ms`, `max`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A named place in the stack where a fault can be injected.
///
/// Hit counters are per-point: "the 3rd `WorkerPanic` hit" means the
/// third time *any* thread reaches a worker-panic hook, in arrival
/// order of the atomic counter increments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Scheduler worker thread panics after finishing its Nth batch.
    WorkerPanic,
    /// Panic while holding the per-tenant stats lock (poisons it).
    LockPanic,
    /// Sleep injected at the top of a network-plan stage.
    StageDelay,
    /// Server resets the TCP connection instead of writing a response.
    ConnReset,
    /// Server writes a torn (truncated) frame and closes the socket.
    TornFrame,
    /// Server accept loop stalls before accepting a connection.
    AcceptStall,
}

/// Number of distinct injection points.
pub const POINT_COUNT: usize = 6;

/// All injection points, in index order.
pub const ALL_POINTS: [FaultPoint; POINT_COUNT] = [
    FaultPoint::WorkerPanic,
    FaultPoint::LockPanic,
    FaultPoint::StageDelay,
    FaultPoint::ConnReset,
    FaultPoint::TornFrame,
    FaultPoint::AcceptStall,
];

impl FaultPoint {
    /// Stable index into per-point tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultPoint::WorkerPanic => 0,
            FaultPoint::LockPanic => 1,
            FaultPoint::StageDelay => 2,
            FaultPoint::ConnReset => 3,
            FaultPoint::TornFrame => 4,
            FaultPoint::AcceptStall => 5,
        }
    }

    /// Spec-grammar name (`worker_panic`, `conn_reset`, …).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::LockPanic => "lock_panic",
            FaultPoint::StageDelay => "stage_delay",
            FaultPoint::ConnReset => "conn_reset",
            FaultPoint::TornFrame => "torn_frame",
            FaultPoint::AcceptStall => "accept_stall",
        }
    }

    /// Inverse of [`FaultPoint::name`].
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        ALL_POINTS.into_iter().find(|p| p.name() == name)
    }
}

/// When a given [`FaultPoint`] fires.
///
/// A rule fires on hit `h` (1-based) iff all of:
/// - `h >= nth` and, for `every > 0`, `(h - nth) % every == 0`
///   (`every == 0` means "exactly once, at hit `nth`");
/// - fewer than `max_fires` fires so far (`0` = unlimited);
/// - a splitmix64 hash of `(seed, point, h)` lands under `prob`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// First eligible hit (1-based). Default 1.
    pub nth: u64,
    /// Fire every `every` hits from `nth` on; `0` = only at `nth`.
    pub every: u64,
    /// Probability an eligible hit actually fires. Default 1.0.
    pub prob: f64,
    /// Sleep duration for delay-style points, in milliseconds.
    pub delay_ms: u64,
    /// Cap on total fires; `0` = unlimited.
    pub max_fires: u64,
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule {
            nth: 1,
            every: 1,
            prob: 1.0,
            delay_ms: 1,
            max_fires: 0,
        }
    }
}

impl FaultRule {
    /// A rule firing exactly once, on the `nth` hit.
    pub fn once_at(nth: u64) -> FaultRule {
        FaultRule {
            nth,
            every: 0,
            max_fires: 1,
            ..FaultRule::default()
        }
    }

    /// A rule that never fires (hit threshold beyond any real run).
    ///
    /// Used by the overhead benchmark: the plan is installed and every
    /// hook pays the full "armed" bookkeeping cost, but behaviour is
    /// unchanged.
    pub fn never() -> FaultRule {
        FaultRule {
            nth: u64::MAX,
            ..FaultRule::default()
        }
    }
}

/// A seeded set of per-point rules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for probabilistic decisions.
    pub seed: u64,
    rules: [Option<FaultRule>; POINT_COUNT],
}

impl FaultPlan {
    /// An empty plan (no point ever fires) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: [None; POINT_COUNT],
        }
    }

    /// Sets the rule for one point, replacing any previous rule.
    pub fn with_rule(mut self, point: FaultPoint, rule: FaultRule) -> FaultPlan {
        self.rules[point.index()] = Some(rule);
        self
    }

    /// The rule for a point, if any.
    pub fn rule(&self, point: FaultPoint) -> Option<FaultRule> {
        self.rules[point.index()]
    }

    /// Parses the `EPIM_FAULTS` spec grammar.
    ///
    /// `;`-separated clauses, each `name` or `name:key=value,…` with
    /// keys `nth`, `every`, `prob`, `ms` (delay milliseconds) and `max`
    /// (fire cap). Unknown names or keys are hard errors — a chaos run
    /// with a typo'd spec must not silently test nothing.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, args) = match clause.split_once(':') {
                Some((n, a)) => (n.trim(), Some(a)),
                None => (clause, None),
            };
            let point = FaultPoint::from_name(name)
                .ok_or_else(|| format!("unknown fault point `{name}`"))?;
            let mut rule = FaultRule::default();
            if let Some(args) = args {
                for kv in args.split(',') {
                    let kv = kv.trim();
                    if kv.is_empty() {
                        continue;
                    }
                    let (key, value) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("expected key=value in `{kv}`"))?;
                    let (key, value) = (key.trim(), value.trim());
                    let parse_u64 = || {
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("`{key}` wants an integer, got `{value}`"))
                    };
                    match key {
                        "nth" => rule.nth = parse_u64()?,
                        "every" => rule.every = parse_u64()?,
                        "ms" => rule.delay_ms = parse_u64()?,
                        "max" => rule.max_fires = parse_u64()?,
                        "prob" => {
                            rule.prob = value
                                .parse::<f64>()
                                .map_err(|_| format!("`prob` wants a float, got `{value}`"))?;
                            if !(0.0..=1.0).contains(&rule.prob) {
                                return Err(format!("`prob` must be in [0,1], got {}", rule.prob));
                            }
                        }
                        other => return Err(format!("unknown fault key `{other}`")),
                    }
                }
            }
            if rule.nth == 0 {
                return Err("`nth` is 1-based; 0 is invalid".to_string());
            }
            plan.rules[point.index()] = Some(rule);
        }
        Ok(plan)
    }
}

/// An installed plan plus its per-point hit and fire counters.
struct Installed {
    plan: FaultPlan,
    hits: [AtomicU64; POINT_COUNT],
    fired: [AtomicU64; POINT_COUNT],
}

impl Installed {
    fn new(plan: FaultPlan) -> Installed {
        Installed {
            plan,
            hits: Default::default(),
            fired: Default::default(),
        }
    }

    /// Records one hit at `point`; returns the firing rule if it fires.
    fn check(&self, point: FaultPoint) -> Option<FaultRule> {
        let idx = point.index();
        let rule = self.plan.rules[idx]?;
        let hit = self.hits[idx].fetch_add(1, Ordering::Relaxed) + 1;
        if hit < rule.nth {
            return None;
        }
        if rule.every == 0 {
            if hit != rule.nth {
                return None;
            }
        } else if !(hit - rule.nth).is_multiple_of(rule.every) {
            return None;
        }
        if rule.prob < 1.0 && !roll(self.plan.seed, idx, hit, rule.prob) {
            return None;
        }
        if rule.max_fires > 0 {
            // Claim one of the bounded fire slots atomically, so
            // concurrent eligible hits can never overshoot the cap.
            let claimed = self.fired[idx].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                (f < rule.max_fires).then_some(f + 1)
            });
            if claimed.is_err() {
                return None;
            }
        } else {
            self.fired[idx].fetch_add(1, Ordering::Relaxed);
        }
        Some(rule)
    }
}

/// Deterministic per-hit coin flip: hash `(seed, point, hit)` into
/// [0, 1) and compare against `prob`. No shared RNG stream, so the
/// outcome for a given hit index is independent of thread interleaving.
fn roll(seed: u64, idx: usize, hit: u64, prob: f64) -> bool {
    let h = splitmix64(seed ^ splitmix64(((idx as u64) << 56) ^ hit));
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < prob
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 0 = uninitialised, 1 = inactive, 2 = a plan is installed.
static STATE: AtomicU8 = AtomicU8::new(0);
static PLAN: Mutex<Option<Arc<Installed>>> = Mutex::new(None);

/// Whether any fault plan is installed. The hot-path guard: one relaxed
/// atomic load once initialised.
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let plan = match std::env::var("EPIM_FAULTS") {
        Ok(spec) if !spec.is_empty() && spec != "0" => {
            let seed = std::env::var("EPIM_FAULT_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            match FaultPlan::parse(&spec, seed) {
                Ok(plan) => Some(plan),
                // A typo'd chaos spec must not silently test nothing.
                Err(err) => panic!("invalid EPIM_FAULTS spec: {err}"),
            }
        }
        _ => None,
    };
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    // Another thread may have initialised or installed concurrently;
    // first writer wins, everyone re-reads the settled state.
    if STATE.load(Ordering::Relaxed) == 0 {
        match plan {
            Some(plan) => {
                *slot = Some(Arc::new(Installed::new(plan)));
                STATE.store(2, Ordering::Relaxed);
            }
            None => STATE.store(1, Ordering::Relaxed),
        }
    }
    drop(slot);
    STATE.load(Ordering::Relaxed) == 2
}

/// Installs a plan, resetting all hit and fire counters.
pub fn install(plan: FaultPlan) {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(Arc::new(Installed::new(plan)));
    STATE.store(2, Ordering::Relaxed);
}

/// Removes any installed plan; [`active`] returns `false` afterwards
/// (the environment is *not* re-consulted).
pub fn clear() {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
    STATE.store(1, Ordering::Relaxed);
}

fn installed() -> Option<Arc<Installed>> {
    if !active() {
        return None;
    }
    PLAN.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(Arc::clone)
}

/// Records a hit at `point` and reports whether its rule fires.
/// Always `false` when no plan is installed.
#[inline]
pub fn fires(point: FaultPoint) -> bool {
    if !active() {
        return false;
    }
    fires_slow(point)
}

#[cold]
fn fires_slow(point: FaultPoint) -> bool {
    installed().is_some_and(|inst| inst.check(point).is_some())
}

/// Records a hit at a delay-style `point`; returns the configured sleep
/// duration when the rule fires.
#[inline]
pub fn fire_delay(point: FaultPoint) -> Option<Duration> {
    if !active() {
        return None;
    }
    fire_delay_slow(point)
}

#[cold]
fn fire_delay_slow(point: FaultPoint) -> Option<Duration> {
    installed()?
        .check(point)
        .map(|rule| Duration::from_millis(rule.delay_ms))
}

/// How many times `point` has fired under the current plan (0 when no
/// plan is installed). Test/diagnostic introspection.
pub fn fire_count(point: FaultPoint) -> u64 {
    installed().map_or(0, |inst| inst.fired[point.index()].load(Ordering::Relaxed))
}

/// How many times `point` has been *hit* under the current plan.
pub fn hit_count(point: FaultPoint) -> u64 {
    installed().map_or(0, |inst| inst.hits[point.index()].load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global fault state is process-wide; serialise the tests touching it.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn parse_defaults_and_keys() {
        let plan = FaultPlan::parse("worker_panic", 7).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.rule(FaultPoint::WorkerPanic),
            Some(FaultRule::default())
        );
        assert_eq!(plan.rule(FaultPoint::ConnReset), None);

        let plan = FaultPlan::parse(
            "stage_delay:nth=3,every=2,ms=5,max=4,prob=0.5; conn_reset:nth=9",
            1,
        )
        .unwrap();
        let rule = plan.rule(FaultPoint::StageDelay).unwrap();
        assert_eq!(
            (rule.nth, rule.every, rule.delay_ms, rule.max_fires),
            (3, 2, 5, 4)
        );
        assert_eq!(rule.prob, 0.5);
        assert_eq!(plan.rule(FaultPoint::ConnReset).unwrap().nth, 9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("warp_core_breach", 0).is_err());
        assert!(FaultPlan::parse("worker_panic:wat=1", 0).is_err());
        assert!(FaultPlan::parse("worker_panic:nth=soon", 0).is_err());
        assert!(FaultPlan::parse("worker_panic:prob=1.5", 0).is_err());
        assert!(FaultPlan::parse("worker_panic:nth=0", 0).is_err());
        assert!(FaultPlan::parse("worker_panic:nth", 0).is_err());
    }

    #[test]
    fn nth_every_max_semantics() {
        let _g = gate();
        install(FaultPlan::new(0).with_rule(
            FaultPoint::WorkerPanic,
            FaultRule {
                nth: 3,
                every: 2,
                max_fires: 2,
                ..FaultRule::default()
            },
        ));
        // Hits 1..=8: eligible at 3, 5, 7 — capped at two fires.
        let fired: Vec<bool> = (1..=8).map(|_| fires(FaultPoint::WorkerPanic)).collect();
        assert_eq!(
            fired,
            [false, false, true, false, true, false, false, false]
        );
        assert_eq!(fire_count(FaultPoint::WorkerPanic), 2);
        assert_eq!(hit_count(FaultPoint::WorkerPanic), 8);
        clear();
    }

    #[test]
    fn once_at_fires_exactly_once() {
        let _g = gate();
        install(FaultPlan::new(0).with_rule(FaultPoint::LockPanic, FaultRule::once_at(2)));
        let fired: Vec<bool> = (1..=6).map(|_| fires(FaultPoint::LockPanic)).collect();
        assert_eq!(fired, [false, true, false, false, false, false]);
        clear();
    }

    #[test]
    fn never_rule_is_armed_but_silent() {
        let _g = gate();
        let mut plan = FaultPlan::new(0);
        for p in ALL_POINTS {
            plan = plan.with_rule(p, FaultRule::never());
        }
        install(plan);
        assert!(active());
        for _ in 0..100 {
            assert!(!fires(FaultPoint::WorkerPanic));
            assert!(fire_delay(FaultPoint::StageDelay).is_none());
        }
        assert_eq!(hit_count(FaultPoint::WorkerPanic), 100);
        assert_eq!(fire_count(FaultPoint::WorkerPanic), 0);
        clear();
        assert!(!active());
    }

    #[test]
    fn cleared_state_never_fires_or_counts() {
        let _g = gate();
        clear();
        assert!(!fires(FaultPoint::ConnReset));
        assert!(fire_delay(FaultPoint::StageDelay).is_none());
        assert_eq!(hit_count(FaultPoint::ConnReset), 0);
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let _g = gate();
        let plan = |seed| {
            FaultPlan::new(seed).with_rule(
                FaultPoint::ConnReset,
                FaultRule {
                    prob: 0.5,
                    ..FaultRule::default()
                },
            )
        };
        let run = |seed| {
            install(plan(seed));
            let v: Vec<bool> = (0..64).map(|_| fires(FaultPoint::ConnReset)).collect();
            clear();
            v
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same fire pattern");
        let c = run(43);
        assert_ne!(a, c, "different seeds must differ somewhere in 64 flips");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 flips, got {hits}");
    }

    #[test]
    fn delay_rule_reports_duration() {
        let _g = gate();
        install(FaultPlan::new(0).with_rule(
            FaultPoint::StageDelay,
            FaultRule {
                delay_ms: 7,
                every: 2,
                ..FaultRule::default()
            },
        ));
        assert_eq!(
            fire_delay(FaultPoint::StageDelay),
            Some(Duration::from_millis(7))
        );
        assert_eq!(fire_delay(FaultPoint::StageDelay), None);
        assert_eq!(
            fire_delay(FaultPoint::StageDelay),
            Some(Duration::from_millis(7))
        );
        clear();
    }

    #[test]
    fn concurrent_hits_respect_the_fire_cap() {
        let _g = gate();
        install(FaultPlan::new(0).with_rule(
            FaultPoint::TornFrame,
            FaultRule {
                max_fires: 3,
                ..FaultRule::default()
            },
        ));
        let total: u64 = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| (0..256).filter(|_| fires(FaultPoint::TornFrame)).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(total, 3, "cap must hold under concurrency");
        assert_eq!(hit_count(FaultPoint::TornFrame), 4 * 256);
        clear();
    }
}
