//! # epim-search
//!
//! PIM-aware layer-wise epitome design via evolutionary search — the
//! paper's §5.2 and Algorithm 1.
//!
//! Each layer of a network picks one epitome candidate from a per-layer
//! choice set `C`; the full design space is `N^l` combinations (the paper
//! counts 20,676,608 for ResNet-50). The search maximizes
//!
//! ```text
//! Reward = m / Latency(E)   or   m / Energy(E)          (Eq. 6)
//! m = 0 if #Crossbar(E) > Budget, else 1                (Eq. 7)
//! ```
//!
//! with elitist selection and per-layer random mutation, exactly the loop
//! of Algorithm 1.
//!
//! ## Example
//!
//! ```
//! use epim_search::{EvoSearch, Objective, SearchConfig, SearchLayer};
//! use epim_core::{ConvShape, EpitomeDesigner};
//! use epim_pim::{CostModel, Precision};
//!
//! # fn main() -> Result<(), epim_search::SearchError> {
//! let designer = EpitomeDesigner::new(128, 128);
//! let conv = ConvShape::new(256, 128, 3, 3);
//! let layers = vec![SearchLayer {
//!     conv,
//!     out_pixels: 14 * 14,
//!     candidates: designer.candidates(conv)?,
//! }];
//! let cfg = SearchConfig { iterations: 5, ..SearchConfig::default() };
//! let search = EvoSearch::new(layers, CostModel::default(), Precision::new(9, 9), cfg)?;
//! let best = search.run();
//! assert!(best.reward > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod evo;

pub use error::SearchError;
pub use evo::{
    random_search, BestDesign, EvoSearch, Objective, SearchConfig, SearchLayer, SearchTrace,
};
