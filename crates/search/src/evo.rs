//! The evolutionary loop of Algorithm 1.

use crate::SearchError;
use epim_core::EpitomeSpec;
use epim_pim::{CostModel, LayerCosts, Precision};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the reward minimizes (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// `Reward = m / Latency(E)` — the paper's "Latency-Opt" rows.
    Latency,
    /// `Reward = m / Energy(E)` — the "Energy-Opt" rows.
    Energy,
    /// `Reward = m / EDP(E)` — an extension the paper's Figure 4c
    /// motivates (energy-delay product).
    Edp,
}

/// One layer of the search problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchLayer {
    /// The convolution being replaced.
    pub conv: epim_core::ConvShape,
    /// Output pixels this layer produces per image.
    pub out_pixels: usize,
    /// The candidate epitome set `C` for this layer.
    pub candidates: Vec<EpitomeSpec>,
}

/// Search hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Population size.
    pub population: usize,
    /// Generations (Algorithm 1's `Max Iteration`).
    pub iterations: usize,
    /// Fraction of the population kept as parents each generation.
    pub parent_fraction: f64,
    /// Per-layer probability that a child mutates that layer's choice.
    pub mutation_rate: f64,
    /// Crossbar budget for the indicator `m` (Eq. 7). `usize::MAX`
    /// disables the constraint.
    pub crossbar_budget: usize,
    /// What to minimize.
    pub objective: Objective,
    /// RNG seed (the search is fully deterministic given this).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            population: 32,
            iterations: 30,
            parent_fraction: 0.25,
            mutation_rate: 0.15,
            crossbar_budget: usize::MAX,
            objective: Objective::Latency,
            seed: 0,
        }
    }
}

/// The best design found, with its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BestDesign {
    /// Candidate index chosen for each layer.
    pub genome: Vec<usize>,
    /// Reward of the design (Eq. 6).
    pub reward: f64,
    /// Summed layer costs of the design.
    pub costs: LayerCosts,
}

/// Per-generation best rewards — for convergence analysis and the
/// "reward is non-decreasing under elitism" invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Best reward after each generation.
    pub best_rewards: Vec<f64>,
    /// Number of budget-feasible individuals evaluated per generation.
    pub feasible_counts: Vec<usize>,
}

/// The evolutionary search engine.
#[derive(Debug, Clone)]
pub struct EvoSearch {
    layers: Vec<SearchLayer>,
    model: CostModel,
    precision: Precision,
    cfg: SearchConfig,
}

impl EvoSearch {
    /// Creates a search over `layers`.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::InvalidProblem`] for an empty problem, a
    /// layer with no candidates, or degenerate hyperparameters.
    pub fn new(
        layers: Vec<SearchLayer>,
        model: CostModel,
        precision: Precision,
        cfg: SearchConfig,
    ) -> Result<Self, SearchError> {
        if layers.is_empty() {
            return Err(SearchError::invalid("no layers"));
        }
        for (i, l) in layers.iter().enumerate() {
            if l.candidates.is_empty() {
                return Err(SearchError::invalid(format!("layer {i} has no candidates")));
            }
            for c in &l.candidates {
                if c.conv() != l.conv {
                    return Err(SearchError::invalid(format!(
                        "layer {i} candidate targets conv {} but layer is {}",
                        c.conv(),
                        l.conv
                    )));
                }
            }
        }
        if cfg.population == 0 || cfg.iterations == 0 {
            return Err(SearchError::invalid(
                "population and iterations must be nonzero",
            ));
        }
        if !(0.0..=1.0).contains(&cfg.mutation_rate) || !(0.0..=1.0).contains(&cfg.parent_fraction)
        {
            return Err(SearchError::invalid("rates must be within [0, 1]"));
        }
        Ok(EvoSearch {
            layers,
            model,
            precision,
            cfg,
        })
    }

    /// The design-space size `N^l` (saturating; the paper quotes
    /// 20,676,608 for its ResNet-50 problem).
    pub fn design_space(&self) -> u128 {
        self.layers.iter().fold(1u128, |acc, l| {
            acc.saturating_mul(l.candidates.len() as u128)
        })
    }

    /// Evaluates one genome: summed layer costs and the Eq. 6 reward.
    pub fn evaluate(&self, genome: &[usize]) -> (LayerCosts, f64) {
        let mut total: Option<LayerCosts> = None;
        for (layer, &gi) in self.layers.iter().zip(genome) {
            let spec = &layer.candidates[gi];
            let c = self
                .model
                .epitome_layer(spec, layer.out_pixels, self.precision);
            total = Some(match total {
                Some(t) => t.combine(&c),
                None => c,
            });
        }
        let costs = total.expect("at least one layer");
        let m = if costs.crossbars > self.cfg.crossbar_budget {
            0.0
        } else {
            1.0
        };
        let metric = match self.cfg.objective {
            Objective::Latency => costs.latency_ns,
            Objective::Energy => costs.energy_pj,
            Objective::Edp => costs.edp(),
        };
        let reward = if metric > 0.0 { m / metric } else { 0.0 };
        (costs, reward)
    }

    /// Runs the search and returns the best design.
    pub fn run(&self) -> BestDesign {
        self.run_traced().0
    }

    /// Runs the search, also returning the per-generation trace.
    pub fn run_traced(&self) -> (BestDesign, SearchTrace) {
        self.run_seeded(&[])
    }

    /// Runs the search with seed genomes injected into the initial
    /// population (elitism guarantees the result is at least as good as
    /// the best feasible seed). Seeds with out-of-range genes or wrong
    /// length are ignored.
    pub fn run_seeded(&self, seeds: &[Vec<usize>]) -> (BestDesign, SearchTrace) {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        // Line 1: initialize the population — seeds first, then uniform
        // random genomes.
        let mut population: Vec<Vec<usize>> = seeds
            .iter()
            .filter(|g| {
                g.len() == self.layers.len()
                    && g.iter()
                        .zip(&self.layers)
                        .all(|(&gi, l)| gi < l.candidates.len())
            })
            .take(self.cfg.population)
            .cloned()
            .collect();
        while population.len() < self.cfg.population {
            population.push(
                self.layers
                    .iter()
                    .map(|l| rng.gen_range(0..l.candidates.len()))
                    .collect(),
            );
        }

        let mut trace = SearchTrace {
            best_rewards: Vec::new(),
            feasible_counts: Vec::new(),
        };
        let mut best: Option<BestDesign> = None;

        for _iter in 0..self.cfg.iterations {
            // Lines 3-7: evaluate and filter by the budget (reward already
            // encodes the indicator m, so infeasible designs sort last).
            let mut scored: Vec<(Vec<usize>, LayerCosts, f64)> = population
                .drain(..)
                .map(|g| {
                    let (c, r) = self.evaluate(&g);
                    (g, c, r)
                })
                .collect();
            trace
                .feasible_counts
                .push(scored.iter().filter(|(_, _, r)| *r > 0.0).count());

            // Line 9: select parents by reward.
            scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            let n_parents = ((self.cfg.population as f64 * self.cfg.parent_fraction).ceil()
                as usize)
                .clamp(1, scored.len());

            if best
                .as_ref()
                .map(|b| scored[0].2 > b.reward)
                .unwrap_or(true)
            {
                best = Some(BestDesign {
                    genome: scored[0].0.clone(),
                    reward: scored[0].2,
                    costs: scored[0].1,
                });
            }
            trace
                .best_rewards
                .push(best.as_ref().map(|b| b.reward).unwrap_or(0.0));

            // Lines 11-14: keep parents, refill with mutated children.
            let parents: Vec<Vec<usize>> = scored
                .iter()
                .take(n_parents)
                .map(|(g, _, _)| g.clone())
                .collect();
            population.extend(parents.iter().cloned());
            let mut pi = 0usize;
            while population.len() < self.cfg.population {
                let parent = &parents[pi % parents.len()];
                pi += 1;
                let child = self.mutate(parent, &mut rng);
                population.push(child);
            }
        }
        (best.expect("iterations >= 1"), trace)
    }

    /// Mutation operator (Algorithm 1 line 12): each layer's choice is
    /// re-rolled with probability `mutation_rate`; at least one layer
    /// always mutates so children differ from their parents.
    fn mutate(&self, parent: &[usize], rng: &mut SmallRng) -> Vec<usize> {
        let mut child = parent.to_vec();
        let mut mutated = false;
        for (i, l) in self.layers.iter().enumerate() {
            if rng.gen_bool(self.cfg.mutation_rate) {
                child[i] = rng.gen_range(0..l.candidates.len());
                mutated = true;
            }
        }
        if !mutated {
            let i = rng.gen_range(0..self.layers.len());
            child[i] = rng.gen_range(0..self.layers[i].candidates.len());
        }
        child
    }
}

/// Uniform random search over the same problem — the sanity baseline the
/// evolution must beat (or match on tiny spaces).
pub fn random_search(search: &EvoSearch, samples: usize, seed: u64) -> BestDesign {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<BestDesign> = None;
    for _ in 0..samples.max(1) {
        let genome: Vec<usize> = search
            .layers
            .iter()
            .map(|l| rng.gen_range(0..l.candidates.len()))
            .collect();
        let (costs, reward) = search.evaluate(&genome);
        if best.as_ref().map(|b| reward > b.reward).unwrap_or(true) {
            best = Some(BestDesign {
                genome,
                reward,
                costs,
            });
        }
    }
    best.expect("samples >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use epim_core::{ConvShape, EpitomeDesigner};

    fn problem(n_layers: usize) -> Vec<SearchLayer> {
        let d = EpitomeDesigner::new(128, 128);
        (0..n_layers)
            .map(|i| {
                let conv = ConvShape::new(256 << (i % 2), 128, 3, 3);
                SearchLayer {
                    conv,
                    out_pixels: 14 * 14,
                    candidates: d.candidates(conv).unwrap(),
                }
            })
            .collect()
    }

    fn search(layers: Vec<SearchLayer>, cfg: SearchConfig) -> EvoSearch {
        EvoSearch::new(layers, CostModel::default(), Precision::new(9, 9), cfg).unwrap()
    }

    #[test]
    fn validation_rejects_bad_problems() {
        let cfg = SearchConfig::default();
        assert!(EvoSearch::new(vec![], CostModel::default(), Precision::new(9, 9), cfg).is_err());
        let mut layers = problem(1);
        layers[0].candidates.clear();
        assert!(EvoSearch::new(layers, CostModel::default(), Precision::new(9, 9), cfg).is_err());
        let layers = problem(1);
        let bad = SearchConfig {
            population: 0,
            ..cfg
        };
        assert!(EvoSearch::new(
            layers.clone(),
            CostModel::default(),
            Precision::new(9, 9),
            bad
        )
        .is_err());
        let bad = SearchConfig {
            mutation_rate: 2.0,
            ..cfg
        };
        assert!(EvoSearch::new(layers, CostModel::default(), Precision::new(9, 9), bad).is_err());
    }

    #[test]
    fn candidate_conv_mismatch_rejected() {
        let d = EpitomeDesigner::new(128, 128);
        let conv_a = ConvShape::new(128, 64, 3, 3);
        let conv_b = ConvShape::new(256, 64, 3, 3);
        let layers = vec![SearchLayer {
            conv: conv_a,
            out_pixels: 10,
            candidates: d.candidates(conv_b).unwrap(),
        }];
        assert!(EvoSearch::new(
            layers,
            CostModel::default(),
            Precision::new(9, 9),
            SearchConfig::default()
        )
        .is_err());
    }

    #[test]
    fn best_reward_non_decreasing() {
        let s = search(
            problem(6),
            SearchConfig {
                iterations: 20,
                seed: 3,
                ..Default::default()
            },
        );
        let (_, trace) = s.run_traced();
        for w in trace.best_rewards.windows(2) {
            assert!(w[1] >= w[0], "elitism violated: {:?}", trace.best_rewards);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SearchConfig {
            iterations: 8,
            seed: 7,
            ..Default::default()
        };
        let a = search(problem(4), cfg).run();
        let b = search(problem(4), cfg).run();
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.reward, b.reward);
    }

    #[test]
    fn budget_indicator_zeroes_reward() {
        // An impossible budget makes every design infeasible: reward 0.
        let cfg = SearchConfig {
            crossbar_budget: 0,
            iterations: 3,
            ..Default::default()
        };
        let s = search(problem(2), cfg);
        let best = s.run();
        assert_eq!(best.reward, 0.0);
        // A generous budget yields positive reward.
        let cfg = SearchConfig {
            crossbar_budget: usize::MAX,
            iterations: 3,
            ..Default::default()
        };
        let best = search(problem(2), cfg).run();
        assert!(best.reward > 0.0);
        assert!(best.costs.crossbars > 0);
    }

    #[test]
    fn budget_respected_when_feasible() {
        // Budget chosen between min and max: the winner must satisfy it.
        let s = search(problem(4), SearchConfig::default());
        let unconstrained = s.run();
        let budget = unconstrained.costs.crossbars + 50;
        let cfg = SearchConfig {
            crossbar_budget: budget,
            iterations: 15,
            ..Default::default()
        };
        let best = search(problem(4), cfg).run();
        assert!(best.costs.crossbars <= budget);
        assert!(best.reward > 0.0);
    }

    #[test]
    fn evolution_beats_or_matches_its_own_first_generation() {
        let s = search(
            problem(8),
            SearchConfig {
                iterations: 25,
                seed: 11,
                ..Default::default()
            },
        );
        let (_, trace) = s.run_traced();
        let first = trace.best_rewards.first().unwrap();
        let last = trace.best_rewards.last().unwrap();
        assert!(last >= first);
        // On a real multi-layer problem, it should strictly improve.
        assert!(last > first, "no improvement over 25 generations");
    }

    #[test]
    fn evolution_competitive_with_random_at_equal_evals() {
        let cfg = SearchConfig {
            iterations: 20,
            population: 24,
            seed: 5,
            ..Default::default()
        };
        let s = search(problem(8), cfg);
        let evo = s.run();
        let rand_best = random_search(&s, 20 * 24, 5);
        // Evolution must be at least as good (allow tiny numerical slack).
        assert!(
            evo.reward >= rand_best.reward * 0.98,
            "evo {} rand {}",
            evo.reward,
            rand_best.reward
        );
    }

    #[test]
    fn objectives_optimize_their_metric() {
        // Small problem + long run so both searches converge; stochastic
        // search warrants a tolerance rather than exact dominance.
        let mk = |objective| {
            let cfg = SearchConfig {
                iterations: 60,
                population: 32,
                seed: 9,
                objective,
                ..Default::default()
            };
            search(problem(4), cfg).run()
        };
        let lat = mk(Objective::Latency);
        let en = mk(Objective::Energy);
        assert!(
            lat.costs.latency_ns <= en.costs.latency_ns * 1.10,
            "lat-opt {} vs energy-opt {}",
            lat.costs.latency_ns,
            en.costs.latency_ns
        );
        assert!(
            en.costs.energy_pj <= lat.costs.energy_pj * 1.10,
            "energy-opt {} vs lat-opt {}",
            en.costs.energy_pj,
            lat.costs.energy_pj
        );
    }

    #[test]
    fn design_space_size() {
        let s = search(problem(3), SearchConfig::default());
        let expected: u128 = s
            .layers
            .iter()
            .map(|l| l.candidates.len() as u128)
            .product();
        assert_eq!(s.design_space(), expected);
        assert!(expected > 1);
    }

    #[test]
    fn evaluate_consistent_with_run() {
        let s = search(
            problem(3),
            SearchConfig {
                iterations: 5,
                ..Default::default()
            },
        );
        let best = s.run();
        let (costs, reward) = s.evaluate(&best.genome);
        assert_eq!(costs, best.costs);
        assert_eq!(reward, best.reward);
    }
}
