use std::error::Error;
use std::fmt;

use epim_core::EpitomeError;

/// Error type for the evolutionary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The search problem was malformed (no layers, a layer without
    /// candidates, zero population, ...).
    InvalidProblem {
        /// What was wrong.
        what: String,
    },
    /// Error from the epitome layer.
    Epitome(EpitomeError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::InvalidProblem { what } => write!(f, "invalid search problem: {what}"),
            SearchError::Epitome(e) => write!(f, "epitome error: {e}"),
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Epitome(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EpitomeError> for SearchError {
    fn from(e: EpitomeError) -> Self {
        SearchError::Epitome(e)
    }
}

impl SearchError {
    /// Convenience constructor for [`SearchError::InvalidProblem`].
    pub fn invalid(what: impl Into<String>) -> Self {
        SearchError::InvalidProblem { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SearchError::invalid("empty");
        assert!(e.to_string().contains("empty"));
        assert!(e.source().is_none());
        let e: SearchError = EpitomeError::geometry("g").into();
        assert!(e.source().is_some());
    }
}
