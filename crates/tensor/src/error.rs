use std::error::Error;
use std::fmt;

/// Error type for tensor operations.
///
/// Returned by fallible operations in this crate, e.g. shape mismatches in
/// [`crate::Tensor::matmul`] or invalid convolution geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or broadcast) do not.
    ShapeMismatch {
        /// Shape of the left / expected operand.
        expected: Vec<usize>,
        /// Shape of the right / actual operand.
        actual: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// A tensor of a particular rank was required.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank that was provided.
        actual: usize,
        /// The operation that failed.
        op: &'static str,
    },
    /// An index or slice was out of bounds for the tensor's shape.
    OutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A parameter had an invalid value (zero stride, empty shape, ...).
    InvalidArgument {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
            ),
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "rank mismatch in {op}: expected rank {expected}, got rank {actual}"
            ),
            TensorError::OutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidArgument { what } => {
                write!(f, "invalid argument: {what}")
            }
        }
    }
}

impl Error for TensorError {}

impl TensorError {
    /// Convenience constructor for [`TensorError::InvalidArgument`].
    pub fn invalid(what: impl Into<String>) -> Self {
        TensorError::InvalidArgument { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeMismatch {
                expected: vec![2, 3],
                actual: vec![3, 2],
                op: "matmul",
            },
            TensorError::RankMismatch {
                expected: 4,
                actual: 2,
                op: "conv2d",
            },
            TensorError::OutOfBounds {
                index: vec![9],
                shape: vec![3],
            },
            TensorError::invalid("stride must be nonzero"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
