//! Loss functions.

use super::activation::softmax_rows;
use crate::{Tensor, TensorError};

/// Result of [`cross_entropy`]: the scalar loss, the gradient w.r.t. the
/// logits, and the batch accuracy.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, `(N, K)`, already divided by `N`.
    pub dlogits: Tensor,
    /// Fraction of rows whose argmax equals the label.
    pub accuracy: f32,
}

/// Softmax cross-entropy with integer labels.
///
/// `logits` is `(N, K)`; `labels` holds `N` class indices `< K`.
///
/// # Errors
///
/// Returns shape errors if `labels.len() != N` or any label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<CrossEntropyOutput, TensorError> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
            op: "cross_entropy",
        });
    }
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != n {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n],
            actual: vec![labels.len()],
            op: "cross_entropy (labels)",
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(TensorError::OutOfBounds {
            index: vec![bad],
            shape: vec![k],
        });
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    let mut dlogits = probs.clone();
    {
        let dd = dlogits.data_mut();
        for (i, &label) in labels.iter().enumerate() {
            let row = &probs.data()[i * k..(i + 1) * k];
            loss -= row[label].max(1e-12).ln();
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                .map(|(j, _)| j)
                .expect("nonempty row");
            if argmax == label {
                correct += 1;
            }
            dd[i * k + label] -= 1.0;
        }
        for v in dd.iter_mut() {
            *v /= n as f32;
        }
    }
    Ok(CrossEntropyOutput {
        loss: loss / n as f32,
        dlogits,
        accuracy: correct as f32 / n as f32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let out = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-3);
        assert_eq!(out.accuracy, 1.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = Tensor::zeros(&[4, 8]);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (8.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1, 0.5, -0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for flat in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[flat] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[flat] -= eps;
            let fd = (cross_entropy(&lp, &labels).unwrap().loss
                - cross_entropy(&lm, &labels).unwrap().loss)
                / (2.0 * eps);
            assert!((fd - out.dlogits.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }
}
