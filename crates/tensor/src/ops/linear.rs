//! Fully-connected (linear) layer.

use crate::ops::gemm;
use crate::{Tensor, TensorError};

/// Linear layer forward: `y = x W^T + b`.
///
/// `x` is `(N, In)`, `weight` is `(Out, In)`, `bias` (optional) `(Out)`.
/// Returns `(N, Out)`.
///
/// Runs on the stride-aware GEMM kernel: `Wᵀ` is read through strides (no
/// transpose copy) and the bias is fused into the output prefill instead of
/// a second pass.
///
/// # Errors
///
/// Returns rank/shape errors when operands disagree.
pub fn linear(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor, TensorError> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "linear",
        });
    }
    if weight.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: weight.rank(),
            op: "linear",
        });
    }
    let (n, in_features) = (x.shape()[0], x.shape()[1]);
    let (out_features, w_in) = (weight.shape()[0], weight.shape()[1]);
    if w_in != in_features {
        return Err(TensorError::ShapeMismatch {
            expected: vec![in_features],
            actual: vec![w_in],
            op: "linear",
        });
    }
    if let Some(b) = bias {
        if b.shape() != [out_features] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![out_features],
                actual: b.shape().to_vec(),
                op: "linear (bias)",
            });
        }
    }
    let mut y = vec![0.0f32; n * out_features];
    match bias {
        Some(b) => gemm::gemm_nt_bias_col(
            n,
            out_features,
            in_features,
            x.data(),
            weight.data(),
            b.data(),
            &mut y,
        ),
        None => gemm::gemm_nt(
            n,
            out_features,
            in_features,
            x.data(),
            weight.data(),
            &mut y,
        ),
    }
    Tensor::from_vec(y, &[n, out_features])
}

/// Gradients produced by [`linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient w.r.t. the input, `(N, In)`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight, `(Out, In)`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `(Out)`.
    pub db: Tensor,
}

/// Backward pass of [`linear`].
///
/// `dW = dYᵀ · X` runs through [`gemm::gemm_tn`], so no transpose copy is
/// materialized.
///
/// # Errors
///
/// Returns rank/shape errors when operands disagree with the forward
/// geometry.
pub fn linear_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
) -> Result<LinearGrads, TensorError> {
    let (n, in_features) = (x.shape()[0], x.shape()[1]);
    let out_features = weight.shape()[0];
    if dy.shape() != [n, out_features] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, out_features],
            actual: dy.shape().to_vec(),
            op: "linear_backward",
        });
    }
    let dx = dy.matmul(weight)?;
    let mut dw = vec![0.0f32; out_features * in_features];
    gemm::gemm_tn(out_features, in_features, n, dy.data(), x.data(), &mut dw);
    let dw = Tensor::from_vec(dw, &[out_features, in_features])?;
    let mut db = Tensor::zeros(&[out_features]);
    {
        let bd = db.data_mut();
        for row in dy.data().chunks(out_features) {
            for (b, &v) in bd.iter_mut().zip(row) {
                *b += v;
            }
        }
    }
    Ok(LinearGrads { dx, dw, db })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.data(), &[1.5, 1.5, 3.0]);
    }

    #[test]
    fn bias_shape_checked() {
        let x = Tensor::zeros(&[1, 2]);
        let w = Tensor::zeros(&[3, 2]);
        let b = Tensor::zeros(&[2]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn backward_finite_difference() {
        let mut r = crate::rng::seeded(41);
        let x = crate::init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[2, 4], -1.0, 1.0, &mut r);
        let y = linear(&x, &w, None).unwrap();
        let g = linear_backward(&x, &w, &y).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| linear(x, w, None).unwrap().norm_sq() / 2.0;
        for flat in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((fd - g.dw.data()[flat]).abs() < 0.02 * (1.0 + fd.abs()));
        }
        for flat in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((fd - g.dx.data()[flat]).abs() < 0.02 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn db_sums_over_batch() {
        let x = Tensor::ones(&[4, 2]);
        let w = Tensor::ones(&[3, 2]);
        let dy = Tensor::ones(&[4, 3]);
        let g = linear_backward(&x, &w, &dy).unwrap();
        assert_eq!(g.db.data(), &[4.0, 4.0, 4.0]);
    }
}
