//! Spatial pooling operators.

use crate::{Tensor, TensorError};
use epim_simd::{dispatch, ScalarSimd, Simd, SimdOp};

use super::conv::conv2d_out_dims;
use super::Conv2dCfg;

/// Window/stride/padding configuration for pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolCfg {
    /// Square window size.
    pub window: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides). Max pooling ignores padded
    /// positions (they never win); average pooling counts them as zeros
    /// (the `count_include_pad` convention). The ResNet stem's 3×3/2
    /// max pool with padding 1 is the canonical user.
    pub padding: usize,
}

impl PoolCfg {
    /// A pooling config without padding.
    pub fn new(window: usize, stride: usize) -> Self {
        PoolCfg {
            window,
            stride,
            padding: 0,
        }
    }

    fn as_conv(&self) -> Conv2dCfg {
        Conv2dCfg {
            stride: self.stride,
            padding: self.padding,
        }
    }
}

/// Average pooling over `(N, C, H, W)`.
///
/// Padded positions contribute zeros to the window sum but still count in
/// the divisor (window area), matching the usual `count_include_pad`
/// default.
///
/// # Errors
///
/// Returns geometry errors if the window does not fit.
pub fn avg_pool2d(x: &Tensor, cfg: PoolCfg) -> Result<Tensor, TensorError> {
    let area = (cfg.window * cfg.window) as f32;
    pool(x, cfg, AvgReduce { area })
}

/// Max pooling over `(N, C, H, W)`.
///
/// Padded positions are skipped (a pad never wins the max). Inputs are
/// assumed finite; on a `-0.0`/`+0.0` tie the first value seen in window
/// order wins (pinned by [`Simd::max`] — the old `f32::max` fold left
/// that sign to the optimizer).
///
/// # Errors
///
/// Returns geometry errors if the window does not fit.
pub fn max_pool2d(x: &Tensor, cfg: PoolCfg) -> Result<Tensor, TensorError> {
    pool(x, cfg, MaxReduce)
}

fn pool<R: PoolReduce>(x: &Tensor, cfg: PoolCfg, red: R) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "pool2d",
        });
    }
    let dims = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = pool_out_dims(dims.2, dims.3, cfg)?;
    let mut out = Tensor::zeros(&[dims.0, dims.1, oh, ow]);
    dispatch(Pool2dOp {
        xd: x.data(),
        dims,
        cfg,
        odims: (oh, ow),
        out: out.data_mut(),
        red,
    });
    Ok(out)
}

/// Validates the pooling geometry and returns the output spatial dims.
fn pool_out_dims(h: usize, w: usize, cfg: PoolCfg) -> Result<(usize, usize), TensorError> {
    if cfg.window > 0 && cfg.padding >= cfg.window {
        // A window could then lie entirely in the padding, which has no
        // well-defined max (and a silent -inf would poison downstream
        // stages).
        return Err(TensorError::invalid(format!(
            "pool padding {} must be smaller than the window {}",
            cfg.padding, cfg.window
        )));
    }
    conv2d_out_dims(h, w, cfg.window, cfg.window, cfg.as_conv())
}

/// In-place window reduction: `init`, fold one value at a time, `finish`.
/// The scalar and vector hooks are lane-for-lane the same FP sequence, so
/// reducing one output per lane is bitwise equal to the scalar fold.
trait PoolReduce: Copy {
    fn init(&self) -> f32;
    fn accum1(&self, acc: f32, v: f32) -> f32;
    fn finish1(&self, acc: f32) -> f32;
    fn vaccum<S: Simd>(&self, s: S, acc: S::V, v: S::V) -> S::V;
    fn vfinish<S: Simd>(&self, s: S, acc: S::V) -> S::V;
}

#[derive(Clone, Copy)]
struct MaxReduce;

impl PoolReduce for MaxReduce {
    #[inline(always)]
    fn init(&self) -> f32 {
        f32::NEG_INFINITY
    }
    #[inline(always)]
    fn accum1(&self, acc: f32, v: f32) -> f32 {
        // `if v > acc { v } else { acc }`: ties keep the accumulator,
        // matching the vector `maxps(v, acc)` exactly.
        ScalarSimd.max(v, acc)
    }
    #[inline(always)]
    fn finish1(&self, acc: f32) -> f32 {
        acc
    }
    #[inline(always)]
    fn vaccum<S: Simd>(&self, s: S, acc: S::V, v: S::V) -> S::V {
        s.max(v, acc)
    }
    #[inline(always)]
    fn vfinish<S: Simd>(&self, _s: S, acc: S::V) -> S::V {
        acc
    }
}

#[derive(Clone, Copy)]
struct AvgReduce {
    /// Divisor: the full window area (pads included), per
    /// `count_include_pad`.
    area: f32,
}

impl PoolReduce for AvgReduce {
    #[inline(always)]
    fn init(&self) -> f32 {
        0.0
    }
    #[inline(always)]
    fn accum1(&self, acc: f32, v: f32) -> f32 {
        acc + v
    }
    #[inline(always)]
    fn finish1(&self, acc: f32) -> f32 {
        acc / self.area
    }
    #[inline(always)]
    fn vaccum<S: Simd>(&self, s: S, acc: S::V, v: S::V) -> S::V {
        s.add(acc, v)
    }
    #[inline(always)]
    fn vfinish<S: Simd>(&self, s: S, acc: S::V) -> S::V {
        s.div(acc, s.splat(self.area))
    }
}

/// One pooled output, reduced **in place** in the documented ky-then-kx
/// pad-skipping order (no window gather buffer).
#[inline(always)]
fn pool_window_scalar<R: PoolReduce>(
    plane: &[f32],
    (h, w): (usize, usize),
    cfg: PoolCfg,
    (oy, ox): (usize, usize),
    red: &R,
) -> f32 {
    let mut acc = red.init();
    for ky in 0..cfg.window {
        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
        if iy < 0 || iy >= h as isize {
            continue;
        }
        for kx in 0..cfg.window {
            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
            if ix < 0 || ix >= w as isize {
                continue;
            }
            acc = red.accum1(acc, plane[iy as usize * w + ix as usize]);
        }
    }
    red.finish1(acc)
}

/// The scalar reduction core: one output element per `(ni, ci, oy, ox)` in
/// row-major order, each window reduced in place in `ky`-then-`kx` order
/// with pads skipped — the bitwise reference for every vector arm.
fn pool_into_core<R: PoolReduce>(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: PoolCfg,
    (oh, ow): (usize, usize),
    out: &mut [f32],
    red: &R,
) {
    let mut idx = 0usize;
    for plane in xd[..n * c * h * w].chunks_exact(h * w) {
        for oy in 0..oh {
            for ox in 0..ow {
                out[idx] = pool_window_scalar(plane, (h, w), cfg, (oy, ox), red);
                idx += 1;
            }
        }
    }
}

/// The dispatched pooling op: vectorizes across output columns (one output
/// per lane, so each output's FP reduction sequence is unchanged) over the
/// interior column range where the whole window is in-bounds; edge columns
/// and sub-lane remainders fall back to [`pool_window_scalar`].
struct Pool2dOp<'a, R> {
    xd: &'a [f32],
    dims: (usize, usize, usize, usize),
    cfg: PoolCfg,
    odims: (usize, usize),
    out: &'a mut [f32],
    red: R,
}

impl<R: PoolReduce> SimdOp for Pool2dOp<'_, R> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let (n, c, h, w) = self.dims;
        let (oh, ow) = self.odims;
        let cfg = self.cfg;
        let red = self.red;
        if S::LANES == 1 {
            // The scalar arm IS the reference core.
            pool_into_core(self.xd, self.dims, cfg, self.odims, self.out, &red);
            return;
        }
        let (win, st, pad) = (cfg.window, cfg.stride, cfg.padding);
        // Columns where every kx lands in-bounds: ox*st >= pad and
        // ox*st + win - 1 - pad <= w - 1.
        let ox_hi = if w + pad >= win {
            ((w + pad - win) / st + 1).min(ow)
        } else {
            0
        };
        let ox_lo = pad.div_ceil(st).min(ox_hi);
        let mut idx = 0usize;
        for plane in self.xd[..n * c * h * w].chunks_exact(h * w) {
            for oy in 0..oh {
                // Rows of the window that are in-bounds for this oy; the
                // range is uniform across ox.
                let ky_lo = pad.saturating_sub(oy * st);
                let ky_hi = win.min(h + pad - oy * st);
                for ox in 0..ox_lo {
                    self.out[idx + ox] = pool_window_scalar(plane, (h, w), cfg, (oy, ox), &red);
                }
                let mut ox = ox_lo;
                while ox + S::LANES <= ox_hi {
                    let mut acc = s.splat(red.init());
                    for ky in ky_lo..ky_hi {
                        let iy = oy * st + ky - pad;
                        let row = plane[iy * w..(iy + 1) * w].as_ptr();
                        for kx in 0..win {
                            // SAFETY: interior columns: the last lane reads
                            // iy*w + (ox + LANES - 1)*st + kx - pad, which is
                            // < iy*w + w by the ox_hi bound.
                            let v = unsafe { s.load_strided(row.add(ox * st + kx - pad), st) };
                            acc = red.vaccum(s, acc, v);
                        }
                    }
                    // SAFETY: idx + ox + LANES <= plane's output row end.
                    unsafe {
                        s.store(self.out.as_mut_ptr().add(idx + ox), red.vfinish(s, acc));
                    }
                    ox += S::LANES;
                }
                for ox in ox..ow {
                    self.out[idx + ox] = pool_window_scalar(plane, (h, w), cfg, (oy, ox), &red);
                }
                idx += ow;
            }
        }
    }
}

/// Slice-based [`max_pool2d`] for arena-backed executors: pools the
/// `(n, c, h, w)` NCHW block in `xd` into `out`. Bit-identical to the
/// tensor entry point (same iteration and reduction order).
///
/// # Errors
///
/// Returns geometry errors if the window does not fit or a slice is too
/// short.
pub fn max_pool2d_into(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: PoolCfg,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (oh, ow) = pool_out_dims(h, w, cfg)?;
    if xd.len() < n * c * h * w {
        return Err(TensorError::invalid(
            "max_pool2d_into: input slice too short",
        ));
    }
    if out.len() < n * c * oh * ow {
        return Err(TensorError::invalid(
            "max_pool2d_into: output slice too short",
        ));
    }
    dispatch(Pool2dOp {
        xd,
        dims: (n, c, h, w),
        cfg,
        odims: (oh, ow),
        out,
        red: MaxReduce,
    });
    Ok(())
}

/// Backward pass of [`avg_pool2d`]: distributes gradient uniformly over each
/// window.
///
/// # Errors
///
/// Returns geometry errors if `dy` does not match the pooled shape.
pub fn avg_pool2d_backward(
    x_shape: &[usize],
    dy: &Tensor,
    cfg: PoolCfg,
) -> Result<Tensor, TensorError> {
    if x_shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x_shape.len(),
            op: "avg_pool2d_backward",
        });
    }
    if cfg.window > 0 && cfg.padding >= cfg.window {
        return Err(TensorError::invalid(format!(
            "pool padding {} must be smaller than the window {}",
            cfg.padding, cfg.window
        )));
    }
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = conv2d_out_dims(h, w, cfg.window, cfg.window, cfg.as_conv())?;
    if dy.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, oh, ow],
            actual: dy.shape().to_vec(),
            op: "avg_pool2d_backward",
        });
    }
    let mut dx = Tensor::zeros(x_shape);
    let inv = 1.0 / (cfg.window * cfg.window) as f32;
    let dd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy.at(&[ni, ci, oy, ox]) * inv;
                    for ky in 0..cfg.window {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..cfg.window {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dd[((ni * c + ci) * h + iy as usize) * w + ix as usize] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(dx)
}

/// Global average pooling: `(N, C, H, W) -> (N, C)`.
///
/// # Errors
///
/// Returns a rank error for non-4D input.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "global_avg_pool",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    global_avg_pool_into(x.data(), (n, c, h, w), out.data_mut())?;
    Ok(out)
}

/// Slice-based [`global_avg_pool`] for arena-backed executors: reduces the
/// `(n, c, h, w)` NCHW block in `xd` to `n * c` channel means in `out`.
/// Bit-identical to the tensor entry point (same accumulation order, same
/// `sum * (1/(h*w))` scaling).
///
/// # Errors
///
/// Returns an error if a slice is too short.
pub fn global_avg_pool_into(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    out: &mut [f32],
) -> Result<(), TensorError> {
    if xd.len() < n * c * h * w {
        return Err(TensorError::invalid(
            "global_avg_pool_into: input slice too short",
        ));
    }
    if out.len() < n * c {
        return Err(TensorError::invalid(
            "global_avg_pool_into: output slice too short",
        ));
    }
    dispatch(GlobalAvgPoolOp {
        xd,
        nc: n * c,
        hw: h * w,
        out,
    });
    Ok(())
}

/// The dispatched global-average-pool op: one output channel per lane,
/// lanes gathered at stride `h*w`, so each channel's plane is summed in
/// the exact element order of the scalar loop (then scaled by `1/(h*w)`).
/// The scalar chain is latency-bound (one serial add per element); giving
/// each lane its own chain is where the speedup comes from.
struct GlobalAvgPoolOp<'a> {
    xd: &'a [f32],
    nc: usize,
    hw: usize,
    out: &'a mut [f32],
}

impl SimdOp for GlobalAvgPoolOp<'_> {
    type Output = ();
    #[inline(always)]
    fn eval<S: Simd>(self, s: S) {
        let (nc, hw) = (self.nc, self.hw);
        if hw == 0 {
            return;
        }
        let inv = 1.0 / (hw as f32);
        let xp = self.xd.as_ptr();
        let vinv = s.splat(inv);
        let mut ci = 0;
        // SAFETY: lane l of iteration (ci, i) reads (ci + l)*hw + i
        // < nc*hw; stores cover out[ci..ci + LANES] with ci + LANES <= nc.
        unsafe {
            while ci + S::LANES <= nc {
                let mut acc = s.splat(0.0);
                let base = xp.add(ci * hw);
                for i in 0..hw {
                    acc = s.add(acc, s.load_strided(base.add(i), hw));
                }
                s.store(self.out.as_mut_ptr().add(ci), s.mul(acc, vinv));
                ci += S::LANES;
            }
        }
        for (slot, plane) in self.out[ci..nc]
            .iter_mut()
            .zip(self.xd[ci * hw..].chunks(hw))
        {
            let mut acc = 0.0;
            for &v in plane {
                acc += v;
            }
            *slot = acc * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_constant_input() {
        let x = Tensor::full(&[1, 2, 4, 4], 3.0);
        let y = avg_pool2d(&x, PoolCfg::new(2, 2)).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        for v in y.data() {
            assert_eq!(*v, 3.0);
        }
    }

    #[test]
    fn max_pool_picks_max() {
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| (i[2] * 2 + i[3]) as f32);
        let y = max_pool2d(&x, PoolCfg::new(2, 2)).unwrap();
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn global_avg_pool_matches_mean() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i[1] as f32);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        for ni in 0..2 {
            for ci in 0..3 {
                assert_eq!(y.at(&[ni, ci]), ci as f32);
            }
        }
    }

    #[test]
    fn avg_pool_backward_conserves_gradient_mass() {
        let cfg = PoolCfg::new(2, 2);
        let dy = Tensor::ones(&[1, 1, 2, 2]);
        let dx = avg_pool2d_backward(&[1, 1, 4, 4], &dy, cfg).unwrap();
        assert!((dx.sum() - dy.sum()).abs() < 1e-6);
        for v in dx.data() {
            assert_eq!(*v, 0.25);
        }
    }

    #[test]
    fn padded_max_pool_matches_resnet_stem_geometry() {
        // The ResNet stem pool: 3x3/2 with padding 1 halves the map.
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i[2] * 8 + i[3]) as f32);
        let cfg = PoolCfg {
            window: 3,
            stride: 2,
            padding: 1,
        };
        let y = max_pool2d(&x, cfg).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        // Top-left window sees only the in-bounds 2x2 corner {0,1,8,9}.
        assert_eq!(y.at(&[0, 0, 0, 0]), 9.0);
        // Bottom-right window sees rows/cols 5..8 -> max is 63.
        assert_eq!(y.at(&[0, 0, 3, 3]), 63.0);
    }

    #[test]
    fn padded_avg_pool_counts_pads_as_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cfg = PoolCfg {
            window: 2,
            stride: 2,
            padding: 1,
        };
        let y = avg_pool2d(&x, cfg).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Each window holds one real element and three pads: 1/4.
        for v in y.data() {
            assert_eq!(*v, 0.25);
        }
        // Backward distributes only onto in-bounds positions, conserving
        // the in-bounds share of the gradient.
        let dx = avg_pool2d_backward(&[1, 1, 2, 2], &y, cfg).unwrap();
        for v in dx.data() {
            assert_eq!(*v, 0.0625);
        }
    }

    #[test]
    fn into_variants_bit_identical_to_tensor_paths() {
        let mut r = crate::rng::seeded(71);
        let x = crate::init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut r);
        let dims = (2, 3, 8, 8);
        let cfg = PoolCfg {
            window: 3,
            stride: 2,
            padding: 1,
        };

        let want = max_pool2d(&x, cfg).unwrap();
        let mut got = vec![f32::NAN; want.len()];
        max_pool2d_into(x.data(), dims, cfg, &mut got).unwrap();
        assert_eq!(got, want.data());

        let want = global_avg_pool(&x).unwrap();
        let mut got = vec![f32::NAN; want.len()];
        global_avg_pool_into(x.data(), dims, &mut got).unwrap();
        assert_eq!(got, want.data());

        // Short slices are rejected, not silently truncated.
        assert!(max_pool2d_into(&x.data()[1..], dims, cfg, &mut got).is_err());
        assert!(global_avg_pool_into(x.data(), dims, &mut got[..1]).is_err());
    }

    /// The pre-refactor reduction core: gathers each window into a Vec in
    /// ky-then-kx pad-skipping order, then reduces the gather. Kept here
    /// as ground truth that the in-place core is a pure refactor.
    fn pool_into_vec_gather(
        xd: &[f32],
        (n, c, h, w): (usize, usize, usize, usize),
        cfg: PoolCfg,
        (oh, ow): (usize, usize),
        out: &mut [f32],
        reduce: impl Fn(&[f32]) -> f32,
    ) {
        let mut vals = Vec::with_capacity(cfg.window * cfg.window);
        let mut idx = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = &xd[(ni * c + ci) * h * w..][..h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        vals.clear();
                        for ky in 0..cfg.window {
                            let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..cfg.window {
                                let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                vals.push(plane[iy as usize * w + ix as usize]);
                            }
                        }
                        out[idx] = reduce(&vals);
                        idx += 1;
                    }
                }
            }
        }
    }

    /// Inputs stressing the bit gates: signed zeros, denormals, and a
    /// value pattern with repeated window maxima.
    fn pool_inputs(len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| match i % 13 {
                0 => 0.0,
                1 => -0.0,
                2 => f32::MIN_POSITIVE,
                3 => -1.0e-42,
                _ => ((i as f32 * 0.739).sin() * 4.0).trunc() * 0.5,
            })
            .collect()
    }

    /// Every ISA arm of both pooling reductions matches the in-place
    /// scalar core bitwise, and that core matches the old Vec-gather core
    /// bitwise, across odd shapes, strides and paddings.
    #[test]
    fn pool_arms_match_scalar_core_bitwise() {
        use epim_simd::{dispatch_on, CpuFeatures};
        let shapes = [(1, 1, 5, 7), (2, 3, 9, 11), (1, 2, 8, 8), (1, 1, 4, 30)];
        let cfgs = [
            PoolCfg::new(2, 2),
            PoolCfg::new(3, 1),
            PoolCfg {
                window: 3,
                stride: 2,
                padding: 1,
            },
            PoolCfg {
                window: 4,
                stride: 3,
                padding: 2,
            },
        ];
        for &(n, c, h, w) in &shapes {
            let xd = pool_inputs(n * c * h * w);
            for &cfg in &cfgs {
                let Ok((oh, ow)) = pool_out_dims(h, w, cfg) else {
                    continue;
                };
                let olen = n * c * oh * ow;
                let area = (cfg.window * cfg.window) as f32;

                let mut want_max = vec![f32::NAN; olen];
                pool_into_core(&xd, (n, c, h, w), cfg, (oh, ow), &mut want_max, &MaxReduce);
                let mut old_max = vec![f32::NAN; olen];
                pool_into_vec_gather(&xd, (n, c, h, w), cfg, (oh, ow), &mut old_max, |vals| {
                    vals.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                });
                let mut want_avg = vec![f32::NAN; olen];
                pool_into_core(
                    &xd,
                    (n, c, h, w),
                    cfg,
                    (oh, ow),
                    &mut want_avg,
                    &AvgReduce { area },
                );
                let mut old_avg = vec![f32::NAN; olen];
                pool_into_vec_gather(&xd, (n, c, h, w), cfg, (oh, ow), &mut old_avg, |vals| {
                    vals.iter().sum::<f32>() / area
                });
                // `f32::max` documents the sign of a ±0 tie as
                // non-deterministic, so the old gather core had no defined
                // bit pattern there; the in-place core pins first-seen.
                // Everywhere else the refactor must be bit-identical.
                let zero_tie = |a: f32, b: f32| a == 0.0 && b == 0.0;
                for i in 0..olen {
                    assert!(
                        want_max[i].to_bits() == old_max[i].to_bits()
                            || zero_tie(want_max[i], old_max[i]),
                        "max in-place vs gather {i}"
                    );
                    assert_eq!(
                        want_avg[i].to_bits(),
                        old_avg[i].to_bits(),
                        "avg in-place vs gather {i}"
                    );
                }

                for isa in CpuFeatures::get().available() {
                    let mut got = vec![f32::NAN; olen];
                    dispatch_on(
                        isa,
                        Pool2dOp {
                            xd: &xd,
                            dims: (n, c, h, w),
                            cfg,
                            odims: (oh, ow),
                            out: &mut got,
                            red: MaxReduce,
                        },
                    );
                    for i in 0..olen {
                        assert_eq!(
                            got[i].to_bits(),
                            want_max[i].to_bits(),
                            "max {isa:?} ({n},{c},{h},{w}) {cfg:?} elem {i}"
                        );
                    }
                    dispatch_on(
                        isa,
                        Pool2dOp {
                            xd: &xd,
                            dims: (n, c, h, w),
                            cfg,
                            odims: (oh, ow),
                            out: &mut got,
                            red: AvgReduce { area },
                        },
                    );
                    for i in 0..olen {
                        assert_eq!(
                            got[i].to_bits(),
                            want_avg[i].to_bits(),
                            "avg {isa:?} ({n},{c},{h},{w}) {cfg:?} elem {i}"
                        );
                    }
                }
            }
        }
    }

    /// Every ISA arm of the global average pool matches the scalar loop
    /// bitwise, including channel counts that exercise the lane tail.
    #[test]
    fn global_avg_pool_arms_match_scalar_bitwise() {
        use epim_simd::{dispatch_on, CpuFeatures};
        for (nc, hw) in [(1usize, 9usize), (7, 16), (24, 5), (33, 64), (16, 1)] {
            let xd = pool_inputs(nc * hw);
            let inv = 1.0 / hw as f32;
            let want: Vec<f32> = xd
                .chunks(hw)
                .map(|plane| {
                    let mut s = 0.0;
                    for &v in plane {
                        s += v;
                    }
                    s * inv
                })
                .collect();
            for isa in CpuFeatures::get().available() {
                let mut got = vec![f32::NAN; nc];
                dispatch_on(
                    isa,
                    GlobalAvgPoolOp {
                        xd: &xd,
                        nc,
                        hw,
                        out: &mut got,
                    },
                );
                for i in 0..nc {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "gap {isa:?} nc={nc} hw={hw} chan {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_rejects_bad_geometry() {
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(avg_pool2d(&x, PoolCfg::new(4, 1)).is_err());
        assert!(max_pool2d(&x, PoolCfg::new(2, 0)).is_err());
        // Padding >= window would create windows entirely in the padding
        // (max over nothing); rejected rather than emitting -inf.
        let fully_padded = PoolCfg {
            window: 1,
            stride: 1,
            padding: 1,
        };
        assert!(max_pool2d(&x, fully_padded).is_err());
        assert!(avg_pool2d(&x, fully_padded).is_err());
        assert!(avg_pool2d_backward(&[1, 1, 3, 3], &x, fully_padded).is_err());
    }
}
