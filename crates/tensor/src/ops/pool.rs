//! Spatial pooling operators.

use crate::{Tensor, TensorError};

use super::conv::conv2d_out_dims;
use super::Conv2dCfg;

/// Window/stride/padding configuration for pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolCfg {
    /// Square window size.
    pub window: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides). Max pooling ignores padded
    /// positions (they never win); average pooling counts them as zeros
    /// (the `count_include_pad` convention). The ResNet stem's 3×3/2
    /// max pool with padding 1 is the canonical user.
    pub padding: usize,
}

impl PoolCfg {
    /// A pooling config without padding.
    pub fn new(window: usize, stride: usize) -> Self {
        PoolCfg {
            window,
            stride,
            padding: 0,
        }
    }

    fn as_conv(&self) -> Conv2dCfg {
        Conv2dCfg {
            stride: self.stride,
            padding: self.padding,
        }
    }
}

/// Average pooling over `(N, C, H, W)`.
///
/// Padded positions contribute zeros to the window sum but still count in
/// the divisor (window area), matching the usual `count_include_pad`
/// default.
///
/// # Errors
///
/// Returns geometry errors if the window does not fit.
pub fn avg_pool2d(x: &Tensor, cfg: PoolCfg) -> Result<Tensor, TensorError> {
    let area = (cfg.window * cfg.window) as f32;
    pool(x, cfg, move |vals| vals.iter().sum::<f32>() / area)
}

/// Max pooling over `(N, C, H, W)`.
///
/// Padded positions are skipped (a pad never wins the max).
///
/// # Errors
///
/// Returns geometry errors if the window does not fit.
pub fn max_pool2d(x: &Tensor, cfg: PoolCfg) -> Result<Tensor, TensorError> {
    pool(x, cfg, |vals| {
        vals.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    })
}

fn pool(x: &Tensor, cfg: PoolCfg, reduce: impl Fn(&[f32]) -> f32) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "pool2d",
        });
    }
    let dims = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = pool_out_dims(dims.2, dims.3, cfg)?;
    let mut out = Tensor::zeros(&[dims.0, dims.1, oh, ow]);
    pool_into_core(x.data(), dims, cfg, (oh, ow), out.data_mut(), reduce);
    Ok(out)
}

/// Validates the pooling geometry and returns the output spatial dims.
fn pool_out_dims(h: usize, w: usize, cfg: PoolCfg) -> Result<(usize, usize), TensorError> {
    if cfg.window > 0 && cfg.padding >= cfg.window {
        // A window could then lie entirely in the padding, which has no
        // well-defined max (and a silent -inf would poison downstream
        // stages).
        return Err(TensorError::invalid(format!(
            "pool padding {} must be smaller than the window {}",
            cfg.padding, cfg.window
        )));
    }
    conv2d_out_dims(h, w, cfg.window, cfg.window, cfg.as_conv())
}

/// The reduction core shared by the tensor and slice entry points: one
/// output element per `(ni, ci, oy, ox)` in row-major order, windows
/// gathered in `ky`-then-`kx` order (pads skipped), so every path reduces
/// in the identical sequence.
fn pool_into_core(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: PoolCfg,
    (oh, ow): (usize, usize),
    out: &mut [f32],
    reduce: impl Fn(&[f32]) -> f32,
) {
    let mut vals = Vec::with_capacity(cfg.window * cfg.window);
    let mut idx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane = &xd[(ni * c + ci) * h * w..][..h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    vals.clear();
                    for ky in 0..cfg.window {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..cfg.window {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            vals.push(plane[iy as usize * w + ix as usize]);
                        }
                    }
                    out[idx] = reduce(&vals);
                    idx += 1;
                }
            }
        }
    }
}

/// Slice-based [`max_pool2d`] for arena-backed executors: pools the
/// `(n, c, h, w)` NCHW block in `xd` into `out`. Bit-identical to the
/// tensor entry point (same iteration and reduction order).
///
/// # Errors
///
/// Returns geometry errors if the window does not fit or a slice is too
/// short.
pub fn max_pool2d_into(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: PoolCfg,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (oh, ow) = pool_out_dims(h, w, cfg)?;
    if xd.len() < n * c * h * w {
        return Err(TensorError::invalid(
            "max_pool2d_into: input slice too short",
        ));
    }
    if out.len() < n * c * oh * ow {
        return Err(TensorError::invalid(
            "max_pool2d_into: output slice too short",
        ));
    }
    pool_into_core(xd, (n, c, h, w), cfg, (oh, ow), out, |vals| {
        vals.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    });
    Ok(())
}

/// Backward pass of [`avg_pool2d`]: distributes gradient uniformly over each
/// window.
///
/// # Errors
///
/// Returns geometry errors if `dy` does not match the pooled shape.
pub fn avg_pool2d_backward(
    x_shape: &[usize],
    dy: &Tensor,
    cfg: PoolCfg,
) -> Result<Tensor, TensorError> {
    if x_shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x_shape.len(),
            op: "avg_pool2d_backward",
        });
    }
    if cfg.window > 0 && cfg.padding >= cfg.window {
        return Err(TensorError::invalid(format!(
            "pool padding {} must be smaller than the window {}",
            cfg.padding, cfg.window
        )));
    }
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = conv2d_out_dims(h, w, cfg.window, cfg.window, cfg.as_conv())?;
    if dy.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, oh, ow],
            actual: dy.shape().to_vec(),
            op: "avg_pool2d_backward",
        });
    }
    let mut dx = Tensor::zeros(x_shape);
    let inv = 1.0 / (cfg.window * cfg.window) as f32;
    let dd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy.at(&[ni, ci, oy, ox]) * inv;
                    for ky in 0..cfg.window {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..cfg.window {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dd[((ni * c + ci) * h + iy as usize) * w + ix as usize] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(dx)
}

/// Global average pooling: `(N, C, H, W) -> (N, C)`.
///
/// # Errors
///
/// Returns a rank error for non-4D input.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "global_avg_pool",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(&[n, c]);
    global_avg_pool_into(x.data(), (n, c, h, w), out.data_mut())?;
    Ok(out)
}

/// Slice-based [`global_avg_pool`] for arena-backed executors: reduces the
/// `(n, c, h, w)` NCHW block in `xd` to `n * c` channel means in `out`.
/// Bit-identical to the tensor entry point (same accumulation order, same
/// `sum * (1/(h*w))` scaling).
///
/// # Errors
///
/// Returns an error if a slice is too short.
pub fn global_avg_pool_into(
    xd: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    out: &mut [f32],
) -> Result<(), TensorError> {
    if xd.len() < n * c * h * w {
        return Err(TensorError::invalid(
            "global_avg_pool_into: input slice too short",
        ));
    }
    if out.len() < n * c {
        return Err(TensorError::invalid(
            "global_avg_pool_into: output slice too short",
        ));
    }
    let inv = 1.0 / (h * w) as f32;
    for (slot, plane) in out[..n * c].iter_mut().zip(xd.chunks(h * w)) {
        let mut s = 0.0;
        for &v in plane {
            s += v;
        }
        *slot = s * inv;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_constant_input() {
        let x = Tensor::full(&[1, 2, 4, 4], 3.0);
        let y = avg_pool2d(&x, PoolCfg::new(2, 2)).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        for v in y.data() {
            assert_eq!(*v, 3.0);
        }
    }

    #[test]
    fn max_pool_picks_max() {
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| (i[2] * 2 + i[3]) as f32);
        let y = max_pool2d(&x, PoolCfg::new(2, 2)).unwrap();
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn global_avg_pool_matches_mean() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i[1] as f32);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        for ni in 0..2 {
            for ci in 0..3 {
                assert_eq!(y.at(&[ni, ci]), ci as f32);
            }
        }
    }

    #[test]
    fn avg_pool_backward_conserves_gradient_mass() {
        let cfg = PoolCfg::new(2, 2);
        let dy = Tensor::ones(&[1, 1, 2, 2]);
        let dx = avg_pool2d_backward(&[1, 1, 4, 4], &dy, cfg).unwrap();
        assert!((dx.sum() - dy.sum()).abs() < 1e-6);
        for v in dx.data() {
            assert_eq!(*v, 0.25);
        }
    }

    #[test]
    fn padded_max_pool_matches_resnet_stem_geometry() {
        // The ResNet stem pool: 3x3/2 with padding 1 halves the map.
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i[2] * 8 + i[3]) as f32);
        let cfg = PoolCfg {
            window: 3,
            stride: 2,
            padding: 1,
        };
        let y = max_pool2d(&x, cfg).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        // Top-left window sees only the in-bounds 2x2 corner {0,1,8,9}.
        assert_eq!(y.at(&[0, 0, 0, 0]), 9.0);
        // Bottom-right window sees rows/cols 5..8 -> max is 63.
        assert_eq!(y.at(&[0, 0, 3, 3]), 63.0);
    }

    #[test]
    fn padded_avg_pool_counts_pads_as_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cfg = PoolCfg {
            window: 2,
            stride: 2,
            padding: 1,
        };
        let y = avg_pool2d(&x, cfg).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Each window holds one real element and three pads: 1/4.
        for v in y.data() {
            assert_eq!(*v, 0.25);
        }
        // Backward distributes only onto in-bounds positions, conserving
        // the in-bounds share of the gradient.
        let dx = avg_pool2d_backward(&[1, 1, 2, 2], &y, cfg).unwrap();
        for v in dx.data() {
            assert_eq!(*v, 0.0625);
        }
    }

    #[test]
    fn into_variants_bit_identical_to_tensor_paths() {
        let mut r = crate::rng::seeded(71);
        let x = crate::init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut r);
        let dims = (2, 3, 8, 8);
        let cfg = PoolCfg {
            window: 3,
            stride: 2,
            padding: 1,
        };

        let want = max_pool2d(&x, cfg).unwrap();
        let mut got = vec![f32::NAN; want.len()];
        max_pool2d_into(x.data(), dims, cfg, &mut got).unwrap();
        assert_eq!(got, want.data());

        let want = global_avg_pool(&x).unwrap();
        let mut got = vec![f32::NAN; want.len()];
        global_avg_pool_into(x.data(), dims, &mut got).unwrap();
        assert_eq!(got, want.data());

        // Short slices are rejected, not silently truncated.
        assert!(max_pool2d_into(&x.data()[1..], dims, cfg, &mut got).is_err());
        assert!(global_avg_pool_into(x.data(), dims, &mut got[..1]).is_err());
    }

    #[test]
    fn pool_rejects_bad_geometry() {
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(avg_pool2d(&x, PoolCfg::new(4, 1)).is_err());
        assert!(max_pool2d(&x, PoolCfg::new(2, 0)).is_err());
        // Padding >= window would create windows entirely in the padding
        // (max over nothing); rejected rather than emitting -inf.
        let fully_padded = PoolCfg {
            window: 1,
            stride: 1,
            padding: 1,
        };
        assert!(max_pool2d(&x, fully_padded).is_err());
        assert!(avg_pool2d(&x, fully_padded).is_err());
        assert!(avg_pool2d_backward(&[1, 1, 3, 3], &x, fully_padded).is_err());
    }
}
