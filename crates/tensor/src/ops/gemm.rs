//! Cache-blocked single-precision GEMM kernels.
//!
//! This is the compute spine of the whole reproduction: `Tensor::matmul`,
//! the im2col convolution path, the linear layers and (indirectly) every
//! training/search experiment bottom out here.
//!
//! The implementation follows the standard BLIS-style recipe:
//!
//! - the K dimension is processed in `KC`-sized slices;
//! - for each slice, B is packed once into `NR`-wide column panels
//!   (`bp[p * NR + j]`) shared by all rows;
//! - the M dimension is split into `MR`-row chunks, each packing its A rows
//!   into a `MR`-wide panel (`ap[p * MR + i]`, zero-padded at the edges) and
//!   driving an `MR x NR` register-blocked micro-kernel;
//! - chunks are distributed over threads via `epim-parallel` when the
//!   problem is large enough (C chunks are disjoint row bands, so no
//!   synchronization is needed).
//!
//! All entry points are *stride-aware*: [`gemm_tn`] and [`gemm_nt`] read A
//! or B through transposed strides during packing, so callers never
//! materialize an explicit `transpose()` copy. Bias addition is fused into
//! the output prefill (per output row or per output column), which lets the
//! convolution and linear layers skip their separate bias passes. A ReLU
//! epilogue (`_relu` variants) clamps each output element with
//! `v.max(0.0)` at its **final** writeback — the pre-clamp sum is the same
//! arithmetic as the unfused GEMM, so the fused result is bit-identical to
//! a GEMM followed by a separate ReLU pass.
//!
//! The binary stays portable (generic x86-64, same target the seed used):
//! the micro-kernel is selected **at runtime** from the cached
//! `epim-simd` CPU-feature probe — an 8x32 AVX-512F kernel, a 6x16
//! AVX2+FMA kernel, or a scalar-autovectorized 8x8 fallback (the probe's
//! `EPIM_FORCE_ISA` override applies here too). The `unsafe` surface is
//! confined to the `#[target_feature]` kernel bodies, which only touch
//! caller-validated panel/tile buffers.

use epim_parallel::for_each_chunk_mut;

/// Largest micro-kernel row count across variants (A-panel sizing).
const MR_MAX: usize = 8;
/// Largest micro-kernel column count across variants (tile sizing).
const NR_MAX: usize = 32;
/// K-dimension cache block: the A panel (`MR_MAX * KC` floats) stays L1
/// resident while B panels stream from L2.
const KC: usize = 256;

/// The instruction-set variant the tile kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelKind {
    /// 8x32 tiles on 512-bit FMA (16 zmm accumulators).
    Avx512,
    /// 6x16 tiles on 256-bit FMA (12 ymm accumulators).
    Fma,
    /// 8x8 tiles, plain Rust left to the autovectorizer.
    Generic,
}

impl KernelKind {
    #[inline]
    fn mr(self) -> usize {
        match self {
            KernelKind::Avx512 => 8,
            KernelKind::Fma => 6,
            KernelKind::Generic => 8,
        }
    }

    #[inline]
    fn nr(self) -> usize {
        match self {
            KernelKind::Avx512 => 32,
            KernelKind::Fma => 16,
            KernelKind::Generic => 8,
        }
    }
}

/// Maps the cached `epim-simd` ISA selection (feature probe plus the
/// `EPIM_FORCE_ISA` override) onto a micro-kernel variant. The tier
/// requirements line up exactly: `Isa::Avx2` already implies FMA.
fn kernel_kind() -> KernelKind {
    match epim_simd::isa() {
        epim_simd::Isa::Avx512 => KernelKind::Avx512,
        epim_simd::Isa::Avx2 => KernelKind::Fma,
        epim_simd::Isa::Scalar => KernelKind::Generic,
    }
}

/// Problems below this many multiply-adds run the plain serial loops:
/// packing and (above all) thread dispatch would dominate.
const SMALL_FLOPS: usize = 1 << 15;
/// Problems below this many multiply-adds never cross threads.
const PARALLEL_FLOPS: usize = 1 << 21;

/// A read-only matrix view with explicit row/column strides, so the same
/// packing code serves normal and transposed operands.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl MatRef<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Fused bias applied while prefilling the output.
#[derive(Clone, Copy)]
enum Bias<'a> {
    /// No bias: prefill with zeros.
    None,
    /// `bias[i]` is added to every element of output row `i` (length `m`).
    PerRow(&'a [f32]),
    /// `bias[j]` is added to every element of output column `j` (length `n`).
    PerCol(&'a [f32]),
}

/// `C = A · B` for row-major `A (m x k)`, `B (k x n)`, `C (m x n)`.
///
/// # Panics
///
/// Panics if a slice is shorter than its `m`/`n`/`k` geometry implies.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_strided(
        m,
        n,
        k,
        MatRef {
            data: a,
            rs: k,
            cs: 1,
        },
        MatRef {
            data: b,
            rs: n,
            cs: 1,
        },
        Bias::None,
        false,
        c,
    );
}

/// `C = Aᵀ · B` where `A` is *stored* row-major as `(k x m)`.
///
/// Used by the backward passes (`dW = dYᵀ · X`) so they never materialize
/// the transpose.
///
/// # Panics
///
/// Panics if a slice is shorter than its geometry implies.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_strided(
        m,
        n,
        k,
        MatRef {
            data: a,
            rs: 1,
            cs: m,
        },
        MatRef {
            data: b,
            rs: n,
            cs: 1,
        },
        Bias::None,
        false,
        c,
    );
}

/// `C = A · Bᵀ` where `B` is *stored* row-major as `(n x k)`.
///
/// Used by [`crate::ops::linear`] (`y = x · Wᵀ`) and the fused convolution.
///
/// # Panics
///
/// Panics if a slice is shorter than its geometry implies.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_opt(m, n, k, a, b, Bias::None, false, c);
}

/// [`gemm_nt`] with the fused ReLU epilogue: every output element is
/// clamped with `v.max(0.0)` at its final writeback. Bit-identical to
/// [`gemm_nt`] followed by a separate elementwise ReLU.
///
/// # Panics
///
/// Panics if a slice is shorter than its geometry implies.
pub fn gemm_nt_relu(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_opt(m, n, k, a, b, Bias::None, true, c);
}

/// Shared body of the `gemm_nt*` entry points.
#[allow(clippy::too_many_arguments)]
fn gemm_nt_opt(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: Bias,
    relu: bool,
    c: &mut [f32],
) {
    gemm_strided(
        m,
        n,
        k,
        MatRef {
            data: a,
            rs: k,
            cs: 1,
        },
        MatRef {
            data: b,
            rs: 1,
            cs: k,
        },
        bias,
        relu,
        c,
    );
}

/// [`gemm_nt`] with `bias[i]` added to every element of output row `i`
/// (the fused convolution epilogue: rows are output channels).
///
/// # Panics
///
/// Panics on geometry mismatch, including `bias.len() != m`.
pub fn gemm_nt_bias_row(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), m, "row bias length must equal m");
    gemm_nt_opt(m, n, k, a, b, Bias::PerRow(bias), false, c);
}

/// [`gemm_nt_bias_row`] with the fused ReLU epilogue (bit-identical to the
/// unfused call followed by a separate ReLU pass).
///
/// # Panics
///
/// Panics on geometry mismatch, including `bias.len() != m`.
pub fn gemm_nt_bias_row_relu(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), m, "row bias length must equal m");
    gemm_nt_opt(m, n, k, a, b, Bias::PerRow(bias), true, c);
}

/// [`gemm_nt`] with `bias[j]` added to every element of output column `j`
/// (the fused linear-layer epilogue: columns are output features).
///
/// # Panics
///
/// Panics on geometry mismatch, including `bias.len() != n`.
pub fn gemm_nt_bias_col(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), n, "column bias length must equal n");
    gemm_nt_opt(m, n, k, a, b, Bias::PerCol(bias), false, c);
}

/// [`gemm_nt_bias_col`] with the fused ReLU epilogue (bit-identical to the
/// unfused call followed by a separate ReLU pass).
///
/// # Panics
///
/// Panics on geometry mismatch, including `bias.len() != n`.
pub fn gemm_nt_bias_col_relu(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    assert_eq!(bias.len(), n, "column bias length must equal n");
    gemm_nt_opt(m, n, k, a, b, Bias::PerCol(bias), true, c);
}

/// Batched [`gemm_nt`]: `C[g] = A · B[g]ᵀ (+ bias)` for `batch`
/// independent problems sharing one `A` operand, with `B` stored as
/// `batch` contiguous `(n x k)` blocks and `C` as `batch` contiguous
/// `(m x n)` blocks.
///
/// Semantically this is exactly the loop
/// `for g in 0..batch { gemm_nt_bias_row(m, n, k, a, &b[g..], bias, &mut c[g..]) }`
/// and every output element is **bit-identical** to that loop: the
/// per-problem kernel path (small/blocked, serial/parallel) is chosen from
/// the per-problem `m·n·k` alone, so folding the batch never changes any
/// element's arithmetic. What changes is the dispatch: when each problem is
/// too small to cross the kernel's own thread threshold but the batch as a
/// whole is worth parallelizing, all `batch` problems run under **one**
/// worker-pool dispatch (chunked per problem) instead of `batch` serial
/// calls. This is the multi-image convolution path: N small feature maps
/// pay one dispatch, not N.
///
/// `bias` (optional, length `m`) is added to every element of each output
/// row, as in [`gemm_nt_bias_row`]. `relu` requests the fused ReLU
/// epilogue on every problem (bit-identical to a separate ReLU pass).
///
/// # Panics
///
/// Panics if a slice is shorter than its `batch`/`m`/`n`/`k` geometry
/// implies.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_batch(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    c: &mut [f32],
) {
    assert!(
        c.len() >= batch * m * n,
        "output slice too short for {batch}x{m}x{n}"
    );
    assert!(
        b.len() >= batch * n * k,
        "B slice too short for {batch}x{n}x{k}"
    );
    if let Some(bb) = bias {
        assert_eq!(bb.len(), m, "row bias length must equal m");
    }
    if batch == 0 || m * n == 0 {
        // Nothing to write (and chunking by a zero-sized output would
        // panic); matches the per-problem loop, which was a no-op here.
        return;
    }
    let run_one = |g: usize, c_g: &mut [f32]| {
        let b_g = &b[g * n * k..(g + 1) * n * k];
        let bias_ref = match bias {
            Some(bb) => Bias::PerRow(bb),
            None => Bias::None,
        };
        gemm_nt_opt(m, n, k, a, b_g, bias_ref, relu, c_g);
    };
    let per = m * n * k;
    if batch > 1 && per < PARALLEL_FLOPS && batch * per >= PARALLEL_FLOPS {
        // Each problem would run serially on its own; parallelize across
        // problems instead — one dispatch for the whole batch. Problems
        // are disjoint `m x n` output blocks, so no synchronization.
        for_each_chunk_mut(&mut c[..batch * m * n], m * n, run_one);
    } else {
        // Either the batch is trivial or each problem is big enough to use
        // the pool internally; per-problem calls keep that behavior.
        for (g, c_g) in c[..batch * m * n].chunks_mut(m * n).enumerate() {
            run_one(g, c_g);
        }
    }
}

/// The number of worker threads the kernel layer will use (threshold
/// permitting) — `epim-parallel`'s pool size, re-exported for reporting.
pub fn num_threads_in_use() -> usize {
    epim_parallel::num_threads()
}

/// The seed repository's ikj matmul, kept verbatim as the benchmark baseline
/// and as an independent reference for property tests.
pub fn reference_matmul(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    c.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut c[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef,
    b: MatRef,
    bias: Bias,
    relu: bool,
    c: &mut [f32],
) {
    assert!(c.len() >= m * n, "output slice too short for {m}x{n}");
    if m > 0 && k > 0 {
        assert!(
            a.data.len() > (m - 1) * a.rs + (k - 1) * a.cs,
            "A slice too short for its geometry"
        );
    }
    if k > 0 && n > 0 {
        assert!(
            b.data.len() > (k - 1) * b.rs + (n - 1) * b.cs,
            "B slice too short for its geometry"
        );
    }

    prefill(m, n, bias, c);
    if m == 0 || n == 0 || k == 0 {
        // Degenerate contraction: the output is the prefilled bias, and the
        // epilogue (if any) clamps it in place.
        if relu {
            relu_pass(&mut c[..m * n]);
        }
        return;
    }

    if m * n * k <= SMALL_FLOPS {
        gemm_small(m, n, k, a, b, c);
        // The small path accumulates in place, so its final values are the
        // same sums the epilogue-free call produces; clamping afterwards is
        // bit-identical to a separate ReLU pass.
        if relu {
            relu_pass(&mut c[..m * n]);
        }
        return;
    }

    let kind = kernel_kind();
    let (mr_k, nr_k) = (kind.mr(), kind.nr());
    let n_panels = n.div_ceil(nr_k);
    let mut bpack = vec![0.0f32; n_panels * nr_k * KC.min(k)];
    let mut pc = 0usize;
    while pc < k {
        let kc = KC.min(k - pc);
        pack_b(&mut bpack, b, pc, kc, n, nr_k);
        let bpack_ref: &[f32] = &bpack;
        // The ReLU epilogue fires only on the final K slice's writeback:
        // earlier slices hold partial sums that must stay unclamped.
        let relu_now = relu && pc + kc == k;

        let row_band = mr_k * n;
        if m * n * k >= PARALLEL_FLOPS {
            for_each_chunk_mut(&mut c[..m * n], row_band, |chunk_idx, c_chunk| {
                update_row_band(
                    chunk_idx, c_chunk, m, n, kc, pc, a, bpack_ref, kind, relu_now,
                );
            });
        } else {
            for (chunk_idx, c_chunk) in c[..m * n].chunks_mut(row_band).enumerate() {
                update_row_band(
                    chunk_idx, c_chunk, m, n, kc, pc, a, bpack_ref, kind, relu_now,
                );
            }
        }
        pc += kc;
    }
}

/// Clamps every element with the same scalar `max` the unfused ReLU uses.
fn relu_pass(c: &mut [f32]) {
    for v in c {
        *v = v.max(0.0);
    }
}

/// Accumulates the current K slice into one `mr`-row band of C.
#[allow(clippy::too_many_arguments)]
#[inline]
fn update_row_band(
    chunk_idx: usize,
    c_chunk: &mut [f32],
    m: usize,
    n: usize,
    kc: usize,
    pc: usize,
    a: MatRef,
    bpack: &[f32],
    kind: KernelKind,
    relu: bool,
) {
    let (mr_k, nr_k) = (kind.mr(), kind.nr());
    let row0 = chunk_idx * mr_k;
    let mr = mr_k.min(m - row0);
    let mut apanel = [0.0f32; MR_MAX * KC];
    pack_a(&mut apanel, a, row0, mr, pc, kc, mr_k);

    let mut tile = [0.0f32; MR_MAX * NR_MAX];
    let n_panels = n.div_ceil(nr_k);
    for jp in 0..n_panels {
        let col0 = jp * nr_k;
        let nr = nr_k.min(n - col0);
        let bpanel = &bpack[jp * nr_k * kc..(jp + 1) * nr_k * kc];
        match kind {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `kernel_kind()` verified avx512f at runtime; the
            // pointers cover `kc * 8` / `kc * 32` / `8 * 32` floats by
            // construction of the panel and tile buffers.
            KernelKind::Avx512 => unsafe {
                kernel_8x32_avx512(kc, apanel.as_ptr(), bpanel.as_ptr(), tile.as_mut_ptr());
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above, with avx2+fma verified and 6x16 geometry.
            KernelKind::Fma => unsafe {
                kernel_6x16_fma(kc, apanel.as_ptr(), bpanel.as_ptr(), tile.as_mut_ptr());
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelKind::Avx512 | KernelKind::Fma => {
                kernel_8x8_generic(kc, &apanel, bpanel, &mut tile)
            }
            KernelKind::Generic => kernel_8x8_generic(kc, &apanel, bpanel, &mut tile),
        }
        for i in 0..mr {
            let crow = &mut c_chunk[i * n + col0..i * n + col0 + nr];
            let trow = &tile[i * nr_k..i * nr_k + nr];
            if relu {
                // Final K slice: the sum `*co + tv` is the same arithmetic
                // as the unfused writeback, so clamping here is
                // bit-identical to a separate ReLU over the finished C.
                for (co, &tv) in crow.iter_mut().zip(trow) {
                    *co = (*co + tv).max(0.0);
                }
            } else {
                for (co, &tv) in crow.iter_mut().zip(trow) {
                    *co += tv;
                }
            }
        }
    }
}

/// 8x32 AVX-512F tile kernel: 16 zmm accumulators, two B vector loads and
/// eight A broadcasts per k step. Writes the full `8 x 32` tile (row stride
/// 32) to `tile`.
///
/// # Safety
///
/// Caller must verify `avx512f` is available and that `ap` holds
/// `kc * 8` floats, `bp` `kc * 32` floats and `tile` `8 * 32` floats.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_8x32_avx512(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 2]; 8];
    for p in 0..kc {
        let b0 = _mm512_loadu_ps(bp.add(p * 32));
        let b1 = _mm512_loadu_ps(bp.add(p * 32 + 16));
        let arow = ap.add(p * 8);
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*arow.add(i));
            acc_row[0] = _mm512_fmadd_ps(av, b0, acc_row[0]);
            acc_row[1] = _mm512_fmadd_ps(av, b1, acc_row[1]);
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        _mm512_storeu_ps(tile.add(i * 32), acc_row[0]);
        _mm512_storeu_ps(tile.add(i * 32 + 16), acc_row[1]);
    }
}

/// 6x16 AVX2+FMA tile kernel: 12 ymm accumulators. Writes the full
/// `6 x 16` tile (row stride 16) to `tile`.
///
/// # Safety
///
/// Caller must verify `avx2` and `fma` are available and that `ap` holds
/// `kc * 6` floats, `bp` `kc * 16` floats and `tile` `6 * 16` floats.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_6x16_fma(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * 16));
        let b1 = _mm256_loadu_ps(bp.add(p * 16 + 8));
        let arow = ap.add(p * 6);
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*arow.add(i));
            acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
            acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        _mm256_storeu_ps(tile.add(i * 16), acc_row[0]);
        _mm256_storeu_ps(tile.add(i * 16 + 8), acc_row[1]);
    }
}

/// Portable 8x8 tile kernel, shaped for the autovectorizer. Writes the full
/// `8 x 8` tile (row stride 8) to `tile`.
fn kernel_8x8_generic(kc: usize, apanel: &[f32], bpanel: &[f32], tile: &mut [f32]) {
    let mut acc = [[0.0f32; 8]; 8];
    for p in 0..kc {
        let ap: &[f32] = &apanel[p * 8..p * 8 + 8];
        let bp: &[f32] = &bpanel[p * 8..p * 8 + 8];
        for i in 0..8 {
            let av = ap[i];
            let row = &mut acc[i];
            for j in 0..8 {
                row[j] += av * bp[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        tile[i * 8..i * 8 + 8].copy_from_slice(acc_row);
    }
}

/// Packs `mr` rows of A (`rows row0..row0+mr`, columns `pc..pc+kc`) into a
/// k-major `mr_k`-wide panel, zero-padding the row remainder.
#[inline]
fn pack_a(
    apanel: &mut [f32; MR_MAX * KC],
    a: MatRef,
    row0: usize,
    mr: usize,
    pc: usize,
    kc: usize,
    mr_k: usize,
) {
    if mr < mr_k {
        apanel[..kc * mr_k].fill(0.0);
    }
    for i in 0..mr {
        let base = (row0 + i) * a.rs + pc * a.cs;
        if a.cs == 1 {
            let src = &a.data[base..base + kc];
            for (p, &v) in src.iter().enumerate() {
                apanel[p * mr_k + i] = v;
            }
        } else {
            for p in 0..kc {
                apanel[p * mr_k + i] = a.data[base + p * a.cs];
            }
        }
    }
}

/// Packs the `kc x n` slice of B (rows `pc..pc+kc`) into `nr_k`-wide column
/// panels, zero-padding the column remainder.
fn pack_b(bpack: &mut [f32], b: MatRef, pc: usize, kc: usize, n: usize, nr_k: usize) {
    let n_panels = n.div_ceil(nr_k);
    for jp in 0..n_panels {
        let col0 = jp * nr_k;
        let nr = nr_k.min(n - col0);
        let panel = &mut bpack[jp * nr_k * kc..(jp + 1) * nr_k * kc];
        if nr < nr_k {
            panel.fill(0.0);
        }
        for p in 0..kc {
            let base = (pc + p) * b.rs + col0 * b.cs;
            let dst = &mut panel[p * nr_k..p * nr_k + nr];
            if b.cs == 1 {
                dst.copy_from_slice(&b.data[base..base + nr]);
            } else {
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = b.data[base + j * b.cs];
                }
            }
        }
    }
}

/// Prefills C with the fused bias (or zeros).
fn prefill(m: usize, n: usize, bias: Bias, c: &mut [f32]) {
    match bias {
        Bias::None => c[..m * n].fill(0.0),
        Bias::PerRow(bias) => {
            for (row, &bv) in c[..m * n].chunks_mut(n).zip(bias) {
                row.fill(bv);
            }
        }
        Bias::PerCol(bias) => {
            for row in c[..m * n].chunks_mut(n) {
                row.copy_from_slice(bias);
            }
        }
    }
}

/// Serial path for tiny problems: no packing, no threads.
fn gemm_small(m: usize, n: usize, k: usize, a: MatRef, b: MatRef, c: &mut [f32]) {
    if b.cs == 1 {
        // Inner loop walks contiguous B rows (ikj / axpy).
        for i in 0..m {
            let crow = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a.at(i, p);
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[p * b.rs..p * b.rs + n];
                for (co, &bv) in crow.iter_mut().zip(brow) {
                    *co += av * bv;
                }
            }
        }
    } else if b.rs == 1 && a.cs == 1 {
        // A rows and (transposed) B rows are both contiguous: plain dots.
        for i in 0..m {
            let arow = &a.data[i * a.rs..i * a.rs + k];
            let crow = &mut c[i * n..(i + 1) * n];
            for (j, co) in crow.iter_mut().enumerate() {
                let brow = &b.data[j * b.cs..j * b.cs + k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *co += acc;
            }
        }
    } else {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(i, p) * b.at(p, j);
                }
                c[i * n + j] += acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, rng};

    fn dense(m: usize, n: usize, seed: u64) -> Vec<f32> {
        let mut r = rng::seeded(seed);
        init::uniform(&[m, n], -1.0, 1.0, &mut r).into_vec()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Reference computed with f64 accumulation through strided views.
    fn reference_strided(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        (ars, acs): (usize, usize),
        b: &[f32],
        (brs, bcs): (usize, usize),
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a[i * ars + p * acs] as f64 * b[p * brs + j * bcs] as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    #[test]
    fn matches_reference_on_odd_shapes() {
        // Deliberately awkward sizes: non-multiples of MR/NR/KC, degenerate
        // rows/columns, k crossing the KC boundary.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (8, 8, 8),
            (9, 17, 33),
            (64, 64, 64),
            (13, 70, 300),
            (70, 13, 257),
            (1, 100, 512),
            (100, 1, 300),
        ] {
            let a = dense(m, k, 1 + m as u64);
            let b = dense(k, n, 2 + n as u64);
            let want = reference_strided(m, n, k, &a, (k, 1), &b, (n, 1));
            let mut c = vec![f32::NAN; m * n];
            gemm(m, n, k, &a, &b, &mut c);
            assert!(
                max_abs_diff(&c, &want) < 1e-4,
                "gemm {m}x{n}x{k}: {}",
                max_abs_diff(&c, &want)
            );
        }
    }

    #[test]
    fn matches_seed_reference() {
        let (m, n, k) = (33, 29, 41);
        let a = dense(m, k, 3);
        let b = dense(k, n, 4);
        let mut want = vec![0.0f32; m * n];
        reference_matmul(m, n, k, &a, &b, &mut want);
        let mut c = vec![0.0f32; m * n];
        gemm(m, n, k, &a, &b, &mut c);
        assert!(max_abs_diff(&c, &want) < 1e-4);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        for &(m, n, k) in &[(5usize, 9usize, 13usize), (32, 17, 300), (65, 70, 129)] {
            // A stored (k x m).
            let a_t = dense(k, m, 5);
            let b = dense(k, n, 6);
            let want = reference_strided(m, n, k, &a_t, (1, m), &b, (n, 1));
            let mut c = vec![0.0f32; m * n];
            gemm_tn(m, n, k, &a_t, &b, &mut c);
            assert!(max_abs_diff(&c, &want) < 1e-4, "gemm_tn {m}x{n}x{k}");
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        for &(m, n, k) in &[(5usize, 9usize, 13usize), (31, 64, 300), (64, 3, 257)] {
            // B stored (n x k).
            let a = dense(m, k, 7);
            let b_t = dense(n, k, 8);
            let want = reference_strided(m, n, k, &a, (k, 1), &b_t, (1, k));
            let mut c = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &b_t, &mut c);
            assert!(max_abs_diff(&c, &want) < 1e-4, "gemm_nt {m}x{n}x{k}");
        }
    }

    #[test]
    fn fused_bias_epilogues() {
        let (m, n, k) = (9, 20, 33);
        let a = dense(m, k, 9);
        let b_t = dense(n, k, 10);
        let row_bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5 - 1.0).collect();
        let col_bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25 - 2.0).collect();
        let base = reference_strided(m, n, k, &a, (k, 1), &b_t, (1, k));

        let mut c = vec![0.0f32; m * n];
        gemm_nt_bias_row(m, n, k, &a, &b_t, &row_bias, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want = base[i * n + j] + row_bias[i];
                assert!((c[i * n + j] - want).abs() < 1e-4);
            }
        }

        let mut c = vec![0.0f32; m * n];
        gemm_nt_bias_col(m, n, k, &a, &b_t, &col_bias, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want = base[i * n + j] + col_bias[j];
                assert!((c[i * n + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn nt_batch_bit_identical_to_per_problem_calls() {
        // Sizes straddling the small/blocked and serial/parallel
        // thresholds; the batched entry must reproduce the per-problem
        // loop exactly (==, not allclose).
        for &(batch, m, n, k) in &[
            (1usize, 4usize, 6usize, 5usize),
            (3, 8, 16, 9),
            (5, 16, 49, 36),  // conv-like: c_out x pixels x ckk
            (16, 32, 64, 72), // crosses PARALLEL_FLOPS in aggregate
            (2, 64, 70, 300), // per-problem blocked path
        ] {
            let a = dense(m, k, 21);
            let b = dense(batch * n, k, 22);
            let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.125 - 1.0).collect();
            for with_bias in [false, true] {
                let bias_opt = with_bias.then_some(&bias[..]);
                let mut want = vec![f32::NAN; batch * m * n];
                for g in 0..batch {
                    let b_g = &b[g * n * k..(g + 1) * n * k];
                    let c_g = &mut want[g * m * n..(g + 1) * m * n];
                    match bias_opt {
                        Some(bb) => gemm_nt_bias_row(m, n, k, &a, b_g, bb, c_g),
                        None => gemm_nt(m, n, k, &a, b_g, c_g),
                    }
                }
                let mut got = vec![f32::NAN; batch * m * n];
                gemm_nt_batch(batch, m, n, k, &a, &b, bias_opt, false, &mut got);
                assert_eq!(
                    got, want,
                    "batch={batch} m={m} n={n} k={k} bias={with_bias}"
                );
            }
        }
    }

    #[test]
    fn nt_batch_empty_batch_is_noop() {
        let mut c: Vec<f32> = vec![7.0; 4];
        gemm_nt_batch(0, 2, 2, 3, &[], &[], None, false, &mut c);
        assert_eq!(c, vec![7.0; 4]);
        // Degenerate problem shapes (m or n zero) are no-ops too, not
        // zero-sized-chunk panics.
        gemm_nt_batch(3, 0, 2, 3, &[], &[0.0; 18], None, false, &mut c);
        gemm_nt_batch(3, 2, 0, 3, &[0.0; 6], &[], None, false, &mut c);
        assert_eq!(c, vec![7.0; 4]);
    }

    #[test]
    fn relu_epilogue_bit_identical_to_post_pass() {
        // Sizes straddling the small/blocked and serial/parallel
        // thresholds, plus k crossing the KC boundary (the epilogue must
        // fire only on the final K slice).
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (9, 17, 33),
            (13, 70, 300),
            (64, 64, 64),
            (70, 64, 520),
        ] {
            let a = dense(m, k, 31 + m as u64);
            let b_t = dense(n, k, 32 + n as u64);
            let row_bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5 - 1.0).collect();
            let col_bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25 - 2.0).collect();

            let mut want = vec![f32::NAN; m * n];
            gemm_nt(m, n, k, &a, &b_t, &mut want);
            relu_pass(&mut want);
            let mut got = vec![f32::NAN; m * n];
            gemm_nt_relu(m, n, k, &a, &b_t, &mut got);
            assert_eq!(got, want, "gemm_nt_relu {m}x{n}x{k}");

            let mut want = vec![f32::NAN; m * n];
            gemm_nt_bias_row(m, n, k, &a, &b_t, &row_bias, &mut want);
            relu_pass(&mut want);
            let mut got = vec![f32::NAN; m * n];
            gemm_nt_bias_row_relu(m, n, k, &a, &b_t, &row_bias, &mut got);
            assert_eq!(got, want, "gemm_nt_bias_row_relu {m}x{n}x{k}");

            let mut want = vec![f32::NAN; m * n];
            gemm_nt_bias_col(m, n, k, &a, &b_t, &col_bias, &mut want);
            relu_pass(&mut want);
            let mut got = vec![f32::NAN; m * n];
            gemm_nt_bias_col_relu(m, n, k, &a, &b_t, &col_bias, &mut got);
            assert_eq!(got, want, "gemm_nt_bias_col_relu {m}x{n}x{k}");
        }
    }

    #[test]
    fn relu_epilogue_on_batch_and_degenerate_k() {
        // Batched path (including the cross-problem parallel dispatch).
        for &(batch, m, n, k) in &[(3usize, 8usize, 16usize, 9usize), (16, 32, 64, 72)] {
            let a = dense(m, k, 41);
            let b = dense(batch * n, k, 42);
            let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.125 - 1.0).collect();
            let mut want = vec![f32::NAN; batch * m * n];
            gemm_nt_batch(batch, m, n, k, &a, &b, Some(&bias), false, &mut want);
            relu_pass(&mut want);
            let mut got = vec![f32::NAN; batch * m * n];
            gemm_nt_batch(batch, m, n, k, &a, &b, Some(&bias), true, &mut got);
            assert_eq!(got, want, "batched relu {batch}x{m}x{n}x{k}");
        }

        // k == 0: output is pure (clamped) bias — including a negative-zero
        // bias entry, which must clamp to the same bits as the post pass.
        let (m, n) = (4, 6);
        let mut bias: Vec<f32> = (0..n).map(|j| j as f32 - 2.0).collect();
        bias[1] = -0.0;
        let mut want = vec![f32::NAN; m * n];
        gemm_nt_bias_col(m, n, 0, &[], &[], &bias, &mut want);
        relu_pass(&mut want);
        let mut got = vec![f32::NAN; m * n];
        gemm_nt_bias_col_relu(m, n, 0, &[], &[], &bias, &mut got);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_k_is_pure_bias() {
        let (m, n) = (4, 6);
        let bias: Vec<f32> = (0..n).map(|j| j as f32).collect();
        let mut c = vec![f32::NAN; m * n];
        gemm_nt_bias_col(m, n, 0, &[], &[], &bias, &mut c);
        for row in c.chunks(n) {
            assert_eq!(row, &bias[..]);
        }
        let mut c = vec![f32::NAN; m * n];
        gemm(m, n, 0, &[], &[], &mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn overwrites_stale_output() {
        let (m, n, k) = (6, 6, 6);
        let a = dense(m, k, 11);
        let b = dense(k, n, 12);
        let mut c1 = vec![123.0f32; m * n];
        let mut c2 = vec![-7.0f32; m * n];
        gemm(m, n, k, &a, &b, &mut c1);
        gemm(m, n, k, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "output slice too short")]
    fn rejects_short_output() {
        let mut c = vec![0.0f32; 5];
        gemm(2, 3, 1, &[1.0, 2.0], &[1.0, 2.0, 3.0], &mut c);
    }
}
