//! 2-D convolution: direct, im2col-based, and backward passes.

use crate::{Tensor, TensorError};

/// Stride/padding configuration for [`conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Default for Conv2dCfg {
    fn default() -> Self {
        Conv2dCfg { stride: 1, padding: 0 }
    }
}

/// Output spatial dimensions of a convolution.
///
/// Returns `(out_h, out_w)` for an `in_h x in_w` input with `kh x kw`
/// kernels under `cfg`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the stride is zero or the
/// kernel does not fit in the padded input.
pub fn conv2d_out_dims(
    in_h: usize,
    in_w: usize,
    kh: usize,
    kw: usize,
    cfg: Conv2dCfg,
) -> Result<(usize, usize), TensorError> {
    if cfg.stride == 0 {
        return Err(TensorError::invalid("stride must be nonzero"));
    }
    let ph = in_h + 2 * cfg.padding;
    let pw = in_w + 2 * cfg.padding;
    if kh == 0 || kw == 0 || kh > ph || kw > pw {
        return Err(TensorError::invalid(format!(
            "kernel {kh}x{kw} does not fit padded input {ph}x{pw}"
        )));
    }
    Ok(((ph - kh) / cfg.stride + 1, (pw - kw) / cfg.stride + 1))
}

/// Lowers image patches to a matrix (`im2col`).
///
/// Input `(N, C, H, W)` becomes a matrix of shape
/// `(N*OH*OW, C*KH*KW)` whose rows are flattened receptive fields. This is
/// the same lowering a PIM accelerator performs when feeding word lines: each
/// row is one crossbar input vector.
///
/// # Errors
///
/// Propagates geometry errors from [`conv2d_out_dims`] and rank errors.
pub fn im2col(
    x: &Tensor,
    kh: usize,
    kw: usize,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: x.rank(), op: "im2col" });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let rows = n * oh * ow;
    let cols = c * kh * kw;
    let mut out = vec![0.0f32; rows * cols];
    let xd = x.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let base = row * cols;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (ci * kh + ky) * kw + kx;
                            out[base + col] =
                                xd[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Accumulates an im2col matrix back into image space (`col2im`).
///
/// The adjoint of [`im2col`]: overlapping patch positions are summed. Used
/// by [`conv2d_backward`] to form input gradients.
///
/// # Errors
///
/// Returns geometry errors if `cols` does not match the implied shape.
pub fn col2im(
    cols_mat: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let rows = n * oh * ow;
    let cols = c * kh * kw;
    if cols_mat.shape() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![rows, cols],
            actual: cols_mat.shape().to_vec(),
            op: "col2im",
        });
    }
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let od = out.data_mut();
    let cd = cols_mat.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                let base = row * cols;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (ci * kh + ky) * kw + kx;
                            od[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                cd[base + col];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// 2-D convolution (cross-correlation, as in every DL framework).
///
/// `x` is `(N, C_in, H, W)`, `weight` is `(C_out, C_in, KH, KW)`, `bias`
/// (optional) is `(C_out)`. Returns `(N, C_out, OH, OW)`.
///
/// Implemented as `im2col` followed by a matrix multiply — the same lowering
/// the PIM crossbar mapping uses, which makes the functional-equivalence
/// tests between this operator and the crossbar data path meaningful.
///
/// # Errors
///
/// Returns rank/shape errors if operands disagree or the geometry is
/// invalid.
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: x.rank(), op: "conv2d" });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight.rank(),
            op: "conv2d",
        });
    }
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, wc_in, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc_in != c_in {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            actual: vec![wc_in],
            op: "conv2d (input channels)",
        });
    }
    if let Some(b) = bias {
        if b.shape() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![c_out],
                actual: b.shape().to_vec(),
                op: "conv2d (bias)",
            });
        }
    }
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    let cols = im2col(x, kh, kw, cfg)?; // (N*OH*OW, C_in*KH*KW)
    let wmat = weight.reshape(&[c_out, c_in * kh * kw])?;
    let out_mat = cols.matmul(&wmat.transpose()?)?; // (N*OH*OW, C_out)

    // Rearrange (N*OH*OW, C_out) -> (N, C_out, OH, OW), adding bias.
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let od = out.data_mut();
    let md = out_mat.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for co in 0..c_out {
                    let b = bias.map(|bb| bb.data()[co]).unwrap_or(0.0);
                    od[((ni * c_out + co) * oh + oy) * ow + ox] = md[row * c_out + co] + b;
                }
            }
        }
    }
    Ok(out)
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `(N, C_in, H, W)`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight, `(C_out, C_in, KH, KW)`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `(C_out)`.
    pub db: Tensor,
}

/// Backward pass of [`conv2d`].
///
/// `dy` is the upstream gradient `(N, C_out, OH, OW)`.
///
/// # Errors
///
/// Returns rank/shape errors if operands disagree with the forward geometry.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    cfg: Conv2dCfg,
) -> Result<Conv2dGrads, TensorError> {
    let (n, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (oh, ow) = conv2d_out_dims(h, w, kh, kw, cfg)?;
    if dy.shape() != [n, c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, oh, ow],
            actual: dy.shape().to_vec(),
            op: "conv2d_backward",
        });
    }

    // dy as matrix: (N*OH*OW, C_out)
    let mut dy_mat = Tensor::zeros(&[n * oh * ow, c_out]);
    {
        let dd = dy_mat.data_mut();
        let yd = dy.data();
        for ni in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let row = (ni * oh + oy) * ow + ox;
                        dd[row * c_out + co] = yd[((ni * c_out + co) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    }

    let cols = im2col(x, kh, kw, cfg)?; // (R, C_in*KH*KW)
    // dW = dy_mat^T * cols  -> (C_out, C_in*KH*KW)
    let dw_mat = dy_mat.transpose()?.matmul(&cols)?;
    let dw = dw_mat.reshape(&[c_out, c_in, kh, kw])?;

    // db = column sums of dy_mat.
    let mut db = Tensor::zeros(&[c_out]);
    {
        let bd = db.data_mut();
        let dd = dy_mat.data();
        for row in 0..n * oh * ow {
            for co in 0..c_out {
                bd[co] += dd[row * c_out + co];
            }
        }
    }

    // dX: dcols = dy_mat * Wmat, then col2im.
    let wmat = weight.reshape(&[c_out, c_in * kh * kw])?;
    let dcols = dy_mat.matmul(&wmat)?;
    let dx = col2im(&dcols, n, c_in, h, w, kh, kw, cfg)?;

    Ok(Conv2dGrads { dx, dw, db })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_conv(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
        // Reference naive implementation for cross-checking.
        let (n, c_in, h, ww) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (c_out, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let (oh, ow) = conv2d_out_dims(h, ww, kh, kw, cfg).unwrap();
        Tensor::from_fn(&[n, c_out, oh, ow], |idx| {
            let (ni, co, oy, ox) = (idx[0], idx[1], idx[2], idx[3]);
            let mut acc = 0.0;
            for ci in 0..c_in {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= ww as isize {
                            continue;
                        }
                        acc += x.at(&[ni, ci, iy as usize, ix as usize])
                            * w.at(&[co, ci, ky, kx]);
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn out_dims_basic() {
        assert_eq!(conv2d_out_dims(8, 8, 3, 3, Conv2dCfg { stride: 1, padding: 1 }).unwrap(), (8, 8));
        assert_eq!(conv2d_out_dims(8, 8, 3, 3, Conv2dCfg { stride: 2, padding: 1 }).unwrap(), (4, 4));
        assert_eq!(conv2d_out_dims(7, 7, 1, 1, Conv2dCfg::default()).unwrap(), (7, 7));
        assert!(conv2d_out_dims(4, 4, 5, 5, Conv2dCfg::default()).is_err());
        assert!(conv2d_out_dims(4, 4, 3, 3, Conv2dCfg { stride: 0, padding: 0 }).is_err());
    }

    #[test]
    fn conv_matches_direct_reference() {
        let mut r = crate::rng::seeded(11);
        let x = crate::init::uniform(&[2, 3, 7, 7], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut r);
        for cfg in [
            Conv2dCfg { stride: 1, padding: 0 },
            Conv2dCfg { stride: 1, padding: 1 },
            Conv2dCfg { stride: 2, padding: 1 },
        ] {
            let got = conv2d(&x, &w, None, cfg).unwrap();
            let want = direct_conv(&x, &w, cfg);
            assert!(got.allclose(&want, 1e-4).unwrap(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dCfg::default()).unwrap();
        for oy in 0..3 {
            for ox in 0..3 {
                assert_eq!(y.at(&[0, 0, oy, ox]), 1.5);
                assert_eq!(y.at(&[0, 1, oy, ox]), -2.0);
            }
        }
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let x = Tensor::zeros(&[1, 3, 5, 5]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dCfg::default()).is_err());
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let mut r = crate::rng::seeded(21);
        let cfg = Conv2dCfg { stride: 2, padding: 1 };
        let x = crate::init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut r);
        let cols = im2col(&x, 3, 3, cfg).unwrap();
        let y = crate::init::uniform(cols.shape(), -1.0, 1.0, &mut r);
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, 1, 2, 6, 6, 3, 3, cfg).unwrap();
        let rhs: f32 = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut r = crate::rng::seeded(31);
        let cfg = Conv2dCfg { stride: 1, padding: 1 };
        let x = crate::init::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut r);
        let w = crate::init::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut r);
        let y = conv2d(&x, &w, None, cfg).unwrap();
        // Loss = sum(y^2)/2, so dy = y.
        let grads = conv2d_backward(&x, &w, &y, cfg).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            conv2d(x, w, None, cfg).unwrap().norm_sq() / 2.0
        };
        // Check several weight coordinates.
        for &flat in &[0usize, 7, 23, 53] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            let an = grads.dw.data()[flat];
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "dw[{flat}] fd {fd} an {an}");
        }
        // Check input coordinates.
        for &flat in &[0usize, 11, 29, 49] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            let an = grads.dx.data()[flat];
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "dx[{flat}] fd {fd} an {an}");
        }
    }

    #[test]
    fn backward_bias_is_spatial_sum() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let cfg = Conv2dCfg { stride: 1, padding: 0 };
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let g = conv2d_backward(&x, &w, &dy, cfg).unwrap();
        assert_eq!(g.db.data(), &[4.0, 4.0]);
    }

    #[test]
    fn conv_1x1_is_channel_mixing() {
        // 1x1 conv == per-pixel linear map over channels.
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| (i[1] + 1) as f32);
        let w = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dCfg::default()).unwrap();
        // Every pixel: 1*1 + 2*2 = 5.
        for v in y.data() {
            assert_eq!(*v, 5.0);
        }
    }
}
